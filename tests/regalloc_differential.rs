//! Differential gate for the post-rewrite register allocator: every
//! program the differential generator can produce must run **bit-
//! identically** with `PassConfig::regalloc` on and off, and the static
//! verifier must accept every allocated variant with zero findings.
//!
//! This is the pass's soundness contract from the issue: spilling back to
//! the original frame slot is always legal, so the allocator can refuse
//! work but never change behavior — and because it runs before publish,
//! the verifier's five rules (round-trip, CFG closure, stack discipline,
//! write containment, provenance) must hold on its output exactly as they
//! do on unallocated code.

use brew_suite::prelude::*;
use brew_suite::static_verify::{verify, VerifyOptions};
use proptest::prelude::*;

/// All other passes stay at their defaults: the comparison isolates the
/// allocator, not the whole pipeline.
fn with_regalloc(on: bool) -> PassConfig {
    PassConfig {
        regalloc: on,
        ..PassConfig::default()
    }
}

/// Rewrite `f` twice — allocator off, then on — and return both results.
/// Returns `None` when tracing itself faults (a legitimate outcome that
/// must be identical for both configurations).
fn rewrite_pair(img: &Image, f: u64, req: &SpecRequest) -> Option<(RewriteResult, RewriteResult)> {
    let off = Rewriter::new(img).rewrite(f, &req.clone().passes(with_regalloc(false)));
    let on = Rewriter::new(img).rewrite(f, &req.clone().passes(with_regalloc(true)));
    match (off, on) {
        (Ok(off), Ok(on)) => Some((off, on)),
        // The allocator runs after tracing: a trace fault cannot depend
        // on the pass selection.
        (Err(RewriteError::TraceFault { .. }), Err(RewriteError::TraceFault { .. })) => None,
        (off, on) => panic!("pass selection changed the rewrite outcome: {off:?} vs {on:?}"),
    }
}

/// The verifier must have zero false positives on allocated code: the
/// allocator only renames frame slots to registers and cleans up the
/// residue, all of which the five rules permit.
fn assert_verifier_clean(img: &Image, f: u64, req: &SpecRequest, res: &RewriteResult) {
    let report = verify(img, f, req, res, &VerifyOptions::default());
    assert!(
        report.passed(),
        "verifier false positive on allocated variant: {:?}",
        report.first_error()
    );
}

/// The same expression AST as `tests/differential.rs` (private there):
/// integer arithmetic with a never-zero divisor over a, b, c, t.
#[derive(Debug, Clone)]
enum E {
    A,
    B,
    C,
    T,
    Lit(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    DivSafe(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Neg(Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::C => "c".into(),
            E::T => "t".into(),
            E::Lit(v) => format!("({v})"),
            E::Add(x, y) => format!("({} + {})", x.render(), y.render()),
            E::Sub(x, y) => format!("({} - {})", x.render(), y.render()),
            E::Mul(x, y) => format!("({} * {})", x.render(), y.render()),
            E::DivSafe(x, y) => {
                format!("({} / (({}) % 13 + 14))", x.render(), y.render())
            }
            E::Lt(x, y) => format!("({} < {})", x.render(), y.render()),
            E::Neg(x) => format!("(-{})", x.render()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::A),
        Just(E::B),
        Just(E::C),
        Just(E::T),
        any::<i8>().prop_map(E::Lit),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Add(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Sub(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Mul(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::DivSafe(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Lt(Box::new(x), Box::new(y))),
            inner.prop_map(|x| E::Neg(Box::new(x))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Integer corpus: branches, a bounded loop, safe division — under
    /// every known/unknown marking. Both variants must agree with the
    /// original and with each other on every probe, the allocator must
    /// never execute more instructions than the unallocated code, and
    /// the verifier must pass the allocated variant.
    #[test]
    fn regalloc_int_programs_bit_identical(
        init in arb_expr(),
        cond in arb_expr(),
        then_e in arb_expr(),
        loop_e in arb_expr(),
        loop_n in 0u8..6,
        spec_mask in 0u8..8,
        pins in proptest::array::uniform3(-40i64..40),
        probes in proptest::collection::vec(proptest::array::uniform3(-50i64..50), 4),
    ) {
        let src = format!(
            r#"
            int f(int a, int b, int c) {{
                int t = 0;
                t = {init};
                if ({cond}) {{ t = t + {then_e}; }} else {{ t = t - 3; }}
                for (int i = 0; i < {loop_n}; i++) {{ t += {loop_e}; }}
                return t;
            }}
            "#,
            init = init.render(),
            cond = cond.render(),
            then_e = then_e.render(),
            loop_e = loop_e.render(),
        );
        let img = Image::new();
        let compiled = compile_into(&src, &img).unwrap();
        let f = compiled.func("f").unwrap();

        let mut req = SpecRequest::new().ret(RetKind::Int);
        for (i, &pin) in pins.iter().enumerate() {
            req = if spec_mask & (1 << i) != 0 {
                req.known_int(pin)
            } else {
                req.unknown_int()
            };
        }
        let Some((off, on)) = rewrite_pair(&img, f, &req) else { return Ok(()); };
        assert_verifier_clean(&img, f, &req, &on);

        let mut m = Machine::new();
        for probe in &probes {
            let mut vals = *probe;
            for i in 0..3 {
                if spec_mask & (1 << i) != 0 {
                    vals[i] = pins[i];
                }
            }
            let call = CallArgs::new().int(vals[0]).int(vals[1]).int(vals[2]);
            let orig = m.call(&img, f, &call);
            let a = m.call(&img, off.entry, &call);
            let b = m.call(&img, on.entry, &call);
            match (&orig, a, b) {
                (Ok(o), Ok(a), Ok(b)) => {
                    prop_assert_eq!(o.ret_int, a.ret_int, "unallocated diverged\n{}", src);
                    prop_assert_eq!(a.ret_int, b.ret_int, "regalloc changed behavior\n{}", src);
                    // "Never make code worse": spill fallback is the
                    // identity, so the allocated body cannot retire more
                    // instructions than the unallocated one.
                    prop_assert!(
                        b.stats.insts <= a.stats.insts,
                        "regalloc grew the dynamic path: {} -> {} insts\n{}",
                        a.stats.insts, b.stats.insts, src
                    );
                }
                (Err(_), Err(_), Err(_)) => {}
                (o, a, b) => panic!("divergent fault behavior: {o:?} / {a:?} / {b:?}\n{src}"),
            }
        }
    }

    /// Mixed-ABI corpus from the issue: a double parameter, an int
    /// parameter, and a pointer-to-struct parameter feeding both integer
    /// control flow and double arithmetic. Doubles compare by bits.
    #[test]
    fn regalloc_doubles_and_struct_pointers_bit_identical(
        u in any::<i16>(),
        w_num in -300i16..300,
        iexpr in arb_expr(),
        loop_n in 0u8..5,
        know_a in any::<bool>(),
        know_x in any::<bool>(),
        know_p in any::<bool>(),
        a_pin in -40i64..40,
        x_pin in -16.0f64..16.0,
        probes in proptest::collection::vec((-50i64..50, -24.0f64..24.0), 4),
    ) {
        let src = format!(
            r#"
            struct Pt {{ double w; int u; int v; }};
            struct Pt pt = {{{w:?}, {u}, 7}};
            double f(int a, double x, struct Pt* p) {{
                int b = p->u;
                int c = p->v;
                int t = 0;
                t = {iexpr};
                double acc = x;
                if (t < b) {{ acc = acc * p->w + x; }} else {{ acc = acc - p->w; }}
                for (int i = 0; i < {loop_n}; i++) {{ acc = acc * 0.5 + p->w; }}
                return acc;
            }}
            "#,
            w = w_num as f64 / 16.0,
            iexpr = iexpr.render(),
        );
        let img = Image::new();
        let compiled = compile_into(&src, &img).unwrap();
        let f = compiled.func("f").unwrap();
        let pt = compiled.global("pt").unwrap();

        let mut req = SpecRequest::new().ret(RetKind::F64);
        req = if know_a { req.known_int(a_pin) } else { req.unknown_int() };
        req = if know_x { req.known_f64(x_pin) } else { req.unknown_f64() };
        req = if know_p { req.ptr_to_known(pt, 24) } else { req.unknown_int() };
        let Some((off, on)) = rewrite_pair(&img, f, &req) else { return Ok(()); };
        assert_verifier_clean(&img, f, &req, &on);

        let mut m = Machine::new();
        for (pa, px) in &probes {
            let a = if know_a { a_pin } else { *pa };
            let x = if know_x { x_pin } else { *px };
            let call = CallArgs::new().int(a).f64(x).ptr(pt);
            let orig = m.call(&img, f, &call);
            let va = m.call(&img, off.entry, &call);
            let vb = m.call(&img, on.entry, &call);
            match (&orig, va, vb) {
                (Ok(o), Ok(va), Ok(vb)) => {
                    prop_assert_eq!(o.ret_f64.to_bits(), va.ret_f64.to_bits(), "{}", src);
                    prop_assert_eq!(
                        va.ret_f64.to_bits(), vb.ret_f64.to_bits(),
                        "regalloc changed f64 bits (know a={} x={} p={})\n{}",
                        know_a, know_x, know_p, src
                    );
                    prop_assert!(vb.stats.insts <= va.stats.insts, "{}", src);
                }
                (Err(_), Err(_), Err(_)) => {}
                (o, a, b) => panic!("divergent fault behavior: {o:?} / {a:?} / {b:?}\n{src}"),
            }
        }
    }

    /// Random stencil descriptors through the Figure-5 pipeline: the
    /// allocated variant agrees bit-exactly with the unallocated one and
    /// with the generic interpretation, and the verifier passes it.
    #[test]
    fn regalloc_random_stencils_bit_identical(
        points in proptest::collection::vec(
            ((-1i64..2), (-1i64..2), -4.0f64..4.0), 1..6),
        seed in any::<u32>(),
    ) {
        let n = points.len();
        let inits: Vec<String> = points
            .iter()
            .map(|(dx, dy, c)| format!("{{{c:?}, {dx}, {dy}}}"))
            .collect();
        let src = format!(
            r#"
            struct P {{ double f; int dx; int dy; }};
            struct S {{ int ps; struct P p[{n}]; }};
            struct S st = {{{n}, {{{init}}}}};
            double apply(double* m, int xs, struct S* s) {{
                double v = 0.0;
                for (int i = 0; i < s->ps; i++) {{
                    struct P* p = &s->p[i];
                    v += p->f * m[p->dx + xs * p->dy];
                }}
                return v;
            }}
            "#,
            init = inits.join(", "),
        );
        let img = Image::new();
        let prog = compile_into(&src, &img).unwrap();
        let apply = prog.func("apply").unwrap();
        let st = prog.global("st").unwrap();
        let xs = 5i64;

        let req = SpecRequest::new()
            .unknown_int()
            .known_int(xs)
            .ptr_to_known(st, 8 + n as u64 * 24)
            .ret(RetKind::F64);
        let (off, on) = rewrite_pair(&img, apply, &req).expect("stencil traces cleanly");
        assert_verifier_clean(&img, apply, &req, &on);

        let m0 = img.alloc_heap(25 * 8, 8);
        let mut state = seed as u64 + 1;
        for i in 0..25u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            img.write_f64(m0 + i * 8, ((state >> 33) % 1000) as f64 / 8.0).unwrap();
        }
        let mut m = Machine::new();
        for y in 1..4i64 {
            for x in 1..4i64 {
                let center = m0 + ((y * xs + x) * 8) as u64;
                let args = CallArgs::new().ptr(center).int(xs).ptr(st);
                let orig = m.call(&img, apply, &args).unwrap();
                let a = m.call(&img, off.entry, &args).unwrap();
                let b = m.call(&img, on.entry, &args).unwrap();
                prop_assert_eq!(orig.ret_f64.to_bits(), a.ret_f64.to_bits());
                prop_assert_eq!(a.ret_f64.to_bits(), b.ret_f64.to_bits(),
                    "regalloc changed stencil {:?} at ({},{})", points, x, y);
                prop_assert!(b.stats.insts <= a.stats.insts);
            }
        }
    }
}

/// The §V workload variants the issue names explicitly: the Figure-5
/// stencil `apply` and the §V.B grouped-coefficient `apply_grouped`, both
/// allocated, must verify clean and agree bit-exactly with their
/// unallocated twins on a full interior sweep.
#[test]
fn allocated_stencil_and_grouped_variants_verify_and_agree() {
    let mut st = brew_stencil::Stencil::new(64, 64);

    // Generic apply: off/on pair via the A2 ablation hook.
    let off = st
        .specialize_apply_with_passes(&with_regalloc(false))
        .unwrap();
    let on = st
        .specialize_apply_with_passes(&with_regalloc(true))
        .unwrap();
    let apply = st.prog.func("apply").unwrap();
    let req = st.apply_request();
    assert_verifier_clean(&st.img, apply, &req, &on);

    // Grouped apply (default passes include the allocator).
    let grouped = st.specialize_apply_grouped().unwrap();
    let apply_grouped = st.prog.func("apply_grouped").unwrap();
    let sg5 = st.sg5();
    let grouped_req = SpecRequest::new()
        .unknown_int()
        .known_int(st.xs)
        .ptr_to_known(sg5, brew_stencil::SG_SIZE)
        .ret(RetKind::F64);
    assert_verifier_clean(&st.img, apply_grouped, &grouped_req, &grouped);

    // Whole-sweep equivalence: every interior point of the seeded matrix.
    let s5 = st.s5();
    let xs = st.xs;
    let m0 = st.m1;
    let mut m = Machine::new();
    for y in 1..(st.ys - 1) {
        for x in 1..(xs - 1) {
            let center = m0 + ((y * xs + x) * 8) as u64;
            let args = CallArgs::new().ptr(center).int(xs).ptr(s5);
            let o = m.call(&st.img, apply, &args).unwrap().ret_f64;
            let a = m.call(&st.img, off.entry, &args).unwrap().ret_f64;
            let b = m.call(&st.img, on.entry, &args).unwrap().ret_f64;
            assert_eq!(
                o.to_bits(),
                a.to_bits(),
                "unallocated diverged at ({x},{y})"
            );
            assert_eq!(a.to_bits(), b.to_bits(), "regalloc diverged at ({x},{y})");
        }
    }
}
