//! Every rewrite failure mode is a recoverable error (§III.G): *"it is not
//! catastrophic. It simply means that the user of the rewriter API has to
//! use the original version of the function."* These tests exercise each
//! failure path and verify the original function still runs afterwards.

use brew_suite::prelude::*;
use brew_suite::x86::prelude::*;

/// Assemble raw instructions into fresh image code.
fn asm(img: &mut Image, insts: &[Inst]) -> u64 {
    let base = brew_suite::image::layout::CODE_BASE;
    let mut bytes = Vec::new();
    // Find where this code will land: emulate the bump allocator by
    // assembling at 0 first for the length, then re-assembling.
    let mut probe = Vec::new();
    for i in insts {
        brew_suite::x86::encode::encode(i, base, &mut probe).unwrap();
    }
    let addr = img.alloc_code(&vec![0u8; probe.len()]);
    for i in insts {
        let at = addr + bytes.len() as u64;
        brew_suite::x86::encode::encode(i, at, &mut bytes).unwrap();
    }
    img.write_bytes(addr, &bytes).unwrap();
    addr
}

#[test]
fn undecodable_instruction() {
    let img = Image::new();
    let junk = img.alloc_code(&[0x0F, 0xFF, 0x00]);
    let err = Rewriter::new(&img)
        .rewrite(junk, &SpecRequest::new())
        .unwrap_err();
    assert!(matches!(err, RewriteError::Undecodable { addr, .. } if addr == junk));
}

#[test]
fn unsupported_instruction_form() {
    let img = Image::new();
    // RIP-relative mov: valid x86-64, outside the subset.
    let f = img.alloc_code(&[0x48, 0x8B, 0x05, 0x00, 0x00, 0x00, 0x00, 0xC3]);
    let err = Rewriter::new(&img)
        .rewrite(f, &SpecRequest::new())
        .unwrap_err();
    let RewriteError::Undecodable { addr, err } = err else {
        panic!("wrong error kind")
    };
    assert_eq!(addr, f, "points at the unsupported instruction");
    assert!(
        format!("{err:?}").to_lowercase().contains("rip"),
        "decoder diagnosis names the unsupported form: {err:?}"
    );
}

#[test]
fn indirect_unknown_jump() {
    let mut img = Image::new();
    // jmp rax with rax unknown.
    let f = asm(
        &mut img,
        &[Inst::JmpInd {
            src: Operand::Reg(Gpr::Rax),
        }],
    );
    let err = Rewriter::new(&img)
        .rewrite(f, &SpecRequest::new())
        .unwrap_err();
    assert!(matches!(err, RewriteError::IndirectUnknownJump { addr } if addr == f));
}

#[test]
fn indirect_known_jump_is_followed() {
    let mut img = Image::new();
    // mov rax, <target>; jmp rax; target: mov rax, 7; ret — with the
    // address baked, the indirect jump is followed and disappears.
    let base = brew_suite::image::layout::CODE_BASE;
    // Compute layout: movabs (10) + jmp rax (2) => target at base+12.
    let f = asm(
        &mut img,
        &[
            Inst::MovAbs {
                dst: Gpr::Rax,
                imm: base + 12,
            },
            Inst::JmpInd {
                src: Operand::Reg(Gpr::Rax),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(7),
            },
            Inst::Ret,
        ],
    );
    let req = SpecRequest::new().ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new()).unwrap();
    assert_eq!(out.ret_int, 7);
}

#[test]
fn trap_instruction() {
    let mut img = Image::new();
    let f = asm(&mut img, &[Inst::Ud2]);
    let err = Rewriter::new(&img)
        .rewrite(f, &SpecRequest::new())
        .unwrap_err();
    assert!(matches!(err, RewriteError::TraceFault { addr, what: "ud2" } if addr == f));
}

#[test]
fn stack_imbalance() {
    let mut img = Image::new();
    // push rax; ret — returns with a displaced stack.
    let f = asm(
        &mut img,
        &[
            Inst::Push {
                src: Operand::Reg(Gpr::Rax),
            },
            Inst::Ret,
        ],
    );
    let err = Rewriter::new(&img)
        .rewrite(f, &SpecRequest::new())
        .unwrap_err();
    // `push rax` is one byte, so the offending `ret` sits at f+1.
    assert!(matches!(err, RewriteError::StackImbalance { addr } if addr == f + 1));
}

#[test]
fn division_fault_during_tracing() {
    let img = Image::new();
    let prog = compile_into("int f(int a) { return 1 / a; }", &img).unwrap();
    let f = prog.func("f").unwrap();
    let req = SpecRequest::new().known_int(0).ret(RetKind::Int);
    // Tracing with the known value 0 divides by zero at rewrite time.
    let err = Rewriter::new(&img).rewrite(f, &req).unwrap_err();
    let RewriteError::TraceFault { addr, what } = err else {
        panic!("wrong error kind")
    };
    assert!(what.contains("division"), "names the fault: {what}");
    assert!(
        addr >= f && addr < f + 0x80,
        "fault address {addr:#x} falls inside f ({f:#x})"
    );
    // The original function still works for valid inputs.
    let mut m = Machine::new();
    let out = m.call(&img, f, &CallArgs::new().int(2)).unwrap();
    assert_eq!(out.ret_int, 0); // 1/2 == 0
}

#[test]
fn code_space_budget() {
    let img = Image::new();
    let prog = compile_into(
        "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
        &img,
    )
    .unwrap();
    let f = prog.func("f").unwrap();
    let req = SpecRequest::new()
        .known_int(100)
        .ret(RetKind::Int)
        .max_code_bytes(16); // absurd limit
    let err = Rewriter::new(&img).rewrite(f, &req).unwrap_err();
    assert!(matches!(err, RewriteError::OutOfCodeSpace));
}

#[test]
fn block_budget() {
    let img = Image::new();
    let prog = compile_into(
        "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
        &img,
    )
    .unwrap();
    let f = prog.func("f").unwrap();
    let req = SpecRequest::new()
        .known_int(10_000)
        .ret(RetKind::Int)
        .max_blocks(8)
        .default_opts(|o| o.max_variants = u32::MAX);
    let err = Rewriter::new(&img).rewrite(f, &req).unwrap_err();
    assert!(matches!(err, RewriteError::BlockBudget));
}

#[test]
fn bad_config_params_vs_args() {
    // The split (config, args) adoption path rejects arity drift in both
    // directions — the builder makes this unrepresentable.
    let mut cfg = RewriteConfig::new();
    cfg.set_param(3, ParamSpec::Known); // only 1 arg will be provided
    let err =
        SpecRequest::from_config(&cfg, &[ArgValue::Int(1)], &PassConfig::default()).unwrap_err();
    let RewriteError::BadConfig(msg) = err else {
        panic!("wrong error kind")
    };
    assert!(
        msg.contains("parameter 1"),
        "names the offending index: {msg}"
    );
}

#[test]
fn bad_config_extra_args_without_specs() {
    // Arguments with no matching parameter spec are no longer silently
    // treated as unknown: the request must bind every parameter.
    let cfg = RewriteConfig::new();
    let err = SpecRequest::from_config(
        &cfg,
        &[ArgValue::Int(1), ArgValue::Int(2)],
        &PassConfig::default(),
    )
    .unwrap_err();
    let RewriteError::BadConfig(msg) = err else {
        panic!("wrong error kind")
    };
    assert!(
        msg.contains("argument 0"),
        "names the offending index: {msg}"
    );
}

#[test]
fn bad_config_func_opts_for_non_code_address() {
    // Options keyed on an address outside any code segment are a config
    // error (usually a typo'd or stale symbol), not silently ignored.
    let img = Image::new();
    let prog = compile_into("int f(int a) { return a; }", &img).unwrap();
    let f = prog.func("f").unwrap();
    let req = SpecRequest::new()
        .unknown_int()
        .ret(RetKind::Int)
        .func(0xdead_0000, |o| o.inline = false);
    let err = Rewriter::new(&img).rewrite(f, &req).unwrap_err();
    let RewriteError::BadConfig(msg) = err else {
        panic!("wrong error kind")
    };
    assert!(
        msg.contains("0xdead0000"),
        "names the offending address: {msg}"
    );
}

#[test]
fn bad_config_hook_with_branch_unknown() {
    let img = Image::new();
    let prog = compile_into("int f(int a) { return a; }", &img).unwrap();
    let f = prog.func("f").unwrap();
    let req = SpecRequest::new()
        .unknown_int()
        .mem_access_hook(0x400000)
        .func(f, |o| o.branch_unknown = true);
    let err = Rewriter::new(&img).rewrite(f, &req).unwrap_err();
    let RewriteError::BadConfig(msg) = err else {
        panic!("wrong error kind")
    };
    assert!(
        msg.contains("branch_unknown") && msg.contains("hook"),
        "names the conflicting options: {msg}"
    );
}

#[test]
fn bad_config_ptr_to_known_on_f64() {
    let img = Image::new();
    let prog = compile_into("double f(double x) { return x; }", &img).unwrap();
    let f = prog.func("f").unwrap();
    // ptr_to_known only binds integer-class values; drive the same error
    // through the adoption path with an F64 value against a pointer spec.
    let mut cfg = RewriteConfig::new();
    cfg.set_param(0, ParamSpec::PtrToKnown { len: 8 })
        .set_ret(RetKind::F64);
    let req =
        SpecRequest::from_config(&cfg, &[ArgValue::F64(0.0)], &PassConfig::default()).unwrap();
    let err = Rewriter::new(&img).rewrite(f, &req).unwrap_err();
    let RewriteError::BadConfig(msg) = err else {
        panic!("wrong error kind")
    };
    assert!(
        msg.contains("parameter 0"),
        "names the offending index: {msg}"
    );
}

#[test]
fn failure_then_fallback_to_original_is_the_contract() {
    // The paper's robustness story end-to-end: try to rewrite, fail, keep
    // using the original.
    let img = Image::new();
    let prog = compile_into(
        "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i * i; return s; }",
        &img,
    )
    .unwrap();
    let f = prog.func("f").unwrap();

    let req = SpecRequest::new()
        .known_int(1000)
        .ret(RetKind::Int)
        .max_trace_insts(50); // unrealistically small budget

    let chosen = match Rewriter::new(&img).rewrite(f, &req) {
        Ok(r) => r.entry,
        Err(_) => f, // the documented fallback
    };
    let mut m = Machine::new();
    let out = m.call(&img, chosen, &CallArgs::new().int(10)).unwrap();
    assert_eq!(out.ret_int, 285);
}

#[test]
fn stale_flags_from_elided_address_arithmetic() {
    // `lea rbx, [rsp-8]` (elided, stack-relative) then `add rbx, 8`
    // (elided; its flags are uncomputable because they depend on the
    // absolute stack address) followed by a conditional branch on those
    // flags: the rewriter must refuse rather than branch on garbage.
    let mut img = Image::new();
    let base = brew_suite::image::layout::CODE_BASE;
    let insts = [
        Inst::Lea {
            dst: Gpr::Rbx,
            src: MemRef::base_disp(Gpr::Rsp, -8),
        },
        Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rbx),
            src: Operand::Imm(8),
        },
        Inst::Jcc {
            cond: Cond::E,
            target: base + 30,
        },
        Inst::Ret,
    ];
    let f = asm(&mut img, &insts);
    let err = Rewriter::new(&img)
        .rewrite(f, &SpecRequest::new())
        .unwrap_err();
    let RewriteError::UntrustedFlags { addr } = err else {
        panic!("branching on stale flags must fail: {err:?}")
    };
    assert!(
        addr >= f && addr < f + 16,
        "offending address {addr:#x} falls inside the snippet ({f:#x})"
    );
}

#[test]
fn flags_from_emitted_writer_are_fine_after_elided_ops() {
    // Same shape, but a real (emitted) compare refreshes the flags before
    // the branch: rewrite succeeds and behaves like the original.
    let img = Image::new();
    let prog = compile_into(
        "int f(int a, int b) { int t = a + 1; if (b < t) return 1; return 2; }",
        &img,
    )
    .unwrap();
    let f = prog.func("f").unwrap();
    let req = SpecRequest::new()
        .known_int(10)
        .unknown_int()
        .ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let mut m = Machine::new();
    for b in [-5i64, 10, 11, 12] {
        let orig = m.call(&img, f, &CallArgs::new().int(10).int(b)).unwrap();
        let spec = m
            .call(&img, res.entry, &CallArgs::new().int(10).int(b))
            .unwrap();
        assert_eq!(orig.ret_int, spec.ret_int, "b={b}");
    }
}
