//! Property-based round-trip of the variant persistence codec
//! (`brew_core::persist`): arbitrary persisted variants — arbitrary
//! request shapes, per-function options, pass masks, hooks, snapshots
//! over real image bytes, code payloads — must encode and decode back
//! **byte-identical**: same requests (hence same fingerprints), same
//! snapshots (ranges and hash), same code, same stats. A second family
//! of properties checks the framing: every single-byte corruption of an
//! entry's payload is caught by that entry's checksum without damaging
//! its neighbors, and `entry_code_spans` locates exactly the code bytes.

use brew_core::persist::{self, PersistedVariant};
use brew_core::snapshot::ReadSet;
use brew_core::{PassConfig, RetKind, RewriteStats, SpecRequest};
use brew_image::Image;
use proptest::prelude::*;

/// One generated parameter of a request.
#[derive(Debug, Clone)]
enum P {
    UnknownInt,
    KnownInt(i64),
    UnknownF64,
    /// Finite value (from an i32) so decoded equality is exact.
    KnownF64(i32),
    /// Offset and length inside the image's known block.
    PtrToKnown(u16, u8),
}

fn arb_param() -> impl Strategy<Value = P> {
    prop_oneof![
        Just(P::UnknownInt),
        any::<i64>().prop_map(P::KnownInt),
        Just(P::UnknownF64),
        any::<i32>().prop_map(P::KnownF64),
        (0u16..512, 1u8..64).prop_map(|(o, l)| P::PtrToKnown(o, l)),
    ]
}

/// Everything the request builder can express, in generatable form.
#[derive(Debug, Clone)]
struct ReqGen {
    params: Vec<P>,
    ret: u8,
    known_mem: Vec<(u16, u8)>,
    func_opts: Vec<(u32, bool, bool, bool, u8)>,
    default_inline: bool,
    max_trace_insts: u32,
    max_blocks: u16,
    max_code_bytes: u32,
    hooks: (bool, bool, bool),
    passes: [bool; 6],
}

fn arb_req() -> impl Strategy<Value = ReqGen> {
    (
        proptest::collection::vec(arb_param(), 0..5),
        0u8..3,
        proptest::collection::vec((0u16..900, 1u8..50), 0..3),
        proptest::collection::vec(
            (
                any::<u32>(),
                any::<bool>(),
                any::<bool>(),
                any::<bool>(),
                1u8..200,
            ),
            0..3,
        ),
        any::<bool>(),
        (1u32..u32::MAX, 1u16..u16::MAX, 1u32..u32::MAX),
        (any::<bool>(), any::<bool>(), any::<bool>()),
        proptest::array::uniform8(any::<bool>()),
    )
        .prop_map(
            |(params, ret, known_mem, func_opts, default_inline, caps, hooks, p8)| ReqGen {
                params,
                ret,
                known_mem,
                func_opts,
                default_inline,
                max_trace_insts: caps.0,
                max_blocks: caps.1,
                max_code_bytes: caps.2,
                hooks,
                passes: [p8[0], p8[1], p8[2], p8[3], p8[4], p8[5]],
            },
        )
}

/// Materialize a generated request against a concrete image, with every
/// pointer parameter and known range inside `block`.
fn build_req(g: &ReqGen, block: u64) -> SpecRequest {
    let mut req = SpecRequest::new();
    for p in &g.params {
        req = match *p {
            P::UnknownInt => req.unknown_int(),
            P::KnownInt(v) => req.known_int(v),
            P::UnknownF64 => req.unknown_f64(),
            P::KnownF64(v) => req.known_f64(v as f64),
            P::PtrToKnown(off, len) => req.ptr_to_known(block + off as u64, len as u64),
        };
    }
    req = req.ret(match g.ret {
        0 => RetKind::Int,
        1 => RetKind::F64,
        _ => RetKind::Void,
    });
    for &(off, len) in &g.known_mem {
        req = req.known_mem(block + off as u64..block + off as u64 + len as u64);
    }
    for &(addr, inline, fresh, branch, maxv) in &g.func_opts {
        req = req.func(addr as u64, |o| {
            o.inline = inline;
            o.fresh_unknown = fresh;
            o.branch_unknown = branch;
            o.max_variants = maxv as u32;
        });
    }
    let di = g.default_inline;
    req = req.default_opts(|o| o.inline = di);
    req = req
        .max_trace_insts(g.max_trace_insts as u64)
        .max_blocks(g.max_blocks as usize)
        .max_code_bytes(g.max_code_bytes as usize);
    if g.hooks.0 {
        req = req.entry_hook(0x40_1000);
    }
    if g.hooks.1 {
        req = req.exit_hook(0x40_2000);
    }
    if g.hooks.2 {
        req = req.mem_access_hook(0x40_3000);
    }
    req.passes(PassConfig {
        dead_store_elim: g.passes[0],
        redundant_load_elim: g.passes[1],
        peephole: g.passes[2],
        slot_promotion: g.passes[3],
        frame_compression: g.passes[4],
        regalloc: g.passes[5],
    })
}

fn stats_from(seed: u64) -> RewriteStats {
    // Fourteen distinct deterministic values: any dropped or transposed
    // field in the codec shows up as a mismatch.
    let f = |i: u64| {
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(i as u32)
            ^ i
    };
    RewriteStats {
        traced: f(1),
        emitted: f(2),
        elided: f(3),
        blocks: f(4),
        migrations: f(5),
        inlined_calls: f(6),
        kept_calls: f(7),
        pass_removed: f(8),
        pool_bytes: f(9),
        code_bytes: f(10),
        hooks_injected: f(11),
        trace_ns: f(12),
        pass_ns: f(13),
        emit_ns: f(14),
    }
}

/// A generated variant: request shape + snapshot ranges + code payload.
#[derive(Debug, Clone)]
struct VarGen {
    req: ReqGen,
    snap_ranges: Vec<(u16, u8)>,
    code: Vec<u8>,
    func: u32,
    entry: u32,
    stats_seed: u64,
}

fn arb_variant() -> impl Strategy<Value = VarGen> {
    (
        arb_req(),
        proptest::collection::vec((0u16..960, 1u8..48), 0..4),
        proptest::collection::vec(any::<u8>(), 0..80),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(|(req, snap_ranges, code, func, entry, stats_seed)| VarGen {
            req,
            snap_ranges,
            code,
            func,
            entry,
            stats_seed,
        })
}

/// Shared fixture: an image with a 1 KiB known block whose bytes are a
/// deterministic pattern, so snapshot hashes are real hashes over real
/// memory.
fn fixture() -> (Image, u64) {
    let img = Image::new();
    let block = img.alloc_heap(1024, 8);
    for i in 0..128u64 {
        img.write_u64(block + i * 8, i.wrapping_mul(0x0101_0101_0101_0101))
            .unwrap();
    }
    (img, block)
}

fn materialize(g: &VarGen, img: &Image, block: u64) -> PersistedVariant {
    let req = build_req(&g.req, block);
    let mut rs = ReadSet::default();
    for &(off, len) in &g.snap_ranges {
        rs.record(block + off as u64, len as u64);
    }
    PersistedVariant {
        func: g.func as u64,
        fingerprint: req.fingerprint(),
        entry: g.entry as u64,
        code: g.code.clone(),
        snapshot: rs.snapshot(img),
        stats: stats_from(g.stats_seed),
        req,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → decode is the identity on every field of every variant,
    /// in order — requests (hence fingerprints), snapshots (ranges and
    /// hash), code bytes, stats.
    #[test]
    fn codec_roundtrip_is_byte_identical(
        gens in proptest::collection::vec(arb_variant(), 0..6),
    ) {
        let (img, block) = fixture();
        let vars: Vec<PersistedVariant> =
            gens.iter().map(|g| materialize(g, &img, block)).collect();
        let bytes = persist::encode_variants(&vars);
        let decoded = persist::decode_variants(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), vars.len());
        for (i, (dec, orig)) in decoded.into_iter().zip(&vars).enumerate() {
            let dec = dec.unwrap();
            prop_assert_eq!(&dec, orig, "entry {} round-trip", i);
            prop_assert_eq!(dec.req.fingerprint(), orig.fingerprint);
            prop_assert_eq!(dec.snapshot.hash(), orig.snapshot.hash());
            prop_assert_eq!(dec.snapshot.ranges(), orig.snapshot.ranges());
        }
        // Encoding the decoded set again is bit-identical: the format has
        // one canonical serialization.
        let redecoded: Vec<PersistedVariant> = persist::decode_variants(&bytes)
            .unwrap()
            .into_iter()
            .map(Result::unwrap)
            .collect();
        prop_assert_eq!(persist::encode_variants(&redecoded), bytes);
    }

    /// `entry_code_spans` locates exactly each entry's code bytes in the
    /// encoded image, in entry order.
    #[test]
    fn code_spans_locate_the_code_bytes(
        gens in proptest::collection::vec(arb_variant(), 1..5),
    ) {
        let (img, block) = fixture();
        let vars: Vec<PersistedVariant> =
            gens.iter().map(|g| materialize(g, &img, block)).collect();
        let bytes = persist::encode_variants(&vars);
        let spans = persist::entry_code_spans(&bytes).unwrap();
        prop_assert_eq!(spans.len(), vars.len());
        for (span, v) in spans.iter().zip(&vars) {
            prop_assert_eq!(&bytes[span.clone()], v.code.as_slice());
        }
    }

    /// Any single-byte corruption inside an entry's frame is caught by
    /// that entry's checksum; every other entry still decodes intact.
    #[test]
    fn single_byte_corruption_is_entry_local(
        gens in proptest::collection::vec(arb_variant(), 1..4),
        which in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let (img, block) = fixture();
        let vars: Vec<PersistedVariant> =
            gens.iter().map(|g| materialize(g, &img, block)).collect();
        let bytes = persist::encode_variants(&vars);
        // Pick a byte inside some entry's payload. Payload starts after
        // the 16-byte header + 4-byte length prefix of the first entry;
        // use the code spans to find a guaranteed-payload offset. Code
        // can be empty, so fall back to the first byte after a length
        // prefix (the request arity field) which always exists.
        let spans = persist::entry_code_spans(&bytes).unwrap();
        let idx = (which as usize) % vars.len();
        let span = &spans[idx];
        let target = if span.is_empty() { span.start - 5 } else { span.start };
        let mut corrupt = bytes.clone();
        corrupt[target] ^= flip;
        let decoded = persist::decode_variants(&corrupt);
        match decoded {
            Ok(entries) => {
                prop_assert_eq!(entries.len(), vars.len());
                for (i, e) in entries.into_iter().enumerate() {
                    if i == idx {
                        prop_assert!(
                            matches!(
                                e,
                                Err(persist::PersistError::Checksum { index }) if index == idx
                            ),
                            "corrupted entry must fail its checksum"
                        );
                    } else {
                        prop_assert_eq!(&e.unwrap(), &vars[i], "neighbor {} intact", i);
                    }
                }
            }
            // Corrupting a length prefix region may shear the framing of
            // everything after it — acceptable, as long as it is an error
            // and not a silent wrong decode.
            Err(persist::PersistError::Truncated) => {}
            Err(e) => prop_assert!(false, "unexpected file-level error: {:?}", e),
        }
    }
}
