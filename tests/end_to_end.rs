//! Cross-crate end-to-end tests: the complete BREW workflow over the full
//! stack (mini-C compiler → image → rewriter → emulator), asserting the
//! paper's qualitative results (see EXPERIMENTS.md for the quantitative
//! mapping).

use brew_suite::prelude::*;

#[test]
fn e1_shape_specialization_recovers_most_of_the_gap() {
    // Paper §V.A: generic 2.00s (100%), manual 0.74s (37%), specialized
    // 0.88s (44%). Assert the ordering and rough magnitudes on model
    // cycles: specialized lands within [manual*1.3, 0.6*generic].
    let (xs, ys, iters) = (32, 32, 2);
    let host = Stencil::new(xs, ys).host_checksum(iters);
    let mut m = Machine::new();

    let mut s = Stencil::new(xs, ys);
    let generic = s.run(&mut m, Variant::Generic, iters).unwrap();
    assert_eq!(s.checksum(iters), host);

    let mut s = Stencil::new(xs, ys);
    let manual = s.run(&mut m, Variant::Manual, iters).unwrap();
    assert_eq!(s.checksum(iters), host);

    let mut s = Stencil::new(xs, ys);
    let spec = s.specialize_apply().unwrap();
    let specialized = s.run_with_apply(&mut m, spec.entry, false, iters).unwrap();
    assert_eq!(s.checksum(iters), host);

    assert!(manual.cycles < generic.cycles);
    assert!(
        specialized.cycles * 10 <= generic.cycles * 6,
        "specialized {} should be well under 60% of generic {}",
        specialized.cycles,
        generic.cycles
    );
    assert!(
        specialized.cycles as f64 <= manual.cycles as f64 * 1.3,
        "specialized {} should be within 30% of manual {}",
        specialized.cycles,
        manual.cycles
    );
}

#[test]
fn e3_shape_grouping_closes_the_gap() {
    // Paper §V.B: grouped generic is ~10% slower than generic, but the
    // grouped rewrite reaches the manual version.
    let (xs, ys, iters) = (32, 32, 2);
    let host = Stencil::new(xs, ys).host_checksum(iters);
    let mut m = Machine::new();

    let mut s = Stencil::new(xs, ys);
    let generic = s.run(&mut m, Variant::Generic, iters).unwrap();
    let mut s = Stencil::new(xs, ys);
    let grouped = s.run(&mut m, Variant::Grouped, iters).unwrap();
    assert!(
        grouped.cycles > generic.cycles,
        "grouping slows the generic version down (paper: +10%)"
    );

    let mut s = Stencil::new(xs, ys);
    let manual = s.run(&mut m, Variant::Manual, iters).unwrap();
    let mut s = Stencil::new(xs, ys);
    let res = s.specialize_apply_grouped().unwrap();
    let gspec = s.run_with_apply(&mut m, res.entry, true, iters).unwrap();
    assert_eq!(s.checksum(iters), host);
    assert!(
        gspec.cycles as f64 <= manual.cycles as f64 * 1.1,
        "grouped specialization reaches the manual version: {} vs {}",
        gspec.cycles,
        manual.cycles
    );
}

#[test]
fn e2_shape_figure6_structure() {
    let mut s = Stencil::new(40, 40);
    let res = s.specialize_apply().unwrap();
    let lines = disasm_result(&s.img, &res);
    let text = lines.join("\n");

    // 5 stencil points, each one multiply.
    assert_eq!(text.matches("mulsd").count(), 5);
    // Coefficients referenced at absolute data addresses (i-01 in Fig. 6).
    assert!(
        text.contains("[0x6"),
        "absolute data-segment operand expected"
    );
    // The known row displacement xs*8 appears as a constant (i-13).
    assert!(
        text.contains("0x140"),
        "row displacement 40*8 folded into the code:\n{text}"
    );
    // No loop left.
    assert!(!text.contains(" jl "), "no loop branches:\n{text}");
}

#[test]
fn profile_guided_guarded_specialization_workflow() {
    // §III.D full circle: profile → hot value → rewrite → guard → dispatch.
    let img = Image::new();
    let prog = compile_into(
        r#"
        int f(int x, int k) { int s = 0; for (int i = 0; i < k; i++) s += x + i; return s; }
        int driver(int x, int k) { return f(x, k); }
        "#,
        &img,
    )
    .unwrap();
    let f = prog.func("f").unwrap();
    let driver = prog.func("driver").unwrap();

    // The profiler observes guest call instructions, so calls go through a
    // driver (in a real process, any caller of f).
    let mut profile = ValueProfile::new(2);
    {
        let mut m = Machine::new();
        m.set_call_observer(Box::new(|_, t, cpu| profile.record(t, cpu)));
        for i in 0..50 {
            let k = if i % 5 == 0 { i } else { 12 };
            m.call(&img, driver, &CallArgs::new().int(i).int(k))
                .unwrap();
        }
    }
    let hot = profile.hot_value(f, 1, 0.7).expect("hot k");
    assert_eq!(hot, 12);

    let req = SpecRequest::new()
        .unknown_int()
        .known_int(12)
        .ret(RetKind::Int);
    let mut rw = Rewriter::new(&img);
    let spec = rw.rewrite(f, &req).unwrap();
    let guard = rw.guard(1, 12, spec.entry, f).unwrap();

    let mut m = Machine::new();
    for (x, k) in [(3i64, 12i64), (7, 12), (3, 5), (0, 0)] {
        let via_guard = m.call(&img, guard, &CallArgs::new().int(x).int(k)).unwrap();
        let direct = m.call(&img, f, &CallArgs::new().int(x).int(k)).unwrap();
        assert_eq!(via_guard.ret_int, direct.ret_int, "f({x},{k})");
    }
}

#[test]
fn pgas_workflow() {
    let mut p = PgasArray::new(120, 4, 0);
    let mut m = Machine::new();
    let (generic_v, generic_s) = p.gsum_generic(&mut m).unwrap();
    assert_eq!(generic_v, p.host_sum());

    let spec = p.specialize_gsum().unwrap();
    let (v, s) = p.gsum_with(&mut m, spec.entry).unwrap();
    assert_eq!(v, p.host_sum());
    assert!(s.cycles < generic_s.cycles);
    assert_eq!(s.calls, 0);

    // Remote detection: node 0 owns the first 30 elements.
    let inst = p.instrument_remote_detection().unwrap();
    let (v, _) = p.gsum_with(&mut m, inst.entry).unwrap();
    assert_eq!(v, p.host_sum());
    assert_eq!(p.remote_count(), 90);
}

#[test]
fn rewritten_code_is_itself_rewritable() {
    // §III.A: "the result of a rewriting step itself can be used as input
    // for further rewriting, this approach is composable."
    let img = Image::new();
    let prog = compile_into("int f(int a, int b, int c) { return a * b + c * 2; }", &img).unwrap();
    let f = prog.func("f").unwrap();

    // Stage 1: bake b = 10.
    let req1 = SpecRequest::new()
        .unknown_int()
        .known_int(10)
        .unknown_int()
        .ret(RetKind::Int);
    let r1 = Rewriter::new(&img).rewrite(f, &req1).unwrap();

    // Stage 2: rewrite the rewritten function, baking c = 7 as well.
    let req2 = SpecRequest::new()
        .unknown_int()
        .unknown_int()
        .known_int(7)
        .ret(RetKind::Int);
    let r2 = Rewriter::new(&img).rewrite(r1.entry, &req2).unwrap();

    let mut m = Machine::new();
    for a in [0i64, 1, -3, 999] {
        let out = m
            .call(&img, r2.entry, &CallArgs::new().int(a).int(10).int(7))
            .unwrap();
        assert_eq!(out.ret_int as i64, a * 10 + 14);
    }
    assert!(
        r2.code_len <= r1.code_len,
        "double-specialized is no larger"
    );
}

#[test]
fn sweep_rewrite_e4_shape() {
    // Whole-sweep rewriting stays correct across unroll factors and beats
    // the generic sweep.
    let (xs, ys, iters) = (24, 20, 2);
    let host = Stencil::new(xs, ys).host_checksum(iters);
    let mut m = Machine::new();

    let mut s = Stencil::new(xs, ys);
    let generic = s.run(&mut m, Variant::Generic, iters).unwrap();

    for unroll in [1u32, 4] {
        let mut s = Stencil::new(xs, ys);
        let res = s.specialize_sweep(unroll).unwrap();
        let st = s
            .run(&mut m, Variant::SpecializedSweep(res.entry), iters)
            .unwrap();
        assert_eq!(s.checksum(iters), host, "unroll={unroll}");
        assert!(
            st.cycles < generic.cycles,
            "sweep rewrite (unroll={unroll}) beats generic: {} vs {}",
            st.cycles,
            generic.cycles
        );
    }
}

#[test]
fn makedynamic_e5_shape() {
    // §V.C: the transformed loop still fully unrolls; as-written it stays
    // bounded because makeDynamic's result is opaque.
    use brew_suite::stencil::programs::MAKE_DYNAMIC_PROGRAM;
    let img = Image::new();
    let prog = compile_into(MAKE_DYNAMIC_PROGRAM, &img).unwrap();
    let s5 = prog.global("s5").unwrap();
    let md = prog.func("makeDynamic").unwrap();
    let (xs, ys) = (16i64, 16i64);

    let mut results = Vec::new();
    for name in ["sweep_dynamic", "sweep_dynamic_transformed"] {
        let f = prog.func(name).unwrap();
        let req = SpecRequest::new()
            .unknown_int() // m1
            .unknown_int() // m2
            .known_int(xs)
            .known_int(ys)
            .known_mem(s5..s5 + brew_suite::stencil::S_SIZE)
            .ret(RetKind::Void)
            .func(md, |o| o.inline = false)
            .max_trace_insts(8_000_000)
            .max_code_bytes(1 << 22);
        let r = Rewriter::new(&img).rewrite(f, &req).unwrap();
        results.push(r.stats.blocks);
    }
    let (as_written, transformed) = (results[0], results[1]);
    assert!(
        transformed > 5 * as_written,
        "the compiler transformation re-enables unrolling: {as_written} vs {transformed} blocks"
    );
}
