//! Differential fuzzing of the rewriter: generate random mini-C programs,
//! rewrite them under random configurations, and require the specialized
//! code to behave bit-identically to the original on random inputs (with
//! known-marked parameters pinned to their baked values).
//!
//! This is the soundness backbone of the reproduction: the rewriter's
//! elide/emit/materialize decisions, world migration and compensation code
//! all have to agree with concrete execution.

use brew_suite::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Run `req` through the `SpecializationManager` three ways — cold miss,
/// warm hit, and re-request after a forced eviction — and return the
/// specialized entries the caller must probe for bit-identical behavior.
/// The warm hit must be pointer-equal to the cold variant (no re-trace);
/// the post-eviction entry is a genuinely fresh rewrite.
///
/// Every manager here runs with the static verifier as its publish gate,
/// so each variant that reaches a caller has also passed translation
/// validation — a rejection would surface as a rewrite error below.
fn manager_entries(img: &Image, f: u64, req: &SpecRequest) -> Vec<u64> {
    let mgr = SpecializationManager::builder()
        .publish_gate(publish_gate())
        .build();
    let cold = mgr.get_or_rewrite(img, f, req).unwrap();
    let warm = mgr.get_or_rewrite(img, f, req).unwrap();
    assert!(
        Arc::ptr_eq(&cold, &warm),
        "warm hit must return the cached variant"
    );
    let st = mgr.stats();
    assert_eq!((st.hits, st.misses), (1, 1));

    // Budget for exactly one variant, then alternate two fingerprints of
    // the same semantics (`max_trace_insts` is fingerprinted but does not
    // change this trace) to force an eviction and a re-trace.
    let tiny = SpecializationManager::builder()
        .budget(cold.code_len)
        .publish_gate(publish_gate())
        .build();
    tiny.get_or_rewrite(img, f, req).unwrap();
    let alt = req.clone().max_trace_insts(3_999_999);
    tiny.get_or_rewrite(img, f, &alt).unwrap();
    assert!(tiny.stats().evictions >= 1, "tiny budget must evict");
    let again = tiny.get_or_rewrite(img, f, req).unwrap();
    assert_eq!(tiny.stats().misses, 3, "post-eviction re-request re-traces");

    vec![cold.entry, again.entry]
}

/// A tiny expression AST rendered to mini-C over variables a, b, c, t.
#[derive(Debug, Clone)]
enum E {
    A,
    B,
    C,
    T,
    Lit(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    // Division by a never-zero expression.
    DivSafe(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    Neg(Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::C => "c".into(),
            E::T => "t".into(),
            E::Lit(v) => format!("({v})"),
            E::Add(x, y) => format!("({} + {})", x.render(), y.render()),
            E::Sub(x, y) => format!("({} - {})", x.render(), y.render()),
            E::Mul(x, y) => format!("({} * {})", x.render(), y.render()),
            E::DivSafe(x, y) => {
                format!("({} / (({}) % 13 + 14))", x.render(), y.render())
            }
            E::Lt(x, y) => format!("({} < {})", x.render(), y.render()),
            E::Eq(x, y) => format!("({} == {})", x.render(), y.render()),
            E::Neg(x) => format!("(-{})", x.render()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::A),
        Just(E::B),
        Just(E::C),
        Just(E::T),
        any::<i8>().prop_map(E::Lit),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Add(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Sub(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Mul(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::DivSafe(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Lt(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Eq(Box::new(x), Box::new(y))),
            inner.prop_map(|x| E::Neg(Box::new(x))),
        ]
    })
}

/// A random function body: locals, an if/else, a bounded loop, arithmetic.
#[derive(Debug, Clone)]
struct Prog {
    init: E,
    cond: E,
    then_e: E,
    else_e: E,
    loop_n: u8,
    loop_e: E,
    ret: E,
}

fn arb_prog() -> impl Strategy<Value = Prog> {
    (
        arb_expr(),
        arb_expr(),
        arb_expr(),
        arb_expr(),
        0u8..6,
        arb_expr(),
        arb_expr(),
    )
        .prop_map(|(init, cond, then_e, else_e, loop_n, loop_e, ret)| Prog {
            init,
            cond,
            then_e,
            else_e,
            loop_n,
            loop_e,
            ret,
        })
}

impl Prog {
    fn render(&self) -> String {
        format!(
            r#"
            int f(int a, int b, int c) {{
                int t = 0;
                t = {init};
                if ({cond}) {{
                    t = t + {then_e};
                }} else {{
                    t = t - {else_e};
                }}
                for (int i = 0; i < {n}; i++) {{
                    t += {loop_e};
                }}
                return t + {ret};
            }}
            "#,
            init = self.init.render(),
            cond = self.cond.render(),
            then_e = self.then_e.render(),
            else_e = self.else_e.render(),
            n = self.loop_n,
            loop_e = self.loop_e.render(),
            ret = self.ret.render(),
        )
    }
}

/// Run one differential check: compile, rewrite with `spec_mask` selecting
/// which parameters are known (pinned to `pins`), compare on `probes`.
fn check(prog: &Prog, spec_mask: u8, pins: [i64; 3], probes: &[[i64; 3]]) {
    let src = prog.render();
    let img = Image::new();
    let compiled = match compile_into(&src, &img) {
        Ok(c) => c,
        Err(e) => panic!("generated program failed to compile: {e}\n{src}"),
    };
    let f = compiled.func("f").unwrap();

    let mut req = SpecRequest::new().ret(RetKind::Int);
    for (i, &pin) in pins.iter().enumerate() {
        req = if spec_mask & (1 << i) != 0 {
            req.known_int(pin)
        } else {
            req.unknown_int()
        };
    }
    let res = match Rewriter::new(&img).rewrite(f, &req) {
        Ok(r) => r,
        // Failure is a legitimate outcome (the caller keeps the original);
        // a division fault during tracing is the expected cause here.
        Err(RewriteError::TraceFault { .. }) => return,
        Err(e) => panic!("unexpected rewrite failure: {e}\n{src}"),
    };
    // The same request through the manager: cold, warm-hit, and
    // post-eviction variants must all agree with the direct rewrite.
    let mut entries = vec![res.entry];
    entries.extend(manager_entries(&img, f, &req));

    let mut m = Machine::new();
    for probe in probes {
        // Pin known params to their baked values; probe the others.
        let mut vals = *probe;
        for i in 0..3 {
            if spec_mask & (1 << i) != 0 {
                vals[i] = pins[i];
            }
        }
        let call = CallArgs::new().int(vals[0]).int(vals[1]).int(vals[2]);
        let orig = m.call(&img, f, &call);
        for &entry in &entries {
            let spec = m.call(&img, entry, &call);
            match (&orig, spec) {
                (Ok(o), Ok(s)) => {
                    assert_eq!(
                        o.ret_int, s.ret_int,
                        "mismatch for {vals:?} (mask {spec_mask:#b})\n{src}"
                    );
                }
                // If the original faults (e.g. idiv overflow), the
                // rewritten version must fault too.
                (Err(_), Err(_)) => {}
                (o, s) => panic!("divergent fault behavior: {o:?} vs {s:?}\n{src}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rewrite_preserves_semantics(
        prog in arb_prog(),
        spec_mask in 0u8..8,
        pins in proptest::array::uniform3(-40i64..40),
        probes in proptest::collection::vec(proptest::array::uniform3(-50i64..50), 4),
    ) {
        check(&prog, spec_mask, pins, &probes);
    }

    #[test]
    fn fresh_unknown_mode_preserves_semantics(
        prog in arb_prog(),
        pins in proptest::array::uniform3(-30i64..30),
        probes in proptest::collection::vec(proptest::array::uniform3(-50i64..50), 3),
    ) {
        let src = prog.render();
        let mut img = Image::new();
        let compiled = compile_into(&src, &img).unwrap();
        let f = compiled.func("f").unwrap();
        let req = SpecRequest::new()
            .known_int(pins[0])
            .unknown_int()
            .unknown_int()
            .ret(RetKind::Int)
            .func(f, |o| o.fresh_unknown = true);
        let res = match Rewriter::new(&img).rewrite(f, &req) {
            Ok(r) => r,
            Err(RewriteError::TraceFault { .. }) => return Ok(()),
            Err(e) => panic!("unexpected rewrite failure: {e}\n{src}"),
        };
        let mut m = Machine::new();
        for probe in &probes {
            let call = CallArgs::new().int(pins[0]).int(probe[1]).int(probe[2]);
            let orig = m.call(&img, f, &call);
            let spec = m.call(&img, res.entry, &call);
            match (orig, spec) {
                (Ok(o), Ok(s)) => prop_assert_eq!(o.ret_int, s.ret_int, "{}", src),
                (Err(_), Err(_)) => {}
                (o, s) => panic!("divergent fault behavior: {o:?} vs {s:?}\n{src}"),
            }
        }
    }

    #[test]
    fn branch_unknown_mode_preserves_semantics(
        prog in arb_prog(),
        pins in proptest::array::uniform3(-30i64..30),
        probes in proptest::collection::vec(proptest::array::uniform3(-50i64..50), 3),
    ) {
        let src = prog.render();
        let mut img = Image::new();
        let compiled = compile_into(&src, &img).unwrap();
        let f = compiled.func("f").unwrap();
        let req = SpecRequest::new()
            .unknown_int()
            .known_int(pins[1])
            .unknown_int()
            .ret(RetKind::Int)
            .func(f, |o| {
                o.branch_unknown = true;
                o.max_variants = 3;
            });
        let res = match Rewriter::new(&img).rewrite(f, &req) {
            Ok(r) => r,
            Err(RewriteError::TraceFault { .. }) => return Ok(()),
            Err(e) => panic!("unexpected rewrite failure: {e}\n{src}"),
        };
        let mut m = Machine::new();
        for probe in &probes {
            let call = CallArgs::new().int(probe[0]).int(pins[1]).int(probe[2]);
            let orig = m.call(&img, f, &call);
            let spec = m.call(&img, res.entry, &call);
            match (orig, spec) {
                (Ok(o), Ok(s)) => prop_assert_eq!(o.ret_int, s.ret_int, "{}", src),
                (Err(_), Err(_)) => {}
                (o, s) => panic!("divergent fault behavior: {o:?} vs {s:?}\n{src}"),
            }
        }
    }

    #[test]
    fn double_functions_differential(
        k in -8.0f64..8.0,
        probes in proptest::collection::vec((-16.0f64..16.0, -16.0f64..16.0), 4),
        known in any::<bool>(),
    ) {
        let src = r#"
            double f(double x, double y, double k) {
                double acc = 0.0;
                if (x < y) { acc = x * k + y; } else { acc = y * k - x; }
                for (int i = 0; i < 3; i++) { acc = acc * 0.5 + k; }
                return acc;
            }
        "#;
        let mut img = Image::new();
        let compiled = compile_into(src, &img).unwrap();
        let f = compiled.func("f").unwrap();
        let mut req = SpecRequest::new().unknown_f64().unknown_f64().ret(RetKind::F64);
        req = if known { req.known_f64(k) } else { req.unknown_f64() };
        let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
        let mut m = Machine::new();
        for (x, y) in &probes {
            let call = CallArgs::new().f64(*x).f64(*y).f64(k);
            let o = m.call(&img, f, &call).unwrap();
            let s = m.call(&img, res.entry, &call).unwrap();
            prop_assert_eq!(o.ret_f64.to_bits(), s.ret_f64.to_bits());
        }
    }
}

/// Second-generation programs: a helper callee (exercising inlining), a
/// global array (exercising known-memory and address substitution), and
/// safe modular indexing.
#[derive(Debug, Clone)]
struct Prog2 {
    helper: E,
    idx: E,
    body: E,
    loop_n: u8,
}

fn arb_prog2() -> impl Strategy<Value = Prog2> {
    (arb_expr(), arb_expr(), arb_expr(), 0u8..5).prop_map(|(helper, idx, body, loop_n)| Prog2 {
        helper,
        idx,
        body,
        loop_n,
    })
}

impl Prog2 {
    fn render(&self) -> String {
        format!(
            r#"
            int table[8] = {{3, 1, 4, 1, 5, 9, 2, 6}};
            int helper(int a, int b, int c) {{
                int t = 0;
                t = {helper};
                return t;
            }}
            int f(int a, int b, int c) {{
                int t = 0;
                for (int i = 0; i < {n}; i++) {{
                    int j = ({idx}) % 8;
                    if (j < 0) {{ j = j + 8; }}
                    t += table[j] + helper({body}, t, i);
                }}
                return t;
            }}
            "#,
            helper = self.helper.render(),
            idx = self.idx.render(),
            body = self.body.render(),
            n = self.loop_n,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calls_and_arrays_differential(
        prog in arb_prog2(),
        spec_mask in 0u8..8,
        pins in proptest::array::uniform3(-20i64..20),
        probes in proptest::collection::vec(proptest::array::uniform3(-30i64..30), 3),
        inline_helper in any::<bool>(),
        know_table in any::<bool>(),
    ) {
        let src = prog.render();
        let mut img = Image::new();
        let compiled = match compile_into(&src, &img) {
            Ok(c) => c,
            Err(e) => panic!("generated program failed to compile: {e}\n{src}"),
        };
        let f = compiled.func("f").unwrap();
        let helper = compiled.func("helper").unwrap();
        let table = compiled.global("table").unwrap();

        let mut req = SpecRequest::new().ret(RetKind::Int);
        for (i, &pin) in pins.iter().enumerate() {
            req = if spec_mask & (1 << i) != 0 {
                req.known_int(pin)
            } else {
                req.unknown_int()
            };
        }
        req = req.func(helper, |o| o.inline = inline_helper);
        if know_table {
            req = req.known_mem(table..table + 64);
        }
        let res = match Rewriter::new(&img).rewrite(f, &req) {
            Ok(r) => r,
            Err(RewriteError::TraceFault { .. }) => return Ok(()),
            Err(e) => panic!("unexpected rewrite failure: {e}\n{src}"),
        };
        let mut entries = vec![res.entry];
        entries.extend(manager_entries(&img, f, &req));

        let mut m = Machine::new();
        for probe in &probes {
            let mut vals = *probe;
            for i in 0..3 {
                if spec_mask & (1 << i) != 0 {
                    vals[i] = pins[i];
                }
            }
            let call = CallArgs::new().int(vals[0]).int(vals[1]).int(vals[2]);
            let orig = m.call(&img, f, &call);
            for &entry in &entries {
                let spec = m.call(&img, entry, &call);
                match (&orig, spec) {
                    (Ok(o), Ok(s)) => prop_assert_eq!(
                        o.ret_int, s.ret_int,
                        "{:?} mask={:#b} inline={} know={}\n{}",
                        vals, spec_mask, inline_helper, know_table, src
                    ),
                    (Err(_), Err(_)) => {}
                    (o, s) => panic!("divergent fault behavior: {o:?} vs {s:?}\n{src}"),
                }
            }
        }
    }
}

/// Third-generation programs widening the ABI surface: a double
/// parameter, an int parameter, and a pointer-to-struct parameter whose
/// fields feed both integer control flow and double arithmetic.
#[derive(Debug, Clone)]
struct Prog3 {
    /// Struct field values baked into the global instance.
    u: i16,
    v: i16,
    w_num: i16,
    /// Integer expression over `a` (param), `b`/`c` (struct fields), `t`.
    iexpr: E,
    /// Second integer expression steering a branch.
    cexpr: E,
    loop_n: u8,
}

fn arb_prog3() -> impl Strategy<Value = Prog3> {
    (
        any::<i16>(),
        any::<i16>(),
        -300i16..300,
        arb_expr(),
        arb_expr(),
        0u8..5,
    )
        .prop_map(|(u, v, w_num, iexpr, cexpr, loop_n)| Prog3 {
            u,
            v,
            w_num,
            iexpr,
            cexpr,
            loop_n,
        })
}

impl Prog3 {
    fn render(&self) -> String {
        format!(
            r#"
            struct Pt {{ double w; int u; int v; }};
            struct Pt pt = {{{w:?}, {u}, {v}}};
            double f(int a, double x, struct Pt* p) {{
                int b = p->u;
                int c = p->v;
                int t = 0;
                t = {iexpr};
                double acc = x;
                if (t < b) {{
                    acc = acc * p->w + x;
                }} else {{
                    acc = acc - p->w;
                }}
                for (int i = 0; i < {n}; i++) {{
                    acc = acc * 0.5 + p->w;
                }}
                if ({cexpr} < t) {{
                    acc = acc + 1.0;
                }}
                return acc;
            }}
            "#,
            w = self.w_num as f64 / 16.0,
            u = self.u,
            v = self.v,
            iexpr = self.iexpr.render(),
            cexpr = self.cexpr.render(),
            n = self.loop_n,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mixed-ABI differential: int + double + pointer-to-struct
    /// parameters, under every combination of known/unknown marking,
    /// through both the direct rewrite and the manager (cold / warm /
    /// post-eviction) paths.
    #[test]
    fn doubles_and_struct_pointers_differential(
        prog in arb_prog3(),
        know_a in any::<bool>(),
        know_x in any::<bool>(),
        know_p in any::<bool>(),
        a_pin in -40i64..40,
        x_pin in -16.0f64..16.0,
        probes in proptest::collection::vec((-50i64..50, -24.0f64..24.0), 4),
    ) {
        let src = prog.render();
        let mut img = Image::new();
        let compiled = match compile_into(&src, &img) {
            Ok(c) => c,
            Err(e) => panic!("generated program failed to compile: {e}\n{src}"),
        };
        let f = compiled.func("f").unwrap();
        let pt = compiled.global("pt").unwrap();

        let mut req = SpecRequest::new().ret(RetKind::F64);
        req = if know_a { req.known_int(a_pin) } else { req.unknown_int() };
        req = if know_x { req.known_f64(x_pin) } else { req.unknown_f64() };
        req = if know_p {
            req.ptr_to_known(pt, 24)
        } else {
            req.unknown_int()
        };
        let res = match Rewriter::new(&img).rewrite(f, &req) {
            Ok(r) => r,
            Err(RewriteError::TraceFault { .. }) => return Ok(()),
            Err(e) => panic!("unexpected rewrite failure: {e}\n{src}"),
        };
        let mut entries = vec![res.entry];
        entries.extend(manager_entries(&img, f, &req));

        let mut m = Machine::new();
        for (pa, px) in &probes {
            let a = if know_a { a_pin } else { *pa };
            let x = if know_x { x_pin } else { *px };
            let call = CallArgs::new().int(a).f64(x).ptr(pt);
            let orig = m.call(&img, f, &call);
            for &entry in &entries {
                let spec = m.call(&img, entry, &call);
                match (&orig, spec) {
                    (Ok(o), Ok(s)) => prop_assert_eq!(
                        o.ret_f64.to_bits(), s.ret_f64.to_bits(),
                        "f({}, {}, pt) diverged (know a={} x={} p={})\n{}",
                        a, x, know_a, know_x, know_p, src
                    ),
                    (Err(_), Err(_)) => {}
                    (o, s) => panic!("divergent fault behavior: {o:?} vs {s:?}\n{src}"),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Figure-5 pipeline on *random* stencil descriptors: arbitrary
    /// point counts, offsets and coefficients, specialized and compared
    /// against the generic interpretation on a random matrix.
    #[test]
    fn random_stencils_specialize_faithfully(
        points in proptest::collection::vec(
            ((-1i64..2), (-1i64..2), -4.0f64..4.0), 1..6),
        seed in any::<u32>(),
    ) {
        let n = points.len();
        let inits: Vec<String> = points
            .iter()
            .map(|(dx, dy, c)| format!("{{{c:?}, {dx}, {dy}}}"))
            .collect();
        let src = format!(
            r#"
            struct P {{ double f; int dx; int dy; }};
            struct S {{ int ps; struct P p[{n}]; }};
            struct S st = {{{n}, {{{init}}}}};
            double apply(double* m, int xs, struct S* s) {{
                double v = 0.0;
                for (int i = 0; i < s->ps; i++) {{
                    struct P* p = &s->p[i];
                    v += p->f * m[p->dx + xs * p->dy];
                }}
                return v;
            }}
            "#,
            init = inits.join(", "),
        );
        let mut img = Image::new();
        let prog = compile_into(&src, &img).unwrap();
        let apply = prog.func("apply").unwrap();
        let st = prog.global("st").unwrap();
        let xs = 5i64;

        let req = SpecRequest::new()
            .unknown_int()
            .known_int(xs)
            .ptr_to_known(st, 8 + n as u64 * 24)
            .ret(RetKind::F64);
        let res = Rewriter::new(&img).rewrite(apply, &req).unwrap();

        // Random 5x5 matrix; probe all interior points.
        let m0 = img.alloc_heap(25 * 8, 8);
        let mut state = seed as u64 + 1;
        for i in 0..25u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            img.write_f64(m0 + i * 8, ((state >> 33) % 1000) as f64 / 8.0).unwrap();
        }
        let mut m = Machine::new();
        for y in 1..4i64 {
            for x in 1..4i64 {
                let center = m0 + ((y * xs + x) * 8) as u64;
                let args = CallArgs::new().ptr(center).int(xs).ptr(st);
                let orig = m.call(&img, apply, &args).unwrap();
                let spec = m.call(&img, res.entry, &args).unwrap();
                prop_assert_eq!(orig.ret_f64.to_bits(), spec.ret_f64.to_bits(),
                    "at ({},{}) stencil {:?}", x, y, points);
                // Structure: loop unrolled, one multiply per point.
                prop_assert_eq!(spec.stats.branches, 0);
                prop_assert_eq!(spec.stats.fp_ops as usize, 2 * n);
            }
        }
    }
}
