//! # brew-suite — the full BREW stack under one roof
//!
//! Re-exports every crate of the reproduction so examples, integration
//! tests and downstream users need a single dependency:
//!
//! * [`x86`] — the x86-64 subset ISA model (decoder/encoder/semantics),
//! * [`image`] — the simulated process image,
//! * [`emu`] — the CPU execution substrate with cost model,
//! * [`minic`] — the mini-C compiler producing rewriter input,
//! * [`core`] — the BREW rewriter itself (the paper's contribution),
//! * [`stencil`] — the §V stencil evaluation workload,
//! * [`pgas`] — the PGAS use case (§V intro, §VI, §VIII),
//! * [`static_verify`] — static translation validation of emitted
//!   variants (the `verify_on_publish` gate).
//!
//! See `examples/quickstart.rs` for the Figure-2 experience in thirty
//! lines.

#![warn(missing_docs)]

pub use brew_core as core;
pub use brew_emu as emu;
pub use brew_image as image;
pub use brew_minic as minic;
pub use brew_pgas as pgas;
pub use brew_stencil as stencil;
pub use brew_verify as static_verify;
pub use brew_x86 as x86;

pub mod verify;

/// Everything a typical example needs.
pub mod prelude {
    pub use crate::verify::{probes_for, verify_rewrite, Divergence};
    pub use brew_core::telemetry::merged_chrome_json;
    pub use brew_core::Variant as SpecVariant;
    pub use brew_core::{
        disasm_result, explain_report, make_guard, make_guard_chain, make_guard_chain_counting,
        make_guard_counting, validate_json, ArgValue, CacheStats, CounterPage, DispatchProfiler,
        Event, EventSink, FlightRecorder, FuncOpts, GuardCase, MetricsRegistry, ParamSpec,
        PassConfig, RetKind, RewriteConfig, RewriteError, RewriteResult, Rewriter, SpanRecorder,
        SpecRequest, SpecializationManager, SymbolKind, SymbolTable,
    };
    pub use brew_emu::{CallArgs, CallOutcome, CostModel, EmuError, Machine, Stats, ValueProfile};
    pub use brew_image::Image;
    pub use brew_minic::{compile_into, disasm, Compiled};
    pub use brew_pgas::PgasArray;
    pub use brew_stencil::{Stencil, Variant};
    pub use brew_verify::{
        publish_gate, publish_gate_with, Finding, Rule, Severity, VerifyGate, VerifyOptions,
        VerifyReport,
    };
}
