//! Differential verification of a rewrite against its original.
//!
//! The paper's robustness contract is "fall back to the original on
//! failure"; this module adds the complementary safety net for *successes*:
//! run both versions on probe inputs and require identical ABI-visible
//! results, so a caller can gate the swap-in of a specialized function on
//! observed equivalence (useful while a `RewriteConfig` is being developed,
//! or as a canary in production-style deployments).

use brew_core::{ArgValue, ParamSpec, RetKind, SpecRequest};
use brew_emu::{CallArgs, Machine};
use brew_image::Image;

/// A detected behavioral difference.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Probe index that diverged.
    pub probe: usize,
    /// Human-readable description.
    pub what: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "probe {}: {}", self.probe, self.what)
    }
}

impl std::error::Error for Divergence {}

/// Deterministic probe generator honoring the request's `BREW_KNOWN`
/// contract: known and pointer-to-known parameters are pinned to their
/// baked argument values (the variant's behavior for other values is
/// unspecified), unknown parameters sweep a seeded pseudo-random range.
/// Feed the result straight into [`verify_rewrite`].
pub fn probes_for(req: &SpecRequest, count: usize, seed: u64) -> Vec<Vec<ArgValue>> {
    // splitmix64: tiny, deterministic, and plenty for probe diversity.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            req.config()
                .params
                .iter()
                .zip(req.args())
                .map(|(spec, baked)| match spec {
                    ParamSpec::Known | ParamSpec::PtrToKnown { .. } => *baked,
                    ParamSpec::Unknown => match baked {
                        ArgValue::Int(_) => ArgValue::Int((next() % 201) as i64 - 100),
                        ArgValue::F64(_) => ArgValue::F64((next() % 4001) as f64 / 100.0 - 20.0),
                    },
                })
                .collect()
        })
        .collect()
}

/// Run `original` and `rewritten` on every probe argument list and compare
/// results (bit-exact for doubles). Fault behavior must match too: if the
/// original faults on a probe, the rewritten version must fault as well.
///
/// Probes should respect the rewrite's `BREW_KNOWN` contract — pass the
/// baked values for known parameters (the rewritten function's behavior
/// for other values is unspecified, exactly as in the paper);
/// [`probes_for`] generates such probes automatically.
pub fn verify_rewrite(
    img: &mut Image,
    original: u64,
    rewritten: u64,
    ret: RetKind,
    probes: &[Vec<ArgValue>],
) -> Result<(), Divergence> {
    let mut m = Machine::new();
    for (i, probe) in probes.iter().enumerate() {
        let mut args = CallArgs::new();
        for a in probe {
            args = match a {
                ArgValue::Int(v) => args.int(*v),
                ArgValue::F64(v) => args.f64(*v),
            };
        }
        let orig = m.call(img, original, &args);
        let spec = m.call(img, rewritten, &args);
        match (orig, spec) {
            (Ok(o), Ok(s)) => match ret {
                RetKind::Int => {
                    if o.ret_int != s.ret_int {
                        return Err(Divergence {
                            probe: i,
                            what: format!("int result {} != {}", o.ret_int, s.ret_int),
                        });
                    }
                }
                RetKind::F64 => {
                    if o.ret_f64.to_bits() != s.ret_f64.to_bits() {
                        return Err(Divergence {
                            probe: i,
                            what: format!("f64 result {} != {}", o.ret_f64, s.ret_f64),
                        });
                    }
                }
                RetKind::Void => {}
            },
            (Err(_), Err(_)) => {}
            (o, s) => {
                return Err(Divergence {
                    probe: i,
                    what: format!("fault behavior differs: {o:?} vs {s:?}"),
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use brew_core::{Rewriter, SpecRequest};

    #[test]
    fn accepts_faithful_rewrites() {
        let mut img = Image::new();
        brew_minic::compile_into("int f(int a, int b) { return a * b + 1; }", &img).unwrap();
        let f = img.lookup("f").unwrap();
        let req = SpecRequest::new()
            .unknown_int()
            .known_int(9)
            .ret(RetKind::Int);
        let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
        let probes: Vec<Vec<ArgValue>> = (-3..3)
            .map(|a| vec![ArgValue::Int(a), ArgValue::Int(9)])
            .collect();
        verify_rewrite(&mut img, f, res.entry, RetKind::Int, &probes).unwrap();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        #[test]
        fn generated_probes_accept_faithful_rewrites(
            k in -40i64..40,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let mut img = Image::new();
            brew_minic::compile_into(
                "int f(int a, int b, int c) { return a * b + c * c - a; }",
                &img,
            )
            .unwrap();
            let f = img.lookup("f").unwrap();
            let req = SpecRequest::new()
                .unknown_int()
                .known_int(k)
                .unknown_int()
                .ret(RetKind::Int);
            let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
            let probes = probes_for(&req, 8, seed);
            proptest::prop_assert_eq!(probes.len(), 8);
            for p in &probes {
                // Known slots stay pinned to the baked value.
                proptest::prop_assert_eq!(&p[1], &ArgValue::Int(k));
            }
            let v = verify_rewrite(&mut img, f, res.entry, RetKind::Int, &probes);
            proptest::prop_assert!(v.is_ok(), "{:?}", v);
        }
    }

    #[test]
    fn detects_contract_violations() {
        // Probing with values that violate BREW_KNOWN exposes the baked
        // constant — verify_rewrite reports the divergence.
        let mut img = Image::new();
        brew_minic::compile_into("int f(int a, int b) { return a * b; }", &img).unwrap();
        let f = img.lookup("f").unwrap();
        let req = SpecRequest::new()
            .unknown_int()
            .known_int(9)
            .ret(RetKind::Int);
        let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
        let bad_probe = vec![vec![ArgValue::Int(2), ArgValue::Int(5)]]; // b != 9
        let err = verify_rewrite(&mut img, f, res.entry, RetKind::Int, &bad_probe).unwrap_err();
        assert!(err.what.contains("10") && err.what.contains("18"), "{err}");
    }
}
