//! Offline drop-in subset of the `proptest` crate.
//!
//! The workspace must build and test with **no registry access**, so this
//! crate reimplements exactly the slice of the proptest API our property
//! tests use: `Strategy` with `prop_map`/`prop_filter`/`prop_recursive`,
//! `BoxedStrategy`, integer/float range strategies, tuples, `Just`,
//! `any::<T>()`, `collection::{vec, btree_map}`, `array::uniform3`,
//! `option::of`, and the `proptest!`/`prop_oneof!`/`prop_compose!`/
//! `prop_assert*!` macros.
//!
//! Generation is *deterministic*: each test case derives its RNG seed from
//! the test name and case index, so failures reproduce across runs. There
//! is no shrinking — the failing case is printed instead.

use std::rc::Rc;

/// Deterministic splitmix64 generator; the only entropy source.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator for one named test case.
    pub fn for_case(test: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Error carried out of a failing test case body (`prop_assert*!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-block configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drive one property: generate-and-check `config.cases` times.
/// Called by the expansion of [`proptest!`]; panics on the first failure.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for i in 0..config.cases {
        let mut rng = TestRng::for_case(name, i);
        if let Err(e) = case(&mut rng) {
            panic!("proptest `{name}` failed at case {i}/{}: {e}", config.cases);
        }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (regenerating otherwise).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Build a recursive strategy: `f` receives a strategy for the inner
    /// levels and returns the composite one. Recursion is bounded by
    /// `depth`; `_desired_size` and `_expected_branch` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let rec = f(cur).boxed();
            let b = base.clone();
            // Lean toward recursion but keep leaves reachable at every level.
            cur = BoxedStrategy::new(move |rng| {
                if rng.below(4) == 0 {
                    b.sample(rng)
                } else {
                    rec.sample(rng)
                }
            });
        }
        cur
    }

    /// Type-erase into a cloneable [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(move |rng| self.sample(rng))
    }
}

/// Cloneable type-erased strategy.
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wrap a sampling function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { sample: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive values",
            self.reason
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union over same-typed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must sum > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively-weighted arm"
        );
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range strategy");
                let span = (b as i128 - a as i128 + 1) as u128 as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                (a as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly finite "reasonable" values; occasionally raw bit patterns.
        match rng.below(8) {
            0 => f64::from_bits(rng.next_u64()),
            _ => (rng.unit_f64() - 0.5) * 2.0e6,
        }
    }
}

/// Strategy over every value of `T` (the `any::<T>()` entry point).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`]/[`btree_map`]: an exact count or a range.
    pub trait IntoSizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with the given element strategy and size.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    /// Strategy for `BTreeMap<K, V>`.
    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        val: V,
        size: R,
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: IntoSizeRange,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            // Duplicate keys collapse; acceptable for a size *range*, and
            // exact sizes in our tests use key spaces far larger than n.
            (0..n)
                .map(|_| (self.key.sample(rng), self.val.sample(rng)))
                .collect()
        }
    }

    /// `proptest::collection::btree_map(key, value, size)`.
    pub fn btree_map<K: Strategy, V: Strategy, R: IntoSizeRange>(
        key: K,
        val: V,
        size: R,
    ) -> BTreeMapStrategy<K, V, R> {
        BTreeMapStrategy { key, val, size }
    }
}

/// Fixed-size array strategies (`proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[T; N]` from one element strategy.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    /// Strategy for `[T; 3]` from one element strategy.
    pub type Uniform3<S> = UniformArray<S, 3>;

    /// `proptest::array::uniform2(element)`.
    pub fn uniform2<S: Strategy>(elem: S) -> UniformArray<S, 2> {
        UniformArray(elem)
    }

    /// `proptest::array::uniform3(element)`.
    pub fn uniform3<S: Strategy>(elem: S) -> Uniform3<S> {
        UniformArray(elem)
    }

    /// `proptest::array::uniform8(element)`.
    pub fn uniform8<S: Strategy>(elem: S) -> UniformArray<S, 8> {
        UniformArray(elem)
    }

    /// `proptest::array::uniform16(element)`.
    pub fn uniform16<S: Strategy>(elem: S) -> UniformArray<S, 16> {
        UniformArray(elem)
    }
}

/// Choose-from-a-slice strategies (`proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly-chosen elements of a fixed slice.
    pub struct Select<T: 'static>(&'static [T]);

    impl<T: Clone + std::fmt::Debug + 'static> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select from empty slice");
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// `proptest::sample::select(&slice)` — the stub supports `'static`
    /// slices only (the common case: a `const` table of variants).
    pub fn select<T: Clone + std::fmt::Debug + 'static>(options: &'static [T]) -> Select<T> {
        Select(options)
    }
}

/// `Option` strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`; `None` about a quarter of the time.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// `proptest::option::of(element)`.
    pub fn of<S: Strategy>(elem: S) -> OptionStrategy<S> {
        OptionStrategy(elem)
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests. Supports the standard block form with an
/// optional leading `#![proptest_config(...)]` attribute; each test's body
/// runs as `Result<(), TestCaseError>` so `return Ok(())` and the
/// `prop_assert*!` macros work as in real proptest.
#[macro_export]
macro_rules! proptest {
    (@blocks $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                #[allow(unused_mut)]
                let mut case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                case()
            });
        }
    )*};
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@blocks $cfg; $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@blocks $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Weighted/unweighted union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Compose a named strategy function from sub-strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($pn:ident: $pt:ty),* $(,)?)
            ($($arg:pat in $strat:expr),* $(,)?)
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($pn: $pt),*) -> impl $crate::Strategy<Value = $out> {
            $crate::Strategy::prop_map(
                ($($strat,)*),
                move |($($arg,)*)| -> $out { $body },
            )
        }
    };
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            a,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&w));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_roundtrip(v in proptest::collection::vec(any::<u8>(), 1..9), b in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            if b {
                return Ok(());
            }
            prop_assert_eq!(v.len(), v.len());
        }
    }

    // Inside this crate `proptest` paths must resolve; mimic downstream use.
    use crate as proptest;

    prop_compose! {
        fn arb_pair()(a in 0u8..10, b in 0u8..10) -> (u8, u8) { (a, b) }
    }

    proptest! {
        #[test]
        fn compose_and_oneof(p in arb_pair(), pick in prop_oneof![1 => Just(1u8), 2 => Just(2u8)]) {
            prop_assert!(p.0 < 10 && p.1 < 10);
            prop_assert!(pick == 1 || pick == 2);
        }
    }
}
