//! Zero false positives: every variant the rewriter actually emits must
//! verify clean — including under `strict_provenance`, which is how the
//! V1 experiment runs the pipeline.

use brew_core::{RetKind, Rewriter, SpecRequest};
use brew_image::Image;
use brew_verify::{verify, VerifyOptions};

fn assert_clean(img: &Image, func: u64, req: &SpecRequest, what: &str) {
    let res = Rewriter::new(img).rewrite(func, req).expect(what);
    let opts = VerifyOptions {
        strict_provenance: true,
        ..VerifyOptions::default()
    };
    let report = verify(img, func, req, &res, &opts);
    if !report.passed() {
        for line in brew_verify::render_report(img, &res, &report) {
            eprintln!("{line}");
        }
        panic!(
            "{what}: clean variant rejected ({} errors)",
            report.error_count()
        );
    }
    assert!(report.insts > 0, "{what}: verifier saw no instructions");
}

#[test]
fn minic_integer_variants_verify_clean() {
    let src = r#"
        int poly(int x, int n) {
            int r = 1;
            for (int i = 0; i < n; i++) r *= x;
            return r;
        }
        int scale(int x, int k) { return x * k + k / 3; }
        int clamp(int x, int lo, int hi) {
            if (x < lo) return lo;
            if (x > hi) return hi;
            return x;
        }
    "#;
    let img = Image::new();
    let prog = brew_minic::compile_into(src, &img).unwrap();
    assert_clean(
        &img,
        prog.func("poly").unwrap(),
        &SpecRequest::new()
            .unknown_int()
            .known_int(6)
            .ret(RetKind::Int),
        "poly n=6",
    );
    // A known value big enough to trip the provenance size threshold: it
    // must be explained by the request's argument list.
    assert_clean(
        &img,
        prog.func("scale").unwrap(),
        &SpecRequest::new()
            .unknown_int()
            .known_int(123_456_789)
            .ret(RetKind::Int),
        "scale k=123456789",
    );
    assert_clean(
        &img,
        prog.func("clamp").unwrap(),
        &SpecRequest::new()
            .unknown_int()
            .known_int(-1_000_000)
            .known_int(9_999_999)
            .ret(RetKind::Int),
        "clamp big bounds",
    );
}

#[test]
fn hooked_variants_with_kept_calls_verify_clean() {
    let src = r#"
        int entry_count;
        int exit_count;
        void on_entry(int f) { entry_count += 1; }
        void on_exit(int f)  { exit_count += 1; }
        int sum(int* p, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += p[i];
            return s;
        }
    "#;
    let img = Image::new();
    let prog = brew_minic::compile_into(src, &img).unwrap();
    let req = SpecRequest::new()
        .unknown_int()
        .known_int(4)
        .ret(RetKind::Int)
        .entry_hook(prog.func("on_entry").unwrap())
        .exit_hook(prog.func("on_exit").unwrap())
        .func(prog.func("on_entry").unwrap(), |o| o.inline = false)
        .func(prog.func("on_exit").unwrap(), |o| o.inline = false);
    assert_clean(&img, prog.func("sum").unwrap(), &req, "hooked sum");
}

#[test]
fn stencil_apply_variant_verifies_clean() {
    let mut st = brew_stencil::Stencil::new(16, 16);
    let apply = st.prog.func("apply").unwrap();
    let req = st.apply_request();
    let res = st.specialize_apply().expect("stencil apply specializes");
    let opts = VerifyOptions {
        strict_provenance: true,
        ..VerifyOptions::default()
    };
    let report = verify(&st.img, apply, &req, &res, &opts);
    if !report.passed() {
        for line in brew_verify::render_report(&st.img, &res, &report) {
            eprintln!("{line}");
        }
        panic!("stencil apply: clean variant rejected");
    }
}
