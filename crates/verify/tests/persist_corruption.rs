//! Persistence corruption suite: every way a checkpoint file can lie must
//! be caught on load, with a typed [`PersistError`], a
//! `brew_persist_rejected_total` increment, and **never** a publication.
//!
//! File-level corruption (truncation, wrong magic, wrong format version)
//! rejects the whole checkpoint. Entry-level corruption is rejected
//! entry-by-entry: bit-flipped payload bytes die at the checksum, a
//! snapshot whose folded bytes no longer match the live image dies at the
//! staleness check, and — the deep end — semantically corrupted code that
//! *checksums correctly* (because the corruption happened before save)
//! dies at the publish gate, which re-runs full translation validation on
//! every loaded variant. The gate sweep reuses the 13-kind
//! [`brew_verify::mutate`] harness, so "corrupted" here means the same
//! adversarial corpus the verifier is proven against.

use brew_core::telemetry::metrics::Ctr;
use brew_core::{
    persist, PersistError, RetKind, RewriteResult, SpecRequest, SpecializationManager,
};
use brew_image::Image;
use brew_verify::mutate;
use std::collections::HashSet;

const PROG: &str = r#"
    int hits;
    void tick(int f) { hits += 1; }

    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
    int scale(int x, int k) { return x * k + k / 3; }
    int clamp(int x, int lo, int hi) {
        if (x < lo) return lo;
        if (x > hi) return hi;
        return x;
    }
    int sum(int* p, int n) {
        int s = 0;
        for (int i = 0; i < n; i++) s += p[i];
        return s;
    }
    int dotk(int* xs, int* ys, int n) {
        tick(0);
        int d = 0;
        for (int i = 0; i < n; i++) d += xs[i] * ys[i];
        return d;
    }
"#;

/// One process: compile the corpus program and fill the shared
/// known-data block deterministically.
fn boot() -> (Image, brew_minic::Compiled, u64) {
    let img = Image::new();
    let prog = brew_minic::compile_into(PROG, &img).unwrap();
    let known = img.alloc_heap(6 * 8, 8);
    for i in 0..6 {
        img.write_u64(known + i * 8, 100 + i * 7).unwrap();
    }
    (img, prog, known)
}

/// The corpus of (name, request) pairs — the same shapes the mutation
/// harness uses, so between them every mutation kind has a site.
fn corpus(prog: &brew_minic::Compiled, known: u64) -> Vec<(&'static str, u64, SpecRequest)> {
    vec![
        (
            "poly n=6",
            prog.func("poly").unwrap(),
            SpecRequest::new()
                .unknown_int()
                .known_int(6)
                .ret(RetKind::Int),
        ),
        (
            "scale k=123456789",
            prog.func("scale").unwrap(),
            SpecRequest::new()
                .unknown_int()
                .known_int(123_456_789)
                .ret(RetKind::Int),
        ),
        (
            "clamp unknown bounds",
            prog.func("clamp").unwrap(),
            SpecRequest::new()
                .unknown_int()
                .unknown_int()
                .unknown_int()
                .ret(RetKind::Int),
        ),
        (
            "hooked sum",
            prog.func("sum").unwrap(),
            SpecRequest::new()
                .unknown_int()
                .known_int(4)
                .ret(RetKind::Int)
                .entry_hook(prog.func("tick").unwrap())
                .func(prog.func("tick").unwrap(), |o| o.inline = false),
        ),
        (
            "dotk known xs",
            prog.func("dotk").unwrap(),
            SpecRequest::new()
                .ptr_to_known(known, 6 * 8)
                .unknown_int()
                .known_int(6)
                .ret(RetKind::Int),
        ),
    ]
}

/// Publish the corpus through an ungated manager and checkpoint it.
fn checkpoint(
    img: &Image,
    prog: &brew_minic::Compiled,
    known: u64,
) -> (SpecializationManager, Vec<u8>) {
    let mgr = SpecializationManager::new();
    for (what, func, req) in corpus(prog, known) {
        mgr.get_or_rewrite(img, func, &req).expect(what);
    }
    let bytes = mgr.save_variant_bytes(img);
    (mgr, bytes)
}

/// A "restarted process": fresh image with identical layout, manager
/// gated by the full static verifier. Strict provenance matters here:
/// folded immediates in a persisted variant must be re-derivable from
/// the live image's known bytes, exactly like the mutation harness
/// demands of fresh rewrites.
fn restarted() -> (Image, brew_minic::Compiled, u64, SpecializationManager) {
    let (img, prog, known) = boot();
    let mgr = SpecializationManager::builder()
        .publish_gate(brew_verify::publish_gate_with(brew_verify::VerifyOptions {
            strict_provenance: true,
            ..brew_verify::VerifyOptions::default()
        }))
        .build();
    (img, prog, known, mgr)
}

fn rejected_total(mgr: &SpecializationManager) -> u64 {
    mgr.metrics().counter(Ctr::PersistRejected).get()
}

#[test]
fn truncated_checkpoint_is_rejected_wholesale() {
    let (img, prog, known) = boot();
    let (_, bytes) = checkpoint(&img, &prog, known);
    let (img2, _, _, mgr2) = restarted();

    // Cut the file at a sweep of prefixes: inside the header, inside the
    // first entry's frame, and one byte short of complete.
    for cut in [0, 7, 11, 15, 17, bytes.len() / 2, bytes.len() - 1] {
        let err = mgr2.load_variant_bytes(&img2, &bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, PersistError::Truncated | PersistError::BadMagic),
            "cut at {cut}: expected Truncated/BadMagic, got {err:?}"
        );
    }
    assert_eq!(mgr2.len(), 0, "nothing may publish from a truncated file");
    assert_eq!(rejected_total(&mgr2), 7, "each truncated load counted");
}

#[test]
fn wrong_format_version_is_rejected_wholesale() {
    let (img, prog, known) = boot();
    let (_, bytes) = checkpoint(&img, &prog, known);
    let (img2, _, _, mgr2) = restarted();

    let mut patched = bytes.clone();
    patched[8] = persist::FORMAT_VERSION as u8 + 1; // version is LE at [8..12]
    let err = mgr2.load_variant_bytes(&img2, &patched).unwrap_err();
    assert!(
        matches!(err, PersistError::BadVersion { found } if found == persist::FORMAT_VERSION + 1),
        "{err:?}"
    );

    let mut garbled = bytes.clone();
    garbled[0] ^= 0xFF;
    let err = mgr2.load_variant_bytes(&img2, &garbled).unwrap_err();
    assert!(matches!(err, PersistError::BadMagic), "{err:?}");

    assert_eq!(mgr2.len(), 0);
    assert_eq!(rejected_total(&mgr2), 2);
}

#[test]
fn bit_flipped_variant_bytes_fail_the_checksum_entry_locally() {
    let (img, prog, known) = boot();
    let (mgr1, bytes) = checkpoint(&img, &prog, known);
    let total = mgr1.len();
    assert!(total >= 5);

    let spans = persist::entry_code_spans(&bytes).unwrap();
    assert_eq!(spans.len(), total);

    // Flip a single bit in one entry's code bytes: that entry (and only
    // that entry) must die at the checksum; the rest load and verify.
    for (i, span) in spans.iter().enumerate() {
        let mut corrupt = bytes.clone();
        corrupt[span.start + span.len() / 2] ^= 0x04;
        let (img2, _, _, mgr2) = restarted();
        let report = mgr2.load_variant_bytes(&img2, &corrupt).unwrap();
        assert_eq!(
            report.published,
            total - 1,
            "flip in entry {i}: all other entries load"
        );
        assert_eq!(report.rejected.len(), 1);
        assert!(
            matches!(report.rejected[0].2, PersistError::Checksum { index } if index == i),
            "flip in entry {i}: {:?}",
            report.rejected[0]
        );
        assert_eq!(mgr2.len(), total - 1);
        assert_eq!(rejected_total(&mgr2), 1);
    }
}

#[test]
fn stale_known_snapshot_is_rejected_and_negatively_cached() {
    let (img, prog, known) = boot();
    let (_, bytes) = checkpoint(&img, &prog, known);

    // The restarted process boots with *different* known data: the dotk
    // variant's folded constants are stale and must not serve.
    let (img2, prog2, known2, mgr2) = restarted();
    img2.write_u64(known2, 9999).unwrap();
    let report = mgr2.load_variant_bytes(&img2, &bytes).unwrap();
    assert_eq!(report.rejected.len(), 1, "{:?}", report.rejected);
    let (func, _, ref err) = report.rejected[0];
    assert_eq!(func, prog2.func("dotk").unwrap());
    assert!(matches!(err, PersistError::StaleSnapshot), "{err:?}");
    assert_eq!(report.published, 4, "the clean entries still load");
    assert_eq!(rejected_total(&mgr2), 1);

    // The stale key is negatively cached: the failure is memoized so the
    // key cold-starts through the ordinary backoff instead of looping.
    let dotk_req = corpus(&prog2, known2).pop().unwrap().2;
    assert!(
        mgr2.failure_of(prog2.func("dotk").unwrap(), &dotk_req)
            .is_some(),
        "stale load must be negatively cached"
    );
    assert!(!mgr2.is_resident(prog2.func("dotk").unwrap(), dotk_req.fingerprint()));
}

/// The deep end: corruption that happened *before* the checkpoint was
/// written checksums perfectly — framing and hashes cannot catch it. The
/// publish gate must. Every applicable `mutate` kind is applied to a
/// published variant, checkpointed, and loaded into a gated restart:
/// 100% rejection, zero false accepts.
#[test]
fn semantically_corrupted_code_never_republishes_through_the_gate() {
    let mut applied_kinds: HashSet<&'static str> = HashSet::new();
    let mut rejected = 0usize;
    let mut false_accepts = Vec::new();

    for kind in mutate::Mutation::ALL {
        for (what, case_idx) in [
            ("poly n=6", 0usize),
            ("scale k=123456789", 1),
            ("clamp unknown bounds", 2),
            ("hooked sum", 3),
            ("dotk known xs", 4),
        ] {
            // Fresh everything per (kind, case): mutations must not leak
            // between iterations.
            let (img, prog, known) = boot();
            let mgr1 = SpecializationManager::new();
            let (_, func, req) = corpus(&prog, known).swap_remove(case_idx);
            let v = mgr1.get_or_rewrite(&img, func, &req).expect(what);
            let res = RewriteResult {
                entry: v.entry,
                code_len: v.code_len,
                stats: v.stats,
                snapshot: v.snapshot.clone(),
            };
            let Some(_m) = mutate::apply(&img, &res, kind) else {
                continue;
            };
            applied_kinds.insert(kind.name());
            // The checkpoint reads back the *mutated* bytes, so the frame
            // checksum is consistent with the corruption.
            let bytes = mgr1.save_variant_bytes(&img);

            let (img2, _, _, mgr2) = restarted();
            let report = mgr2.load_variant_bytes(&img2, &bytes).unwrap();
            if report.published != 0 {
                false_accepts.push((kind.name(), what));
                continue;
            }
            assert_eq!(report.rejected.len(), 1);
            assert!(
                matches!(
                    report.rejected[0].2,
                    PersistError::Gate { .. } | PersistError::StaleSnapshot
                ),
                "{} / {}: {:?}",
                kind.name(),
                what,
                report.rejected[0]
            );
            assert_eq!(rejected_total(&mgr2), 1);
            assert_eq!(mgr2.len(), 0);
            rejected += 1;
            break; // one corpus hit per kind is enough
        }
    }

    assert!(
        false_accepts.is_empty(),
        "corrupted variants republished: {false_accepts:?}"
    );
    assert!(
        applied_kinds.len() >= 12,
        "sweep must exercise at least 12 corruption kinds, got {}: {:?}",
        applied_kinds.len(),
        applied_kinds
    );
    assert_eq!(rejected, applied_kinds.len(), "100% rejection");
}

/// Control: an *uncorrupted* checkpoint loads through the very same gate
/// with zero rejections — the suite above is not passing because the
/// gate rejects everything.
#[test]
fn clean_checkpoint_loads_fully_through_the_gate() {
    let (img, prog, known) = boot();
    let (mgr1, bytes) = checkpoint(&img, &prog, known);
    let (img2, _, _, mgr2) = restarted();
    let report = mgr2.load_variant_bytes(&img2, &bytes).unwrap();
    assert_eq!(report.published, mgr1.len(), "{:?}", report.rejected);
    assert!(report.rejected.is_empty());
    assert_eq!(rejected_total(&mgr2), 0);
    assert_eq!(
        mgr2.metrics().counter(Ctr::PersistLoaded).get(),
        mgr1.len() as u64
    );
}
