//! Seeded-mutant detection: apply every applicable corruption from
//! `brew_verify::mutate` to a corpus of real variants and require that
//! the verifier rejects every single mutant — and accepts the variant
//! again once the corruption is reverted.

use brew_core::{RetKind, RewriteResult, Rewriter, SpecRequest};
use brew_image::Image;
use brew_verify::{mutate, verify, VerifyOptions};
use std::collections::HashSet;

const PROG: &str = r#"
    int hits;
    void tick(int f) { hits += 1; }

    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
    int scale(int x, int k) { return x * k + k / 3; }
    int clamp(int x, int lo, int hi) {
        if (x < lo) return lo;
        if (x > hi) return hi;
        return x;
    }
    int sum(int* p, int n) {
        int s = 0;
        for (int i = 0; i < n; i++) s += p[i];
        return s;
    }
    int dotk(int* xs, int* ys, int n) {
        tick(0);
        int d = 0;
        for (int i = 0; i < n; i++) d += xs[i] * ys[i];
        return d;
    }
"#;

struct Case {
    what: &'static str,
    func: u64,
    req: SpecRequest,
    res: RewriteResult,
}

fn corpus(img: &Image) -> Vec<Case> {
    let prog = brew_minic::compile_into(PROG, img).unwrap();
    let known = img.alloc_heap(6 * 8, 8);
    for i in 0..6 {
        img.write_u64(known + i * 8, 100 + i * 7).unwrap();
    }
    let mut cases = Vec::new();
    let mut add = |what: &'static str, name: &str, req: SpecRequest| {
        let func = prog.func(name).unwrap();
        let res = Rewriter::new(img).rewrite(func, &req).expect(what);
        cases.push(Case {
            what,
            func,
            req,
            res,
        });
    };
    add(
        "poly n=6",
        "poly",
        SpecRequest::new()
            .unknown_int()
            .known_int(6)
            .ret(RetKind::Int),
    );
    add(
        "scale k=123456789",
        "scale",
        SpecRequest::new()
            .unknown_int()
            .known_int(123_456_789)
            .ret(RetKind::Int),
    );
    // Unknown bounds keep the conditional branches in the variant.
    add(
        "clamp unknown bounds",
        "clamp",
        SpecRequest::new()
            .unknown_int()
            .unknown_int()
            .unknown_int()
            .ret(RetKind::Int),
    );
    // Kept hook calls: call/push/pop sites.
    add(
        "hooked sum",
        "sum",
        SpecRequest::new()
            .unknown_int()
            .known_int(4)
            .ret(RetKind::Int)
            .entry_hook(prog.func("tick").unwrap())
            .func(prog.func("tick").unwrap(), |o| o.inline = false),
    );
    // Inlined `tick` gives absolute global load/store sites; the
    // PTR_TO_KNOWN operand gives a non-empty folded read-set.
    add(
        "dotk known xs",
        "dotk",
        SpecRequest::new()
            .ptr_to_known(known, 6 * 8)
            .unknown_int()
            .known_int(6)
            .ret(RetKind::Int),
    );
    cases
}

#[test]
fn every_seeded_mutant_is_detected() {
    let img = Image::new();
    let cases = corpus(&img);
    let opts = VerifyOptions {
        strict_provenance: true,
        ..VerifyOptions::default()
    };
    let mut applied_kinds: HashSet<&'static str> = HashSet::new();
    let mut applied = 0usize;
    let mut detected = 0usize;
    for case in &cases {
        let clean = verify(&img, case.func, &case.req, &case.res, &opts);
        assert!(
            clean.passed(),
            "{}: clean variant must verify before mutation",
            case.what
        );
        for kind in mutate::Mutation::ALL {
            let Some(m) = mutate::apply(&img, &case.res, kind) else {
                continue;
            };
            applied += 1;
            applied_kinds.insert(kind.name());
            let report = verify(&img, case.func, &case.req, &case.res, &opts);
            if report.passed() {
                for line in brew_verify::render_report(&img, &case.res, &report) {
                    eprintln!("{line}");
                }
                panic!(
                    "{}: mutant `{}` escaped the verifier",
                    case.what,
                    kind.name()
                );
            }
            detected += 1;
            m.revert(&img);
            let again = verify(&img, case.func, &case.req, &case.res, &opts);
            assert!(
                again.passed(),
                "{}: reverting `{}` must restore a clean verdict",
                case.what,
                kind.name()
            );
        }
    }
    assert_eq!(applied, detected, "every applied mutant must be detected");
    assert!(
        applied_kinds.len() >= 12,
        "corpus must exercise at least 12 corruption kinds, got {}: {:?}",
        applied_kinds.len(),
        applied_kinds
    );
}

#[test]
fn corpus_exercises_every_mutation_kind() {
    let img = Image::new();
    let cases = corpus(&img);
    let mut kinds: HashSet<&'static str> = HashSet::new();
    for case in &cases {
        for kind in mutate::Mutation::ALL {
            if let Some(m) = mutate::apply(&img, &case.res, kind) {
                kinds.insert(kind.name());
                m.revert(&img);
            }
        }
    }
    let missing: Vec<_> = mutate::Mutation::ALL
        .iter()
        .filter(|k| !kinds.contains(k.name()))
        .collect();
    assert!(
        missing.is_empty(),
        "mutation kinds with no site in the corpus: {missing:?}"
    );
}
