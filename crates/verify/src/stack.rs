//! R3: abstract RSP-offset analysis. Every path from the variant entry
//! must reach `ret` (or a tail escape) with the stack pointer exactly
//! where it started, and RSP may only move by `push`/`pop`/`sub`/`add`
//! with immediate operands — anything else is unanalyzable and rejected.

use crate::{Finding, Region, Rule, Severity, VerifyReport};
use brew_x86::{defuse, AluOp, Gpr, Inst, MemRef, Operand};
use std::collections::HashMap;

/// The RSP displacement of a frame-adjusting `lea rsp, [rsp+disp]`, the
/// emitter's preferred frame idiom (it leaves flags untouched).
fn lea_rsp_disp(inst: &Inst) -> Option<i64> {
    match inst {
        Inst::Lea {
            dst: Gpr::Rsp,
            src:
                MemRef {
                    base: Some(Gpr::Rsp),
                    index: None,
                    disp,
                },
        } => Some(i64::from(*disp)),
        _ => None,
    }
}

pub(crate) fn check_stack(region: &Region, report: &mut VerifyReport) {
    let mut err = |addr, detail: String| {
        report.findings.push(Finding {
            rule: Rule::StackDiscipline,
            severity: Severity::Error,
            addr,
            detail,
        })
    };
    // Depth (bytes RSP sits *below* its entry value) at each instruction
    // boundary reached so far. A worklist walk: conflicting depths at a
    // join mean some path mis-balances.
    let mut depth: HashMap<u64, i64> = HashMap::new();
    let mut work: Vec<(u64, i64)> = vec![(region.entry, 0)];
    while let Some((addr, d)) = work.pop() {
        match depth.get(&addr) {
            Some(&seen) => {
                if seen != d {
                    err(
                        addr,
                        format!("conflicting stack depths at join ({seen} vs {d} bytes)"),
                    );
                }
                continue;
            }
            None => {
                depth.insert(addr, d);
            }
        }
        // Mid-instruction targets are already R2 errors; don't walk them.
        let Ok(idx) = region.insts.binary_search_by_key(&addr, |(a, _, _)| *a) else {
            continue;
        };
        let (_, inst, len) = &region.insts[idx];
        let next = addr + *len as u64;
        match inst {
            Inst::Push { .. } => work.push((next, d + 8)),
            Inst::Pop { .. } => {
                if d < 8 {
                    err(addr, "pop below the caller's stack frame".into());
                }
                work.push((next, d - 8));
            }
            Inst::Alu {
                op: op @ (AluOp::Add | AluOp::Sub),
                dst: Operand::Reg(Gpr::Rsp),
                src: Operand::Imm(imm),
                ..
            } => {
                let d2 = if *op == AluOp::Sub { d + imm } else { d - imm };
                if d2 < 0 {
                    err(
                        addr,
                        "stack pointer adjusted above the caller's frame".into(),
                    );
                }
                work.push((next, d2));
            }
            _ if lea_rsp_disp(inst).is_some() => {
                // `lea rsp, [rsp+disp]`: rsp += disp, so depth -= disp.
                let d2 = d - lea_rsp_disp(inst).unwrap();
                if d2 < 0 {
                    err(
                        addr,
                        "stack pointer adjusted above the caller's frame".into(),
                    );
                }
                work.push((next, d2));
            }
            Inst::Ret => {
                if d != 0 {
                    err(addr, format!("ret with {d} bytes still on the stack"));
                }
            }
            Inst::JmpRel { target } => {
                if region.contains(*target) {
                    work.push((*target, d));
                } else if d != 0 {
                    err(
                        addr,
                        format!("tail escape to {target:#x} with {d} bytes still on the stack"),
                    );
                }
            }
            Inst::Jcc { target, .. } => {
                if region.contains(*target) {
                    work.push((*target, d));
                } else if d != 0 {
                    err(
                        addr,
                        format!(
                            "conditional escape to {target:#x} with {d} bytes still on the stack"
                        ),
                    );
                }
                work.push((next, d));
            }
            // Calls are depth-neutral: the pushed return address is
            // consumed by the callee's `ret`.
            Inst::CallRel { .. } => work.push((next, d)),
            // Indirect transfers are R2 errors; nothing sound to follow.
            Inst::CallInd { .. } | Inst::JmpInd { .. } | Inst::Ud2 => {}
            _ => {
                let mut touches_rsp = false;
                defuse::for_each_write(inst, &mut |loc| {
                    if loc == defuse::Loc::Gpr(Gpr::Rsp) {
                        touches_rsp = true;
                    }
                });
                if touches_rsp {
                    err(
                        addr,
                        format!("`{inst}` modifies RSP in a way the verifier cannot model"),
                    );
                }
                work.push((next, d));
            }
        }
    }
}
