//! Seeded-corruption harness: length-preserving, in-place byte mutations
//! of a published variant, one per failure class the verifier claims to
//! catch. The V1 experiment applies every applicable mutation to every
//! corpus variant and requires 100% detection (EXPERIMENTS.md).
//!
//! Every mutation is applied by re-encoding a modified instruction with
//! the canonical encoder at the same address and requiring the same
//! length, so a mutant differs from the clean variant in *semantics*, not
//! in layout — exactly the corruption class a miscompiling pass or a
//! clobbered code buffer produces. Mutations that find no applicable site
//! in a given variant return `None` and are skipped by the harness.

use brew_core::RewriteResult;
use brew_image::{layout, Image};
use brew_x86::{decode, encode, AluOp, Gpr, Inst, MemRef, Operand};

use crate::Rule;

/// One corruption kind. `ALL` spans all five rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// First opcode byte replaced with an undefined one (0x06).
    UnknownOpcode,
    /// Final `ret` replaced with a bare REX prefix: the region now ends
    /// mid-instruction.
    TruncatedTail,
    /// An internal branch target nudged onto a mid-instruction address.
    BranchOffByTwo,
    /// A branch retargeted outside every mapped segment (or outside the
    /// variant when only a short encoding fits).
    WildJump,
    /// A call retargeted into the Data segment.
    CallIntoData,
    /// A `push` replaced by NOPs, leaving its `pop` unmatched.
    DroppedPush,
    /// A `pop` replaced by NOPs, leaving its `push` unmatched.
    DroppedPop,
    /// A frame `sub/add rsp, imm` skewed by 8 bytes.
    FrameSkew,
    /// An absolute store redirected into the folded-known read-set.
    StoreIntoKnown,
    /// An absolute store redirected onto the variant's own code.
    StoreIntoJit,
    /// A large (folded) immediate perturbed by one.
    FoldedImmTweak,
    /// An absolute load redirected to unmapped memory.
    DanglingDataRef,
    /// An absolute load redirected into the Code segment.
    LoadFromCode,
}

impl Mutation {
    /// Every mutation kind, grouped by the rule family expected to
    /// catch it.
    pub const ALL: [Mutation; 13] = [
        Mutation::UnknownOpcode,
        Mutation::TruncatedTail,
        Mutation::BranchOffByTwo,
        Mutation::WildJump,
        Mutation::CallIntoData,
        Mutation::DroppedPush,
        Mutation::DroppedPop,
        Mutation::FrameSkew,
        Mutation::StoreIntoKnown,
        Mutation::StoreIntoJit,
        Mutation::FoldedImmTweak,
        Mutation::DanglingDataRef,
        Mutation::LoadFromCode,
    ];

    /// Short stable name (used in the V1 table).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::UnknownOpcode => "unknown-opcode",
            Mutation::TruncatedTail => "truncated-tail",
            Mutation::BranchOffByTwo => "branch-off-by-two",
            Mutation::WildJump => "wild-jump",
            Mutation::CallIntoData => "call-into-data",
            Mutation::DroppedPush => "dropped-push",
            Mutation::DroppedPop => "dropped-pop",
            Mutation::FrameSkew => "frame-skew",
            Mutation::StoreIntoKnown => "store-into-known",
            Mutation::StoreIntoJit => "store-into-jit",
            Mutation::FoldedImmTweak => "folded-imm-tweak",
            Mutation::DanglingDataRef => "dangling-data-ref",
            Mutation::LoadFromCode => "load-from-code",
        }
    }

    /// The rule family this corruption is designed to exercise. (A
    /// mutant may legitimately be caught by a different rule first; the
    /// harness only requires that *some* rule catches it.)
    pub fn rule(self) -> Rule {
        match self {
            Mutation::UnknownOpcode | Mutation::TruncatedTail => Rule::Roundtrip,
            Mutation::BranchOffByTwo | Mutation::WildJump | Mutation::CallIntoData => {
                Rule::CfgClosure
            }
            Mutation::DroppedPush | Mutation::DroppedPop | Mutation::FrameSkew => {
                Rule::StackDiscipline
            }
            Mutation::StoreIntoKnown | Mutation::StoreIntoJit => Rule::WriteContainment,
            Mutation::FoldedImmTweak | Mutation::DanglingDataRef | Mutation::LoadFromCode => {
                Rule::Provenance
            }
        }
    }
}

/// A mutation applied to the image; holds the original bytes for
/// [`Applied::revert`].
pub struct Applied {
    /// Which corruption was applied.
    pub kind: Mutation,
    /// Address of the patched bytes.
    pub addr: u64,
    old: Vec<u8>,
}

impl Applied {
    /// Restore the clean variant bytes.
    pub fn revert(&self, img: &Image) {
        img.write_bytes(self.addr, &self.old)
            .expect("reverting a mutation cannot fault");
    }
}

/// An address in the unmapped gap below the JIT segment.
fn unmapped_gap() -> u64 {
    layout::JIT_BASE - 0x1_0000
}

/// Apply `kind` to the emitted region of `res` inside `img`, if a
/// suitable site exists. The patch preserves instruction layout
/// (identical length at the same address).
pub fn apply(img: &Image, res: &RewriteResult, kind: Mutation) -> Option<Applied> {
    let insts = decode_list(img, res.entry, res.code_len)?;
    let region = res.entry..res.entry + res.code_len as u64;
    match kind {
        Mutation::UnknownOpcode => {
            let (addr, _, len) = insts.first()?;
            let mut bytes = read(img, *addr, *len)?;
            bytes[0] = 0x06;
            patch(img, *addr, &bytes, kind)
        }
        Mutation::TruncatedTail => {
            let (addr, inst, _) = insts.last()?;
            matches!(inst, Inst::Ret).then_some(())?;
            patch(img, *addr, &[0x48], kind)
        }
        Mutation::BranchOffByTwo => insts.iter().find_map(|(addr, inst, len)| {
            let target = inst.static_target()?;
            (!matches!(inst, Inst::CallRel { .. }) && region.contains(&target)).then_some(())?;
            for delta in [2u64, 1, 3] {
                let t = target.wrapping_add(delta);
                if !region.contains(&t) || is_boundary(&insts, t) {
                    continue;
                }
                let mut m = *inst;
                m.set_static_target(t);
                if let Some(bytes) = encode_same_len(&m, *addr, *len) {
                    return patch(img, *addr, &bytes, kind);
                }
            }
            None
        }),
        Mutation::WildJump => insts.iter().find_map(|(addr, inst, len)| {
            matches!(inst, Inst::JmpRel { .. } | Inst::Jcc { .. }).then_some(())?;
            // Prefer a target in the unmapped gap; short encodings that
            // cannot reach it get one just past the region instead (still
            // an illegal escape).
            for t in [unmapped_gap(), region.end + 0x20] {
                if region.contains(&t) {
                    continue;
                }
                let mut m = *inst;
                m.set_static_target(t);
                if let Some(bytes) = encode_same_len(&m, *addr, *len) {
                    return patch(img, *addr, &bytes, kind);
                }
            }
            None
        }),
        Mutation::CallIntoData => insts.iter().find_map(|(addr, inst, len)| {
            matches!(inst, Inst::CallRel { .. }).then_some(())?;
            let mut m = *inst;
            m.set_static_target(layout::DATA_BASE + 0x10);
            let bytes = encode_same_len(&m, *addr, *len)?;
            patch(img, *addr, &bytes, kind)
        }),
        Mutation::DroppedPush => insts.iter().find_map(|(addr, inst, len)| {
            matches!(
                inst,
                Inst::Push {
                    src: Operand::Reg(_)
                }
            )
            .then_some(())?;
            patch(img, *addr, &vec![0x90; *len], kind)
        }),
        Mutation::DroppedPop => insts.iter().find_map(|(addr, inst, len)| {
            matches!(
                inst,
                Inst::Pop {
                    dst: Operand::Reg(_)
                }
            )
            .then_some(())?;
            patch(img, *addr, &vec![0x90; *len], kind)
        }),
        Mutation::FrameSkew => insts.iter().find_map(|(addr, inst, len)| {
            for skew in [8i64, -8] {
                let m = match inst {
                    Inst::Alu {
                        op: op @ (AluOp::Sub | AluOp::Add),
                        w,
                        dst: dst @ Operand::Reg(Gpr::Rsp),
                        src: Operand::Imm(imm),
                    } => Inst::Alu {
                        op: *op,
                        w: *w,
                        dst: *dst,
                        src: Operand::Imm(imm + skew),
                    },
                    Inst::Lea {
                        dst: Gpr::Rsp,
                        src:
                            MemRef {
                                base: Some(Gpr::Rsp),
                                index: None,
                                disp,
                            },
                    } => Inst::Lea {
                        dst: Gpr::Rsp,
                        src: MemRef {
                            base: Some(Gpr::Rsp),
                            index: None,
                            disp: disp + skew as i32,
                        },
                    },
                    _ => return None,
                };
                if let Some(bytes) = encode_same_len(&m, *addr, *len) {
                    return patch(img, *addr, &bytes, kind);
                }
            }
            None
        }),
        Mutation::StoreIntoKnown => {
            let known = res.snapshot.ranges().first()?.start;
            retarget_abs(img, &insts, kind, AbsSite::Store, known)
        }
        Mutation::StoreIntoJit => retarget_abs(img, &insts, kind, AbsSite::Store, res.entry),
        Mutation::FoldedImmTweak => insts.iter().find_map(|(addr, inst, len)| {
            let m = tweak_large_imm(inst)?;
            let bytes = encode_same_len(&m, *addr, *len)?;
            patch(img, *addr, &bytes, kind)
        }),
        Mutation::DanglingDataRef => retarget_abs(img, &insts, kind, AbsSite::Load, unmapped_gap()),
        Mutation::LoadFromCode => {
            retarget_abs(img, &insts, kind, AbsSite::Load, layout::CODE_BASE + 8)
        }
    }
}

fn decode_list(img: &Image, entry: u64, code_len: usize) -> Option<Vec<(u64, Inst, usize)>> {
    let bytes = img.code_window(entry, code_len).ok()?;
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let addr = entry + off as u64;
        let d = decode(&bytes[off..], addr).ok()?;
        out.push((addr, d.inst, d.len));
        off += d.len;
    }
    Some(out)
}

fn is_boundary(insts: &[(u64, Inst, usize)], addr: u64) -> bool {
    insts.binary_search_by_key(&addr, |(a, _, _)| *a).is_ok()
}

fn read(img: &Image, addr: u64, len: usize) -> Option<Vec<u8>> {
    let mut v = vec![0u8; len];
    img.read_bytes(addr, &mut v).ok()?;
    Some(v)
}

fn patch(img: &Image, addr: u64, new: &[u8], kind: Mutation) -> Option<Applied> {
    let old = read(img, addr, new.len())?;
    if old == new {
        return None;
    }
    img.write_bytes(addr, new).ok()?;
    Some(Applied { kind, addr, old })
}

fn encode_same_len(inst: &Inst, addr: u64, len: usize) -> Option<Vec<u8>> {
    let mut v = Vec::new();
    let n = encode(inst, addr, &mut v).ok()?;
    (n == len).then_some(v)
}

#[derive(Clone, Copy, PartialEq)]
enum AbsSite {
    Load,
    Store,
}

/// Redirect the first absolute-addressed load/store to `target`.
fn retarget_abs(
    img: &Image,
    insts: &[(u64, Inst, usize)],
    kind: Mutation,
    site: AbsSite,
    target: u64,
) -> Option<Applied> {
    let disp = i32::try_from(target as i64).ok()?;
    insts.iter().find_map(|(addr, inst, len)| {
        let m = match site {
            AbsSite::Load => inst.mem_load(),
            AbsSite::Store => inst.mem_store(),
        }?;
        (m.base.is_none() && m.index.is_none()).then_some(())?;
        let replaced = replace_abs_mem(inst, site, MemRef { disp, ..m })?;
        let bytes = encode_same_len(&replaced, *addr, *len)?;
        patch(img, *addr, &bytes, kind)
    })
}

/// Rebuild `inst` with its absolute memory operand swapped for `m`.
/// Covers the operand shapes the emitter produces; other shapes are
/// simply unusable as mutation sites.
fn replace_abs_mem(inst: &Inst, site: AbsSite, m: MemRef) -> Option<Inst> {
    let mem = Operand::Mem(m);
    Some(match (site, *inst) {
        (
            AbsSite::Store,
            Inst::Mov {
                w,
                dst: Operand::Mem(_),
                src,
            },
        ) => Inst::Mov { w, dst: mem, src },
        (
            AbsSite::Store,
            Inst::Unary {
                op,
                w,
                dst: Operand::Mem(_),
            },
        ) => Inst::Unary { op, w, dst: mem },
        (
            AbsSite::Store,
            Inst::MovSd {
                dst: Operand::Mem(_),
                src,
            },
        ) => Inst::MovSd { dst: mem, src },
        (
            AbsSite::Store,
            Inst::Alu {
                op,
                w,
                dst: Operand::Mem(_),
                src,
            },
        ) if op.writes_dst() => Inst::Alu {
            op,
            w,
            dst: mem,
            src,
        },
        (
            AbsSite::Load,
            Inst::Mov {
                w,
                dst,
                src: Operand::Mem(_),
            },
        ) if !dst.is_mem() => Inst::Mov { w, dst, src: mem },
        (
            AbsSite::Load,
            Inst::MovSd {
                dst,
                src: Operand::Mem(_),
            },
        ) if !dst.is_mem() => Inst::MovSd { dst, src: mem },
        (
            AbsSite::Load,
            Inst::Sse {
                op,
                dst,
                src: Operand::Mem(_),
            },
        ) => Inst::Sse { op, dst, src: mem },
        (
            AbsSite::Load,
            Inst::Movsxd {
                dst,
                src: Operand::Mem(_),
            },
        ) => Inst::Movsxd { dst, src: mem },
        (
            AbsSite::Load,
            Inst::Movzx8 {
                w,
                dst,
                src: Operand::Mem(_),
            },
        ) => Inst::Movzx8 { w, dst, src: mem },
        _ => return None,
    })
}

/// A copy of `inst` with one large immediate corrupted by a multi-bit
/// flip (XOR with a 24-bit pattern, which keeps any i32 immediate in
/// range). A multi-bit flip rather than ±1 so the corrupted value cannot
/// masquerade as a nearby legitimate fold.
fn tweak_large_imm(inst: &Inst) -> Option<Inst> {
    const BIG: u64 = 65_536;
    const FLIP: i64 = 0x00A5_5A5A;
    let flip = |v: i64| -> Option<i64> { (v.unsigned_abs() >= BIG).then_some(v ^ FLIP) };
    Some(match *inst {
        Inst::MovAbs { dst, imm } => Inst::MovAbs {
            dst,
            imm: flip(imm as i64)? as u64,
        },
        Inst::Mov {
            w,
            dst,
            src: Operand::Imm(v),
        } => Inst::Mov {
            w,
            dst,
            src: Operand::Imm(flip(v)?),
        },
        Inst::Alu {
            op,
            w,
            dst,
            src: Operand::Imm(v),
        } => Inst::Alu {
            op,
            w,
            dst,
            src: Operand::Imm(flip(v)?),
        },
        Inst::ImulImm { w, dst, src, imm } => Inst::ImulImm {
            w,
            dst,
            src,
            imm: i32::try_from(flip(i64::from(imm))?).ok()?,
        },
        _ => return None,
    })
}
