//! Region re-decoding with roundtrip checking (R1) and control-flow
//! closure (R2).

use crate::{Finding, Region, Rule, Severity, VerifyOptions, VerifyReport};
use brew_image::{Image, SegKind};
use brew_x86::{decode, encode, Inst};

/// Re-decode the variant's byte region. Emits [`Rule::Roundtrip`]
/// findings; returns `None` when the region cannot be decoded end to end
/// (analysis past an undecodable byte would be guesswork).
pub(crate) fn decode_region(
    img: &Image,
    entry: u64,
    code_len: usize,
    report: &mut VerifyReport,
) -> Option<Region> {
    let err = |addr, detail: String| Finding {
        rule: Rule::Roundtrip,
        severity: Severity::Error,
        addr,
        detail,
    };
    let bytes = match img.code_window(entry, code_len) {
        Ok(b) => b,
        Err(e) => {
            report
                .findings
                .push(err(entry, format!("variant region unreadable: {e}")));
            return None;
        }
    };
    if bytes.len() < code_len {
        report.findings.push(err(
            entry,
            format!(
                "variant region escapes its segment ({} of {} bytes mapped)",
                bytes.len(),
                code_len
            ),
        ));
        return None;
    }
    let mut insts = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let addr = entry + off as u64;
        let d = match decode(&bytes[off..], addr) {
            Ok(d) => d,
            Err(e) => {
                report
                    .findings
                    .push(err(addr, format!("undecodable bytes: {e}")));
                return None;
            }
        };
        // The emitter uses the canonical encoder, so re-encoding the
        // decoded form must reproduce the bytes exactly; any deviation
        // means the region was not produced (or was corrupted after
        // production) by our pipeline.
        let mut enc = Vec::new();
        match encode(&d.inst, addr, &mut enc) {
            Ok(n) => {
                if n != d.len || enc[..n] != bytes[off..off + d.len] {
                    report
                        .findings
                        .push(err(addr, format!("non-canonical encoding of `{}`", d.inst)));
                }
            }
            Err(e) => {
                report.findings.push(err(
                    addr,
                    format!("decoded instruction `{}` does not re-encode: {e}", d.inst),
                ));
            }
        }
        insts.push((addr, d.inst, d.len));
        off += d.len;
    }
    Some(Region {
        entry,
        end: entry + bytes.len() as u64,
        insts,
    })
}

/// R2: every control transfer resolves to an instruction boundary inside
/// the variant, a legal escape into the original Code segment, or an
/// allow-listed target — and control cannot fall off the end.
pub(crate) fn check_closure(
    img: &Image,
    region: &Region,
    opts: &VerifyOptions,
    report: &mut VerifyReport,
) {
    let mut err = |addr, detail: String| {
        report.findings.push(Finding {
            rule: Rule::CfgClosure,
            severity: Severity::Error,
            addr,
            detail,
        })
    };
    for (addr, inst, _) in &region.insts {
        match inst {
            Inst::JmpRel { target } | Inst::Jcc { target, .. } => {
                if region.contains(*target) {
                    if !region.is_boundary(*target) {
                        err(
                            *addr,
                            format!("branch to mid-instruction address {target:#x}"),
                        );
                    }
                } else if let Some(f) = external_target_problem(img, opts, *target) {
                    err(*addr, f);
                }
            }
            Inst::CallRel { target } => {
                if region.contains(*target) {
                    // The emitter never lays out callees inside a variant;
                    // an internal call smashes the variant's own code path
                    // onto the stack as a return address.
                    err(*addr, format!("call into the variant body at {target:#x}"));
                } else if let Some(f) = external_target_problem(img, opts, *target) {
                    err(*addr, f);
                }
            }
            Inst::JmpInd { .. } | Inst::CallInd { .. } => {
                err(
                    *addr,
                    format!("indirect control transfer `{inst}` cannot be validated"),
                );
            }
            _ => {}
        }
    }
    match region.insts.last() {
        Some((addr, inst, _)) if !inst.is_terminator() => {
            err(
                *addr,
                format!("control falls off the end of the variant after `{inst}`"),
            );
        }
        None => err(region.entry, "empty variant region".into()),
        _ => {}
    }
}

/// Why an external control-flow target is illegal, if it is.
fn external_target_problem(img: &Image, opts: &VerifyOptions, target: u64) -> Option<String> {
    if opts.allowed_targets.contains(&target) {
        return None;
    }
    match img.segment_of(target) {
        // Escapes into the original image (helper calls, guard bails,
        // deopt tail-jumps) are the one legal way out of a variant.
        Some(SegKind::Code) => None,
        Some(kind) => Some(format!(
            "control escapes into the {kind:?} segment at {target:#x}"
        )),
        None => Some(format!("wild target {target:#x} (unmapped memory)")),
    }
}
