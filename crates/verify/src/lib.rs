//! # brew-verify — static translation validation of rewrite variants
//!
//! The paper's safety story is dynamic: "fall back to the original on
//! failure" (§III.G). That covers failures *of* the rewriting process, but
//! not miscompiles — a variant that traces, encodes and publishes cleanly
//! can still compute the wrong thing, and the x86-64 rewriter evaluations
//! (Schulte et al.) show silent miscompiles are the dominant failure mode
//! across binary rewriters. This crate closes the gap on the success side:
//! it re-decodes the emitted bytes of a finished variant and proves a set
//! of structural properties *before* the [`SpecializationManager`](brew_core::SpecializationManager)
//! publishes it.
//!
//! The pipeline ([`verify`]) runs five rule families over the re-decoded
//! variant:
//!
//! | rule | property |
//! |------|----------|
//! | [`Rule::Roundtrip`]        | every byte decodes; each instruction re-encodes to the same bytes |
//! | [`Rule::CfgClosure`]       | every branch/call target resolves inside the variant (on an instruction boundary), to a legal escape into the original image, or to an allow-listed guard target — no wild jumps |
//! | [`Rule::StackDiscipline`]  | abstract RSP-offset analysis proves balance on every path to `ret` (and every tail escape) |
//! | [`Rule::WriteContainment`] | statically-derivable stores stay out of code, unmapped memory, folded-known bytes and counter pages the variant does not own |
//! | [`Rule::Provenance`]       | large immediates and folded displacements trace back to the request's `BREW_KNOWN` / `BREW_PTR_TO_KNOWN` values via the tracer's [`KnownSnapshot`] read-set |
//!
//! Findings are typed diagnostics ([`Finding`]); [`render_report`] merges
//! them into the Figure-6-style annotated disassembly of
//! `brew_core::telemetry::explain`. [`publish_gate`] packages the pipeline
//! as a [`PublishGate`] for the manager's opt-in `verify_on_publish`
//! policy, and [`mutate`] provides the seeded-corruption harness that
//! proves the rules actually catch what they claim to (V1 in
//! EXPERIMENTS.md).
//!
//! ## Soundness caveats
//!
//! The verifier is *static*: register-addressed stores and data-dependent
//! control flow are out of reach, and [`Rule::Provenance`] is a heuristic
//! allow-list (exact request values, byte windows of the folded read-set,
//! immediates of the original code, image addresses). Under
//! [`VerifyOptions::strict_provenance`] an unexplained immediate is an
//! error; by default it is informational, because a pass pipeline may
//! legitimately synthesize constants (folded arithmetic over known
//! values). The dynamic checker (`suite::verify`) cross-validates on the
//! same variants — see DESIGN.md § Static verification.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use brew_core::{KnownSnapshot, PublishGate, PublishRejection, RewriteResult, SpecRequest};
use brew_image::Image;
use std::fmt;
use std::ops::Range;

mod cfg;
mod mem;
pub mod mutate;
mod render;
mod stack;

pub use render::render_report;

/// The five rule families of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Decode/encode roundtrip integrity of every emitted instruction.
    Roundtrip,
    /// Control-flow closure: no wild jumps, no mid-instruction targets.
    CfgClosure,
    /// RSP balance on every path to `ret` or a tail escape.
    StackDiscipline,
    /// Statically-derivable stores stay inside legal write regions.
    WriteContainment,
    /// Immediates/displacements trace back to declared known values.
    Provenance,
}

impl Rule {
    /// Every rule, in pipeline order.
    pub const ALL: [Rule; 5] = [
        Rule::Roundtrip,
        Rule::CfgClosure,
        Rule::StackDiscipline,
        Rule::WriteContainment,
        Rule::Provenance,
    ];

    /// Short stable name (used in reports and the V1 table).
    pub fn name(self) -> &'static str {
        match self {
            Rule::Roundtrip => "roundtrip",
            Rule::CfgClosure => "cfg-closure",
            Rule::StackDiscipline => "stack",
            Rule::WriteContainment => "write-set",
            Rule::Provenance => "provenance",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Structural note; never blocks publication.
    Info,
    /// Suspicious but not provably wrong.
    Warn,
    /// Provably outside the variant contract; blocks publication.
    Error,
}

impl Severity {
    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One typed diagnostic of the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which rule family produced it.
    pub rule: Rule,
    /// How bad it is.
    pub severity: Severity,
    /// Address of the offending instruction (or region start for
    /// region-level findings).
    pub addr: u64,
    /// Human-readable diagnosis.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}/{}] {:#x}: {}",
            self.rule, self.severity, self.addr, self.detail
        )
    }
}

/// Verification policy knobs.
#[derive(Debug, Clone, Default)]
pub struct VerifyOptions {
    /// Telemetry counter pages the variant (or its dispatch stub) may
    /// legitimately increment — `base..base + 8*(cases+1)` per
    /// `brew_core::CounterPage`.
    pub counter_pages: Vec<Range<u64>>,
    /// Extra legal external control-flow targets (e.g. sibling variant
    /// entries a guard chain tail-jumps to).
    pub allowed_targets: Vec<u64>,
    /// Escalate unexplained large immediates from [`Severity::Info`] to
    /// [`Severity::Error`]. Off by default: a pass pipeline may
    /// legitimately synthesize constants by folding arithmetic over known
    /// values, which no allow-list can enumerate.
    pub strict_provenance: bool,
}

/// The outcome of one verification run.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Every finding, in pipeline order.
    pub findings: Vec<Finding>,
    /// Instructions successfully re-decoded.
    pub insts: usize,
}

impl VerifyReport {
    /// `true` when no error-severity finding was produced — the variant
    /// may be published.
    pub fn passed(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// The first error-severity finding, if any.
    pub fn first_error(&self) -> Option<&Finding> {
        self.findings.iter().find(|f| f.severity == Severity::Error)
    }

    /// Error-severity findings per rule, in [`Rule::ALL`] order.
    pub fn errors_by_rule(&self) -> [(Rule, usize); 5] {
        Rule::ALL.map(|r| {
            let n = self
                .findings
                .iter()
                .filter(|f| f.rule == r && f.severity == Severity::Error)
                .count();
            (r, n)
        })
    }
}

/// The decoded shape of the variant the rule passes share: instruction
/// list with lengths, the boundary set, and the raw bytes.
pub(crate) struct Region {
    pub entry: u64,
    pub end: u64,
    pub insts: Vec<(u64, brew_x86::Inst, usize)>,
}

impl Region {
    /// Whether `addr` is an instruction boundary of the region.
    pub fn is_boundary(&self, addr: u64) -> bool {
        self.insts
            .binary_search_by_key(&addr, |(a, _, _)| *a)
            .is_ok()
    }

    /// Whether `addr` lies inside the region (boundary or not).
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.entry && addr < self.end
    }
}

/// Run the full pipeline over the finished rewrite `res` of `func` under
/// `req`, as emitted into `img`'s JIT segment.
pub fn verify(
    img: &Image,
    func: u64,
    req: &SpecRequest,
    res: &RewriteResult,
    opts: &VerifyOptions,
) -> VerifyReport {
    verify_region(img, func, req, res.entry, res.code_len, &res.snapshot, opts)
}

/// [`verify`] addressed by raw region coordinates — for callers that hold
/// a [`brew_core::Variant`] rather than a [`RewriteResult`].
pub fn verify_region(
    img: &Image,
    func: u64,
    req: &SpecRequest,
    entry: u64,
    code_len: usize,
    snapshot: &KnownSnapshot,
    opts: &VerifyOptions,
) -> VerifyReport {
    let mut report = VerifyReport::default();
    let region = match cfg::decode_region(img, entry, code_len, &mut report) {
        Some(r) => r,
        // Undecodable regions cannot be analyzed further; the roundtrip
        // findings already block publication.
        None => return report,
    };
    report.insts = region.insts.len();
    cfg::check_closure(img, &region, opts, &mut report);
    stack::check_stack(&region, &mut report);
    let orig = mem::summarize_original(img, func, req);
    mem::check_writes(img, &region, req, snapshot, &orig, opts, &mut report);
    mem::check_provenance(img, &region, req, snapshot, &orig, opts, &mut report);
    report
}

/// The pipeline packaged as a manager publish gate (`verify_on_publish`).
#[derive(Debug, Clone, Default)]
pub struct VerifyGate {
    /// Policy the gate verifies under.
    pub opts: VerifyOptions,
}

impl PublishGate for VerifyGate {
    fn inspect(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
        res: &RewriteResult,
    ) -> Result<(), PublishRejection> {
        let report = verify(img, func, req, res, &self.opts);
        if report.passed() {
            Ok(())
        } else {
            Err(PublishRejection {
                findings: report.error_count(),
                summary: report
                    .first_error()
                    .map(|f| f.to_string())
                    .unwrap_or_else(|| "unspecified verification failure".into()),
            })
        }
    }
}

/// A boxed [`VerifyGate`] with default options, ready for
/// [`brew_core::ManagerBuilder::publish_gate`].
pub fn publish_gate() -> Box<dyn PublishGate> {
    Box::new(VerifyGate::default())
}

/// A boxed [`VerifyGate`] with explicit options.
pub fn publish_gate_with(opts: VerifyOptions) -> Box<dyn PublishGate> {
    Box::new(VerifyGate { opts })
}
