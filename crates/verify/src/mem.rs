//! R4 (write-set containment) and R5 (known-fold provenance), plus the
//! bounded walk over the *original* function that both rules compare
//! against.

use crate::{Finding, Region, Rule, Severity, VerifyOptions, VerifyReport};
use brew_core::{ArgValue, KnownSnapshot, ParamSpec, SpecRequest};
use brew_image::{Image, SegKind};
use brew_x86::{decode, Inst, MemRef, Operand};
use std::collections::{HashSet, VecDeque};
use std::ops::Range;

/// Instruction budget for the original-code walk. Original functions in
/// the supported subset are tiny; the budget only bounds pathological
/// inputs.
const WALK_BUDGET: usize = 50_000;

/// Immediate magnitude below which provenance is not questioned: loop
/// bounds, offsets and small constants are ubiquitous and meaningless to
/// track.
const SMALL_IMM: u64 = 65_536;

/// What the original function (plus configured hooks) statically
/// exhibits: the immediates it encodes, the absolute addresses it
/// references, and the absolute ranges it stores to.
pub(crate) struct OriginalSummary {
    pub imms: HashSet<u64>,
    pub abs_refs: HashSet<u64>,
    pub abs_stores: Vec<Range<u64>>,
    /// Instruction addresses of the walked original code. Rewritten code
    /// materializes these as immediates (hook arguments, return
    /// targets), so they carry provenance.
    pub code_addrs: HashSet<u64>,
}

/// The absolute address of a memory operand with no register parts.
fn abs_addr(m: &MemRef) -> Option<u64> {
    (m.base.is_none() && m.index.is_none()).then_some(m.disp as i64 as u64)
}

/// Bytes written by a store instruction (callers ensure `inst` stores).
fn store_width(inst: &Inst) -> u64 {
    match inst {
        Inst::Mov { w, .. } | Inst::Unary { w, .. } | Inst::Shift { w, .. } => w.bytes(),
        Inst::Alu { w, .. } => w.bytes(),
        Inst::Setcc { .. } => 1,
        Inst::Pop { .. } => 8,
        Inst::MovSd { .. } => 8,
        Inst::MovUpd { .. } => 16,
        _ => 8,
    }
}

/// Visit every encoded immediate of `inst` (as a sign-extended u64).
fn for_each_imm(inst: &Inst, f: &mut impl FnMut(u64)) {
    let mut op = |o: &Operand| {
        if let Operand::Imm(v) = o {
            f(*v as u64);
        }
    };
    match inst {
        Inst::MovAbs { imm, .. } => f(*imm),
        Inst::ImulImm { src, imm, .. } => {
            op(src);
            f(*imm as i64 as u64);
        }
        Inst::Mov { src, .. }
        | Inst::Movsxd { src, .. }
        | Inst::Movzx8 { src, .. }
        | Inst::Imul { src, .. }
        | Inst::Idiv { src, .. }
        | Inst::Push { src }
        | Inst::Cvtsi2sd { src, .. }
        | Inst::Cvttsd2si { src, .. }
        | Inst::Sse { src, .. }
        | Inst::MovSd { src, .. }
        | Inst::MovUpd { src, .. } => op(src),
        Inst::Alu { src, .. } => op(src),
        Inst::Test { a, b, .. } => {
            op(a);
            op(b);
        }
        Inst::Ucomisd { b, .. } => op(b),
        _ => {}
    }
}

fn overlaps(a: &Range<u64>, b: &Range<u64>) -> bool {
    a.start < b.end && b.start < a.end
}

/// Whether `v` is one arithmetic step away from a seed value: `a ± c`,
/// `a * c`, `a / c` or a shift of `a`, for a small constant `c`. Constant
/// folding over a known argument produces exactly such values (e.g.
/// `k / 3` baked into an `add`), so they carry provenance even though no
/// allow-list can enumerate them. Single-step with a small partner is
/// deliberate: it keeps the tweak surface narrow while covering what a
/// fold of one known input can emit.
fn derivable_in_one_step(v: u64, seeds: &HashSet<u64>) -> bool {
    let vi = v as i64;
    seeds.iter().any(|&a| {
        let ai = a as i64;
        if vi.wrapping_sub(ai).unsigned_abs() < SMALL_IMM
            || vi.wrapping_add(ai).unsigned_abs() < SMALL_IMM
        {
            return true; // a ± c  (or c - a)
        }
        if ai != 0 {
            if let Some(q) = vi.checked_div(ai) {
                if q.unsigned_abs() < SMALL_IMM && q.checked_mul(ai) == Some(vi) {
                    return true; // a * c
                }
            }
        }
        if vi != 0 {
            if let Some(c) = ai.checked_div(vi) {
                if c != 0 && c.unsigned_abs() < SMALL_IMM && ai.checked_div(c) == Some(vi) {
                    return true; // a / c (truncating)
                }
            }
        }
        (1..64).any(|k| ai >> k == vi || a.wrapping_shl(k) == v)
    })
}

/// Walk the original function's code (and any configured hook routines)
/// collecting the facts R4/R5 compare against. Best-effort and bounded:
/// undecodable or unreachable original code simply contributes nothing.
pub(crate) fn summarize_original(img: &Image, func: u64, req: &SpecRequest) -> OriginalSummary {
    let mut sum = OriginalSummary {
        imms: HashSet::new(),
        abs_refs: HashSet::new(),
        abs_stores: Vec::new(),
        code_addrs: HashSet::new(),
    };
    let cfg = req.config();
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut seen: HashSet<u64> = HashSet::new();
    for start in [
        Some(func),
        cfg.entry_hook,
        cfg.exit_hook,
        cfg.mem_access_hook,
    ]
    .into_iter()
    .flatten()
    {
        queue.push_back(start);
    }
    let mut budget = WALK_BUDGET;
    while let Some(addr) = queue.pop_front() {
        if !seen.insert(addr) || budget == 0 {
            continue;
        }
        budget -= 1;
        if img.segment_of(addr) != Some(SegKind::Code) {
            continue;
        }
        let Ok(window) = img.code_window(addr, 16) else {
            continue;
        };
        let Ok(d) = decode(&window, addr) else {
            continue;
        };
        sum.code_addrs.insert(addr);
        for_each_imm(&d.inst, &mut |v| {
            sum.imms.insert(v);
        });
        for m in [d.inst.mem_load(), d.inst.mem_store()]
            .into_iter()
            .flatten()
        {
            if let Some(a) = abs_addr(&m) {
                sum.abs_refs.insert(a);
            }
        }
        if let Some(a) = d.inst.mem_store().as_ref().and_then(abs_addr) {
            sum.abs_stores.push(a..a + store_width(&d.inst));
        }
        if let Some(t) = d.inst.static_target() {
            queue.push_back(t);
        }
        if !d.inst.is_terminator() {
            queue.push_back(addr + d.len as u64);
        }
    }
    sum
}

/// Ranges the variant must never store to: the tracer's folded read-set
/// plus every declared known range (config `known_mem` and
/// `PTR_TO_KNOWN` extents). A store there invalidates the fold the
/// variant itself was specialized on.
fn immutable_ranges(req: &SpecRequest, snapshot: &KnownSnapshot) -> Vec<Range<u64>> {
    let mut v: Vec<Range<u64>> = snapshot.ranges().to_vec();
    v.extend(req.config().known_mem.iter().cloned());
    for (spec, arg) in req.config().params.iter().zip(req.args()) {
        if let (ParamSpec::PtrToKnown { len }, ArgValue::Int(p)) = (spec, arg) {
            let p = *p as u64;
            v.push(p..p.saturating_add(*len));
        }
    }
    v
}

/// R4: statically-derivable (absolute-addressed) stores must stay inside
/// legal write regions. Register-addressed stores are the dynamic
/// checker's job (`suite::verify`).
pub(crate) fn check_writes(
    img: &Image,
    region: &Region,
    req: &SpecRequest,
    snapshot: &KnownSnapshot,
    orig: &OriginalSummary,
    opts: &VerifyOptions,
    report: &mut VerifyReport,
) {
    let immutable = immutable_ranges(req, snapshot);
    for (addr, inst, _) in &region.insts {
        let Some(target) = inst.mem_store().as_ref().and_then(abs_addr) else {
            continue;
        };
        let store = target..target + store_width(inst);
        if opts.counter_pages.iter().any(|p| overlaps(p, &store)) {
            continue;
        }
        let mut push = |severity, detail| {
            report.findings.push(Finding {
                rule: Rule::WriteContainment,
                severity,
                addr: *addr,
                detail,
            })
        };
        if immutable.iter().any(|r| overlaps(r, &store)) {
            push(
                Severity::Error,
                format!("store into folded-known memory at {target:#x}"),
            );
            continue;
        }
        match img.segment_of(target) {
            None => push(
                Severity::Error,
                format!("store into unmapped memory at {target:#x}"),
            ),
            Some(SegKind::Code) => push(
                Severity::Error,
                format!("store into the Code segment at {target:#x}"),
            ),
            Some(SegKind::Jit) => push(
                Severity::Error,
                format!("self-modifying store into the Jit segment at {target:#x}"),
            ),
            Some(_) => {
                if !orig.abs_stores.iter().any(|r| overlaps(r, &store)) {
                    push(
                        Severity::Info,
                        format!("absolute store at {target:#x} absent from the original"),
                    );
                }
            }
        }
    }
}

/// Every 1/2/4/8-byte little-endian window over the current bytes of the
/// immutable known ranges, in both zero- and sign-extended form — the
/// values a fold of known data can surface as an immediate.
fn known_byte_windows(img: &Image, ranges: &[Range<u64>]) -> HashSet<u64> {
    let mut set = HashSet::new();
    for r in ranges {
        let len = (r.end - r.start) as usize;
        let mut bytes = vec![0u8; len];
        if img.read_bytes(r.start, &mut bytes).is_err() {
            continue;
        }
        for i in 0..len {
            for k in [1usize, 2, 4, 8] {
                if i + k > len {
                    continue;
                }
                let mut raw = [0u8; 8];
                raw[..k].copy_from_slice(&bytes[i..i + k]);
                let z = u64::from_le_bytes(raw);
                set.insert(z);
                let shift = 64 - 8 * k as u32;
                set.insert(((z << shift) as i64 >> shift) as u64);
            }
        }
    }
    set
}

/// R5: large immediates and folded absolute references must trace back to
/// something the request declared known — exact argument values, bytes of
/// the folded read-set, facts of the original code, counter pages, or
/// addresses of mapped non-transient segments. Unexplained values are
/// informational by default and errors under `strict_provenance`.
pub(crate) fn check_provenance(
    img: &Image,
    region: &Region,
    req: &SpecRequest,
    snapshot: &KnownSnapshot,
    orig: &OriginalSummary,
    opts: &VerifyOptions,
    report: &mut VerifyReport,
) {
    let immutable = immutable_ranges(req, snapshot);
    let windows = known_byte_windows(img, &immutable);
    let mut arg_values: HashSet<u64> = HashSet::new();
    for arg in req.args() {
        match arg {
            ArgValue::Int(v) => {
                arg_values.insert(*v as u64);
            }
            ArgValue::F64(f) => {
                arg_values.insert(f.to_bits());
            }
        }
    }
    let unexplained_severity = if opts.strict_provenance {
        Severity::Error
    } else {
        Severity::Info
    };
    // Seeds for one-step derivation: request arguments plus every window
    // over the folded read-set's bytes.
    let mut seeds: HashSet<u64> = arg_values.clone();
    seeds.extend(windows.iter().copied());
    let explained = |v: u64| -> bool {
        let small = (v as i64).unsigned_abs() < SMALL_IMM;
        small
            || arg_values.contains(&v)
            || immutable.iter().any(|r| r.contains(&v))
            || windows.contains(&v)
            || orig.imms.contains(&v)
            || orig.abs_refs.contains(&v)
            || orig.code_addrs.contains(&v)
            || opts.counter_pages.iter().any(|p| p.contains(&v))
            || matches!(img.segment_of(v), Some(SegKind::Data | SegKind::Jit))
            || derivable_in_one_step(v, &seeds)
    };
    for (addr, inst, _) in &region.insts {
        // Folded absolute data references: must land in mapped memory and
        // never treat code as data.
        for m in [inst.mem_load(), inst.mem_store()].into_iter().flatten() {
            let Some(a) = abs_addr(&m) else { continue };
            let mut push = |severity, detail| {
                report.findings.push(Finding {
                    rule: Rule::Provenance,
                    severity,
                    addr: *addr,
                    detail,
                })
            };
            match img.segment_of(a) {
                None => push(
                    Severity::Error,
                    format!("dangling folded reference to unmapped {a:#x}"),
                ),
                Some(SegKind::Code) => push(
                    Severity::Error,
                    format!("folded data access into the Code segment at {a:#x}"),
                ),
                _ => {
                    if !explained(a) {
                        push(
                            unexplained_severity,
                            format!("folded reference {a:#x} has no known-value provenance"),
                        );
                    }
                }
            }
        }
        // Large immediates: must trace to a declared known value.
        for_each_imm(inst, &mut |v| {
            if !explained(v) {
                report.findings.push(Finding {
                    rule: Rule::Provenance,
                    severity: unexplained_severity,
                    addr: *addr,
                    detail: format!("immediate {v:#x} has no known-value provenance"),
                });
            }
        });
    }
}
