//! Figure-6-style rendering: the variant's annotated disassembly
//! (reusing `brew_core::telemetry::explain`) with the verifier's findings
//! interleaved under the instructions they refer to.

use crate::{Severity, VerifyReport};
use brew_core::{telemetry::explain::annotated_disasm, RewriteResult};
use brew_image::Image;

/// Render `report` as annotated disassembly. Each finding appears on its
/// own `!!`/`--` line directly below the offending instruction;
/// region-level findings (and findings on addresses the disassembler
/// could not reach) are appended at the end.
pub fn render_report(img: &Image, res: &RewriteResult, report: &VerifyReport) -> Vec<String> {
    let disasm = annotated_disasm(img, res);
    let mut out = Vec::with_capacity(disasm.len() + report.findings.len() + 2);
    let mut placed = vec![false; report.findings.len()];
    for line in &disasm {
        out.push(line.clone());
        let Some(addr) = line
            .split(':')
            .next()
            .and_then(|s| u64::from_str_radix(s.trim().trim_start_matches("0x"), 16).ok())
        else {
            continue;
        };
        for (i, f) in report.findings.iter().enumerate() {
            if !placed[i] && f.addr == addr {
                placed[i] = true;
                out.push(format!("          {} {f}", marker(f.severity)));
            }
        }
    }
    for (i, f) in report.findings.iter().enumerate() {
        if !placed[i] {
            out.push(format!("          {} {f}", marker(f.severity)));
        }
    }
    out.push(if report.passed() {
        format!(
            "verdict: PASS ({} instructions, {} findings)",
            report.insts,
            report.findings.len()
        )
    } else {
        format!(
            "verdict: REJECT ({} errors in {} findings)",
            report.error_count(),
            report.findings.len()
        )
    });
    out
}

fn marker(s: Severity) -> &'static str {
    match s {
        Severity::Error => "!!",
        Severity::Warn => "??",
        Severity::Info => "--",
    }
}
