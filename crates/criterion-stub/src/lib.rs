//! Offline drop-in subset of the `criterion` crate.
//!
//! The workspace must build with **no registry access**, so this crate
//! provides the slice of the criterion API the `brew-bench` benchmarks use:
//! `Criterion`, `benchmark_group` with `sample_size`/`bench_function`/
//! `bench_with_input`/`finish`, `Bencher::iter`, `BenchmarkId`, `black_box`
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple: a short warm-up, then `sample_size`
//! timed samples of an adaptively-chosen batch, reporting the median
//! per-iteration wall-clock time.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness state.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup {
            sample_size: self.default_sample_size,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.default_sample_size, f);
        self
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.render();
        run_bench(&name, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Time the closure; called once per benchmark definition.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for samples of at least ~1ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = batch;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let per_iter = median.as_nanos() as f64 / b.iters_per_sample as f64;
    println!(
        "{name:<40} {:>12.1} ns/iter  ({} samples x {} iters)",
        per_iter,
        b.samples.len(),
        b.iters_per_sample
    );
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
        assert!(ran > 0);
    }
}
