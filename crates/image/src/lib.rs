//! # brew-image — the simulated process image
//!
//! The paper's rewriter operates inside a live Linux process: it reads the
//! machine code of compiled functions, reads "known" data through pointers
//! the programmer vouched for, and writes freshly generated code into
//! executable memory. This crate reproduces that environment as a value: an
//! [`Image`] holds code/data/heap/stack segments backed by sparse pages,
//! plus a symbol table.
//!
//! The mini-C compiler (`brew-minic`) emits code and globals into an image,
//! the emulator (`brew-emu`) executes from it, and the rewriter
//! (`brew-core`) reads original code bytes from it and allocates rewritten
//! functions in its JIT segment.
//!
//! ## Concurrency
//!
//! A real process image is shared by every thread of the process, and the
//! paper's "delayed step" amortization argument only pays off when many
//! call sites can drive specialization concurrently. The image is therefore
//! internally synchronized (`Send + Sync`) and every operation takes
//! `&self`:
//!
//! - the sparse page store is sharded behind per-shard `RwLock`s (readers
//!   of different pages never contend, and readers of the same page share),
//! - segment bump allocators are atomic, so two rewrites can reserve JIT or
//!   literal-pool space without a global lock ([`Image::try_alloc_jit`]
//!   reserves-or-fails instead of panicking, for racing emitters),
//! - the symbol table sits behind its own `RwLock`.
//!
//! Publication ordering: bytes written through [`Image::write_bytes`]
//! happen-before any later read of the same pages (shard lock release /
//! acquire), so code published by inserting its entry address into a
//! synchronized structure is fully visible to the thread that looks it up.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Page size of the sparse backing store.
const PAGE: u64 = 4096;

/// Number of page-store shards (a power of two; pages hash by page number).
const MEM_SHARDS: usize = 64;

/// Default segment layout (all well below 2^31, so every address can be used
/// as an absolute disp32 by specialized code — the same property the paper's
/// Figure 6 relies on when it references data at `0x615100`).
pub mod layout {
    /// Base of the static code segment.
    pub const CODE_BASE: u64 = 0x40_0000;
    /// Size of the static code segment.
    pub const CODE_SIZE: u64 = 0x10_0000;
    /// Base of the data segment (globals).
    pub const DATA_BASE: u64 = 0x60_0000;
    /// Size of the data segment.
    pub const DATA_SIZE: u64 = 0x20_0000;
    /// Base of the JIT segment (rewritten functions + literal pools).
    pub const JIT_BASE: u64 = 0x90_0000;
    /// Size of the JIT segment.
    pub const JIT_SIZE: u64 = 0x40_0000;
    /// Base of the heap segment.
    pub const HEAP_BASE: u64 = 0x100_0000;
    /// Size of the heap segment.
    pub const HEAP_SIZE: u64 = 0x400_0000;
    /// Highest stack address + 1 (stack grows down from here).
    pub const STACK_TOP: u64 = 0x7FF0_0000;
    /// Size of the stack segment.
    pub const STACK_SIZE: u64 = 0x80_0000;
}

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting address.
    pub addr: u64,
    /// Number of bytes of the attempted access.
    pub size: u64,
    /// `true` for writes.
    pub write: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory fault: {}-byte {} at {:#x}",
            self.size,
            if self.write { "write" } else { "read" },
            self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// Segment kind, for diagnostics and access policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegKind {
    /// Statically compiled code.
    Code,
    /// Global data.
    Data,
    /// Runtime-generated code (rewriter output).
    Jit,
    /// Heap allocations.
    Heap,
    /// The call stack.
    Stack,
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    kind: SegKind,
    base: u64,
    size: u64,
}

impl Segment {
    fn contains(&self, addr: u64, size: u64) -> bool {
        addr >= self.base && addr.saturating_add(size) <= self.base + self.size
    }
}

/// Sparse paged memory: pages materialize zero-filled on first write (reads
/// of unmaterialized pages inside a segment return zeros, so freshly
/// allocated globals read as zero). Pages are sharded by page number behind
/// per-shard `RwLock`s so threads touching different pages don't contend.
struct PagedMem {
    shards: Vec<RwLock<HashMap<u64, Box<[u8; PAGE as usize]>>>>,
}

impl Default for PagedMem {
    fn default() -> Self {
        PagedMem {
            shards: (0..MEM_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }
}

impl PagedMem {
    fn shard_of(&self, pno: u64) -> &RwLock<HashMap<u64, Box<[u8; PAGE as usize]>>> {
        &self.shards[(pno as usize) & (MEM_SHARDS - 1)]
    }

    fn read(&self, addr: u64, out: &mut [u8]) {
        let mut a = addr;
        let mut i = 0;
        while i < out.len() {
            let pno = a / PAGE;
            let off = (a % PAGE) as usize;
            let n = ((PAGE as usize) - off).min(out.len() - i);
            match self.shard_of(pno).read().expect("page shard").get(&pno) {
                Some(p) => out[i..i + n].copy_from_slice(&p[off..off + n]),
                None => out[i..i + n].fill(0),
            }
            a += n as u64;
            i += n;
        }
    }

    fn write(&self, addr: u64, data: &[u8]) {
        let mut a = addr;
        let mut i = 0;
        while i < data.len() {
            let pno = a / PAGE;
            let off = (a % PAGE) as usize;
            let n = ((PAGE as usize) - off).min(data.len() - i);
            let mut shard = self.shard_of(pno).write().expect("page shard");
            let page = shard
                .entry(pno)
                .or_insert_with(|| Box::new([0u8; PAGE as usize]));
            page[off..off + n].copy_from_slice(&data[i..i + n]);
            drop(shard);
            a += n as u64;
            i += n;
        }
    }
}

/// A simulated process image: segments, sparse memory and symbols.
///
/// Internally synchronized — see the crate docs. Every method takes
/// `&self`; wrap in an `Arc` (or borrow across `std::thread::scope`) to
/// share between threads.
pub struct Image {
    mem: PagedMem,
    segments: Vec<Segment>,
    symbols: RwLock<HashMap<String, u64>>,
    code_next: AtomicU64,
    data_next: AtomicU64,
    jit_next: AtomicU64,
    heap_next: AtomicU64,
    code_version: AtomicU64,
    uid: u64,
}

impl Default for Image {
    fn default() -> Self {
        Self::new()
    }
}

impl Image {
    /// Create an empty image with the default segment [`layout`].
    pub fn new() -> Image {
        use layout::*;
        Image {
            mem: PagedMem::default(),
            segments: vec![
                Segment {
                    kind: SegKind::Code,
                    base: CODE_BASE,
                    size: CODE_SIZE,
                },
                Segment {
                    kind: SegKind::Data,
                    base: DATA_BASE,
                    size: DATA_SIZE,
                },
                Segment {
                    kind: SegKind::Jit,
                    base: JIT_BASE,
                    size: JIT_SIZE,
                },
                Segment {
                    kind: SegKind::Heap,
                    base: HEAP_BASE,
                    size: HEAP_SIZE,
                },
                Segment {
                    kind: SegKind::Stack,
                    base: STACK_TOP - STACK_SIZE,
                    size: STACK_SIZE,
                },
            ],
            symbols: RwLock::new(HashMap::new()),
            code_next: AtomicU64::new(CODE_BASE),
            data_next: AtomicU64::new(DATA_BASE),
            jit_next: AtomicU64::new(JIT_BASE),
            heap_next: AtomicU64::new(HEAP_BASE),
            code_version: AtomicU64::new(0),
            uid: {
                static NEXT_UID: AtomicU64 = AtomicU64::new(1);
                NEXT_UID.fetch_add(1, Ordering::Relaxed)
            },
        }
    }

    /// Monotone counter bumped whenever code or JIT bytes change; execution
    /// engines use it to invalidate decoded-instruction caches. Combine
    /// with [`Image::uid`] — versions are only comparable within one image.
    pub fn code_version(&self) -> u64 {
        self.code_version.load(Ordering::Acquire)
    }

    fn bump_code_version(&self) {
        self.code_version.fetch_add(1, Ordering::AcqRel);
    }

    /// Process-unique identity of this image (distinguishes the decode
    /// caches of two images that happen to share a version counter).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// The segment kind containing `addr`, if any.
    pub fn segment_of(&self, addr: u64) -> Option<SegKind> {
        self.segments
            .iter()
            .find(|s| s.contains(addr, 1))
            .map(|s| s.kind)
    }

    fn check(&self, addr: u64, size: u64, write: bool) -> Result<(), MemFault> {
        if self.segments.iter().any(|s| s.contains(addr, size)) {
            Ok(())
        } else {
            Err(MemFault { addr, size, write })
        }
    }

    /// Initial stack pointer for a new activation.
    pub fn stack_top(&self) -> u64 {
        layout::STACK_TOP - 0x100 // small scratch gap keeps rsp well inside
    }

    // ---- allocation -----------------------------------------------------

    /// Atomically reserve `size` bytes at `align` from the bump pointer, or
    /// `None` when the segment is exhausted. Returns the aligned address.
    fn bump(next: &AtomicU64, size: u64, align: u64, seg_end: u64) -> Option<u64> {
        debug_assert!(align.is_power_of_two());
        next.fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
            let addr = (cur + align - 1) & !(align - 1);
            (addr.checked_add(size)? <= seg_end).then_some(addr + size)
        })
        .ok()
        .map(|prev| (prev + align - 1) & !(align - 1))
    }

    fn bump_or_panic(next: &AtomicU64, size: u64, align: u64, seg_end: u64) -> u64 {
        Self::bump(next, size, align, seg_end)
            .unwrap_or_else(|| panic!("segment exhausted: need {size} bytes, end {seg_end:#x}"))
    }

    /// Copy `bytes` into the static code segment; returns their address.
    pub fn alloc_code(&self, bytes: &[u8]) -> u64 {
        let addr = Self::bump_or_panic(
            &self.code_next,
            bytes.len() as u64,
            16,
            layout::CODE_BASE + layout::CODE_SIZE,
        );
        self.mem.write(addr, bytes);
        self.bump_code_version();
        addr
    }

    /// Reserve zeroed space in the data segment.
    pub fn alloc_data(&self, size: u64, align: u64) -> u64 {
        Self::bump_or_panic(
            &self.data_next,
            size,
            align,
            layout::DATA_BASE + layout::DATA_SIZE,
        )
    }

    /// Copy `bytes` into the data segment; returns their address.
    pub fn alloc_data_bytes(&self, bytes: &[u8], align: u64) -> u64 {
        let addr = self.alloc_data(bytes.len() as u64, align);
        self.mem.write(addr, bytes);
        addr
    }

    /// Copy rewritten code into the JIT segment; returns its entry address.
    pub fn alloc_jit(&self, bytes: &[u8]) -> u64 {
        let addr = self
            .try_alloc_jit(bytes.len() as u64)
            .expect("JIT segment exhausted");
        self.mem.write(addr, bytes);
        self.bump_code_version();
        addr
    }

    /// Atomically reserve `size` zeroed bytes of JIT space, or `None` when
    /// the segment can't fit them. This is the race-free claim for
    /// concurrent emitters: reserve first, then [`Image::write_bytes`] the
    /// encoded code into the owned range.
    pub fn try_alloc_jit(&self, size: u64) -> Option<u64> {
        Self::bump(
            &self.jit_next,
            size,
            16,
            layout::JIT_BASE + layout::JIT_SIZE,
        )
    }

    /// Remaining capacity of the JIT segment in bytes. Advisory under
    /// concurrency — racing reservations may shrink it; use
    /// [`Image::try_alloc_jit`] to claim space atomically.
    pub fn jit_remaining(&self) -> u64 {
        layout::JIT_BASE + layout::JIT_SIZE - self.jit_next.load(Ordering::Acquire)
    }

    /// Reserve zeroed heap space (simple bump allocator, no free).
    pub fn alloc_heap(&self, size: u64, align: u64) -> u64 {
        Self::bump_or_panic(
            &self.heap_next,
            size,
            align,
            layout::HEAP_BASE + layout::HEAP_SIZE,
        )
    }

    // ---- symbols ---------------------------------------------------------

    /// Define (or redefine) a symbol.
    pub fn define(&self, name: impl Into<String>, addr: u64) {
        self.symbols
            .write()
            .expect("symbol table")
            .insert(name.into(), addr);
    }

    /// Look up a symbol's address.
    pub fn lookup(&self, name: &str) -> Option<u64> {
        self.symbols
            .read()
            .expect("symbol table")
            .get(name)
            .copied()
    }

    /// Reverse lookup: the symbol defined exactly at `addr`, if any.
    pub fn symbol_at(&self, addr: u64) -> Option<String> {
        self.symbols
            .read()
            .expect("symbol table")
            .iter()
            .find(|&(_, &a)| a == addr)
            .map(|(n, _)| n.clone())
    }

    /// All symbols, for diagnostics.
    pub fn symbols(&self) -> Vec<(String, u64)> {
        self.symbols
            .read()
            .expect("symbol table")
            .iter()
            .map(|(n, a)| (n.clone(), *a))
            .collect()
    }

    // ---- typed access ----------------------------------------------------

    /// Read `out.len()` bytes at `addr`.
    pub fn read_bytes(&self, addr: u64, out: &mut [u8]) -> Result<(), MemFault> {
        self.check(addr, out.len() as u64, false)?;
        self.mem.read(addr, out);
        Ok(())
    }

    /// Write `data` at `addr`.
    pub fn write_bytes(&self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        self.check(addr, data.len() as u64, true)?;
        if matches!(self.segment_of(addr), Some(SegKind::Code | SegKind::Jit)) {
            self.bump_code_version();
        }
        self.mem.write(addr, data);
        Ok(())
    }

    /// Read a little-endian unsigned value of `size` bytes (1, 2, 4 or 8).
    pub fn read_uint(&self, addr: u64, size: u64) -> Result<u64, MemFault> {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf[..size as usize])?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Write the low `size` bytes of `v` little-endian.
    pub fn write_uint(&self, addr: u64, size: u64, v: u64) -> Result<(), MemFault> {
        let buf = v.to_le_bytes();
        self.write_bytes(addr, &buf[..size as usize])
    }

    /// Read a u64.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemFault> {
        self.read_uint(addr, 8)
    }

    /// Write a u64.
    pub fn write_u64(&self, addr: u64, v: u64) -> Result<(), MemFault> {
        self.write_uint(addr, 8, v)
    }

    /// Read an f64.
    pub fn read_f64(&self, addr: u64) -> Result<f64, MemFault> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Write an f64.
    pub fn write_f64(&self, addr: u64, v: f64) -> Result<(), MemFault> {
        self.write_u64(addr, v.to_bits())
    }

    /// Read up to `max` code bytes starting at `addr` (clamped to the
    /// containing segment) — the rewriter's window for decoding.
    pub fn code_window(&self, addr: u64, max: usize) -> Result<Vec<u8>, MemFault> {
        let seg = self
            .segments
            .iter()
            .find(|s| s.contains(addr, 1) && matches!(s.kind, SegKind::Code | SegKind::Jit))
            .ok_or(MemFault {
                addr,
                size: 1,
                write: false,
            })?;
        let avail = (seg.base + seg.size - addr).min(max as u64);
        let mut buf = vec![0u8; avail as usize];
        self.mem.read(addr, &mut buf);
        Ok(buf)
    }
}

impl fmt::Debug for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Image")
            .field(
                "code_used",
                &(self.code_next.load(Ordering::Relaxed) - layout::CODE_BASE),
            )
            .field(
                "data_used",
                &(self.data_next.load(Ordering::Relaxed) - layout::DATA_BASE),
            )
            .field(
                "jit_used",
                &(self.jit_next.load(Ordering::Relaxed) - layout::JIT_BASE),
            )
            .field(
                "heap_used",
                &(self.heap_next.load(Ordering::Relaxed) - layout::HEAP_BASE),
            )
            .field("symbols", &self.symbols.read().expect("symbol table").len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip() {
        let img = Image::new();
        let a = img.alloc_data(64, 8);
        img.write_u64(a, 0xDEAD_BEEF).unwrap();
        assert_eq!(img.read_u64(a).unwrap(), 0xDEAD_BEEF);
        img.write_f64(a + 8, 3.25).unwrap();
        assert_eq!(img.read_f64(a + 8).unwrap(), 3.25);
    }

    #[test]
    fn fresh_data_reads_zero() {
        let img = Image::new();
        let a = img.alloc_data(16, 8);
        assert_eq!(img.read_u64(a).unwrap(), 0);
    }

    #[test]
    fn out_of_segment_faults() {
        let img = Image::new();
        let err = img.read_u64(0x10).unwrap_err();
        assert_eq!(err.addr, 0x10);
        assert!(!err.write);
        let img = Image::new();
        let err = img.write_u64(0x10, 1).unwrap_err();
        assert!(err.write);
    }

    #[test]
    fn access_straddling_segment_end_faults() {
        let img = Image::new();
        let last = layout::DATA_BASE + layout::DATA_SIZE - 4;
        assert!(img.read_uint(last, 4).is_ok());
        assert!(img.read_uint(last, 8).is_err());
    }

    #[test]
    fn alignment_respected() {
        let img = Image::new();
        let _ = img.alloc_data(3, 1);
        let a = img.alloc_data(8, 16);
        assert_eq!(a % 16, 0);
        let h = img.alloc_heap(100, 64);
        assert_eq!(h % 64, 0);
    }

    #[test]
    fn symbols() {
        let img = Image::new();
        let f = img.alloc_code(&[0xC3]);
        img.define("func", f);
        assert_eq!(img.lookup("func"), Some(f));
        assert_eq!(img.symbol_at(f).as_deref(), Some("func"));
        assert_eq!(img.lookup("nope"), None);
        assert_eq!(img.symbol_at(f + 1), None);
    }

    #[test]
    fn code_window_clamps() {
        let img = Image::new();
        let code = vec![0x90u8; 32];
        let a = img.alloc_code(&code);
        let w = img.code_window(a, 16).unwrap();
        assert_eq!(w, vec![0x90u8; 16]);
        // Window near the end of the segment is clamped, not an error.
        let near_end = layout::CODE_BASE + layout::CODE_SIZE - 8;
        let w = img.code_window(near_end, 64).unwrap();
        assert_eq!(w.len(), 8);
        // Data addresses are not valid code windows.
        assert!(img.code_window(layout::DATA_BASE, 4).is_err());
    }

    #[test]
    fn jit_segment_accounting() {
        let img = Image::new();
        let before = img.jit_remaining();
        let a = img.alloc_jit(&[0xC3; 100]);
        assert_eq!(img.segment_of(a), Some(SegKind::Jit));
        assert!(img.jit_remaining() < before);
    }

    #[test]
    fn try_alloc_jit_reserves_disjoint_and_fails_when_full() {
        let img = Image::new();
        let a = img.try_alloc_jit(100).unwrap();
        let b = img.try_alloc_jit(100).unwrap();
        assert!(b >= a + 100);
        // Reserved space reads as zero and is writable.
        assert_eq!(img.read_u64(a).unwrap(), 0);
        img.write_bytes(a, &[0xC3]).unwrap();
        // An over-large reservation fails cleanly rather than panicking.
        assert!(img.try_alloc_jit(layout::JIT_SIZE).is_none());
        // ... and leaves the bump pointer usable.
        assert!(img.try_alloc_jit(16).is_some());
    }

    #[test]
    fn stack_is_accessible() {
        let img = Image::new();
        let sp = img.stack_top();
        img.write_u64(sp - 8, 42).unwrap();
        assert_eq!(img.read_u64(sp - 8).unwrap(), 42);
        assert_eq!(img.segment_of(sp - 8), Some(SegKind::Stack));
    }

    #[test]
    fn page_boundary_straddle() {
        let img = Image::new();
        img.alloc_heap(2 * PAGE, 8);
        let a = layout::HEAP_BASE + PAGE - 4; // straddles two pages
        img.write_u64(a, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(img.read_u64(a).unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let img = Image::new();
        let a = img.alloc_data_bytes(&[1u8; 8], 8);
        let b = img.alloc_data_bytes(&[2u8; 8], 8);
        assert!(b >= a + 8);
        assert_eq!(img.read_uint(a, 1).unwrap(), 1);
        assert_eq!(img.read_uint(b, 1).unwrap(), 2);
    }

    #[test]
    fn image_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Image>();
    }

    #[test]
    fn concurrent_allocations_are_disjoint() {
        let img = Image::new();
        let addrs: Vec<Vec<u64>> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    s.spawn(|| {
                        (0..64)
                            .map(|i| {
                                let a = img.try_alloc_jit(32 + (i % 7)).unwrap();
                                img.write_bytes(a, &[0xC3; 8]).unwrap();
                                a
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut all: Vec<u64> = addrs.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 64, "every reservation is unique");
    }
}
