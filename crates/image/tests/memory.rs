//! Property tests of the sparse paged memory and segment policy.

use brew_image::{layout, Image};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn write_read_roundtrip_anywhere_in_heap(
        writes in proptest::collection::vec((0u64..layout::HEAP_SIZE - 8, any::<u64>()), 1..32)
    ) {
        let mut img = Image::new();
        // Apply in order; later writes to overlapping addresses win.
        let mut expected: Vec<(u64, u64)> = Vec::new();
        for (off, v) in &writes {
            let addr = layout::HEAP_BASE + off;
            img.write_u64(addr, *v).unwrap();
            expected.retain(|(a, _)| a.abs_diff(addr) >= 8);
            expected.push((addr, *v));
        }
        for (addr, v) in expected {
            prop_assert_eq!(img.read_u64(addr).unwrap(), v);
        }
    }

    #[test]
    fn byte_level_roundtrip_across_page_boundaries(
        off in 0u64..(3 * 4096),
        data in proptest::collection::vec(any::<u8>(), 1..64)
    ) {
        let mut img = Image::new();
        let addr = layout::HEAP_BASE + 4096 - 32 + off; // straddles pages often
        img.write_bytes(addr, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        img.read_bytes(addr, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn out_of_segment_never_panics(addr in any::<u64>(), size in 1u64..9) {
        let img = Image::new();
        let _ = img.read_uint(addr, size.min(8));
    }

    #[test]
    fn allocations_are_disjoint(sizes in proptest::collection::vec(1u64..200, 1..20)) {
        let mut img = Image::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for s in sizes {
            let a = img.alloc_data(s, 8);
            for (b, t) in &spans {
                prop_assert!(a + s <= *b || *b + *t <= a, "overlap");
            }
            spans.push((a, s));
        }
    }

    #[test]
    fn code_version_changes_on_code_writes_only(n in 1usize..8) {
        let mut img = Image::new();
        let c = img.alloc_code(&[0x90; 16]);
        let d = img.alloc_data(64, 8);
        let v0 = img.code_version();
        for i in 0..n {
            img.write_u64(d, i as u64).unwrap();
        }
        prop_assert_eq!(img.code_version(), v0, "data writes don't bump");
        img.write_bytes(c, &[0xC3]).unwrap();
        prop_assert!(img.code_version() > v0, "code writes bump");
    }

    #[test]
    fn image_uids_are_unique(_x in 0..4u8) {
        let a = Image::new();
        let b = Image::new();
        prop_assert_ne!(a.uid(), b.uid());
    }
}
