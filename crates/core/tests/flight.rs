//! Flight-recorder torture: dumping concurrently with writers must never
//! block, tear, or mis-account — at the raw-ring level, under real
//! manager RCU churn, and on the panic-containment path.

use brew_core::telemetry::flight::FlightKind;
use brew_core::{
    FlightRecorder, Invalidation, PublishRejection, RetKind, SpecRequest, SpecializationManager,
    SymbolKind,
};
use brew_image::Image;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const PROG: &str = r#"
    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
"#;

fn setup() -> (Image, u64) {
    let img = Image::new();
    let prog = brew_minic::compile_into(PROG, &img).unwrap();
    (img, prog.func("poly").unwrap())
}

fn poly_req(n: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int()
        .known_int(n)
        .ret(RetKind::Int)
}

/// Per-event payload checksum: would let the dumper detect a payload
/// mixing words from two different writes. With the claim-CAS write
/// protocol such mixing is structurally impossible, so every decoded
/// entry must check out — the assertion is exact, not a bound.
fn chk(w: u64, seq: u64) -> u64 {
    w ^ seq.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15
}

/// 8 writers hammer a small ring while a dumper snapshots it in a loop.
/// Every snapshot must be internally consistent: per-writer sequence
/// numbers monotone (no reordering, no duplication within a dump), the
/// slot accounting exact (`entries + torn + lapped` covers the window),
/// and — the PR 9 fix — *zero* mixed payloads: the claim CAS makes
/// payload stores exclusive, so a clean stamp proves a whole record.
/// Full-lap races surface as `lapped` slots, never as corruption.
#[test]
fn torture_concurrent_writers_and_dumper() {
    const WRITERS: u64 = 8;
    const EVENTS: u64 = 10_000;
    let rec = Arc::new(FlightRecorder::new(1024));
    let cap = rec.capacity() as u64;
    let stop = Arc::new(AtomicBool::new(false));

    let dumper = {
        let rec = Arc::clone(&rec);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut dumps = 0u64;
            while !stop.load(Ordering::Acquire) {
                let d = rec.dump();
                // Each ticket in the window is decoded, torn, or lapped.
                assert_eq!(
                    d.entries.len() as u64 + d.torn + d.lapped,
                    d.recorded.min(cap),
                    "slot accounting must be exact"
                );
                // Per-writer sequence args must be strictly increasing:
                // a writer's tickets are program-ordered and the dump's
                // stable time sort preserves ring order on ties.
                let mut last = vec![None::<u64>; WRITERS as usize];
                for e in &d.entries {
                    assert_eq!(e.kind, FlightKind::Hit);
                    let (w, seq) = (e.args[0], e.args[1]);
                    assert_eq!(
                        e.args[2],
                        chk(w, seq),
                        "mixed payload for writer {w} seq {seq}: exclusive \
                         claim-CAS writes must make this impossible"
                    );
                    if let Some(prev) = last[w as usize] {
                        assert!(seq > prev, "writer {w}: seq {seq} after {prev}");
                    }
                    last[w as usize] = Some(seq);
                }
                dumps += 1;
            }
            dumps
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for seq in 0..EVENTS {
                    rec.record(FlightKind::Hit, [w, seq, chk(w, seq), 0]);
                }
            })
        })
        .collect();
    for t in writers {
        t.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let dumps = dumper.join().unwrap();
    assert!(dumps > 0, "dumper never ran");

    // At rest nothing is mid-write, so torn must be exactly zero and no
    // payload may be mixed. The only residue a full-lap race can leave
    // is a slot consistently stamped for an older ticket (a newer write
    // abandoned against a slower lapped writer) — `lapped`, bounded by
    // one slot per writer.
    let d = rec.dump();
    assert_eq!(d.torn, 0, "a quiesced ring can have no mid-write slots");
    for e in &d.entries {
        assert_eq!(
            e.args[2],
            chk(e.args[0], e.args[1]),
            "mixed payload at rest"
        );
    }
    assert!(
        d.lapped <= WRITERS,
        "lapped residue {} exceeds one slot per writer",
        d.lapped
    );
    assert_eq!(d.recorded, WRITERS * EVENTS);
    assert_eq!(d.entries.len() as u64 + d.lapped, cap);
    assert_eq!(d.dropped, WRITERS * EVENTS - cap);
    let text = d.render_text();
    assert!(text.starts_with("# brew flight dump v1"));
    assert_eq!(text.lines().count(), d.entries.len() + 1);
}

/// Forced-lap regression for the PR 9 classification fix: a tiny ring
/// against a flat-out writer guarantees slots are overwritten *during*
/// the dump. Those must surface as `lapped` (a consistent record from
/// the wrong lap), never as `torn` corruption — and a single-writer ring
/// at rest must dump perfectly clean (no abandonment is possible without
/// a second writer).
#[test]
fn forced_lap_is_classified_lapped_not_torn() {
    let rec = Arc::new(FlightRecorder::new(64));
    let cap = rec.capacity() as u64;
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let rec = Arc::clone(&rec);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seq = 0u64;
            while !stop.load(Ordering::Acquire) {
                rec.record(FlightKind::Hit, [0, seq, chk(0, seq), 0]);
                seq += 1;
            }
        })
    };
    // Don't start sampling until the writer is demonstrably spinning and
    // has lapped the ring at least once — otherwise the dump loop can
    // finish against an idle ring before the writer thread is scheduled.
    while rec.recorded() < cap * 2 {
        std::hint::spin_loop();
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut saw_lapped = false;
    while std::time::Instant::now() < deadline {
        let d = rec.dump();
        assert_eq!(
            d.entries.len() as u64 + d.torn + d.lapped,
            d.recorded.min(cap),
            "slot accounting must be exact under forced laps"
        );
        // Whatever survives must be whole records — a lap can hide a
        // slot, never corrupt one.
        for e in &d.entries {
            assert_eq!(e.args[2], chk(e.args[0], e.args[1]), "mixed payload");
        }
        if d.lapped > 0 {
            saw_lapped = true;
            break;
        }
    }
    stop.store(true, Ordering::Release);
    writer.join().unwrap();
    assert!(
        saw_lapped,
        "a 64-slot ring against a flat-out writer must lap the dumper"
    );
    // Quiesced single-writer ring: nothing mid-write, nothing abandoned.
    let d = rec.dump();
    assert_eq!(d.torn, 0);
    assert_eq!(d.lapped, 0);
    assert_eq!(d.entries.len() as u64, d.recorded.min(cap));
}

/// Real manager churn: rewriters, an invalidator, and a flight dumper all
/// run concurrently. Dumps must stay consistent while epochs retire
/// variants under RCU, and at quiescence the symbol table must agree
/// with the resident set.
#[test]
fn manager_rcu_churn_with_concurrent_dumps() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let dumper = s.spawn(|| {
            let flight = mgr.flight();
            let mut dumps = 0u64;
            while !stop.load(Ordering::Acquire) {
                let d = flight.dump();
                let cap = flight.capacity() as u64;
                assert_eq!(
                    d.entries.len() as u64 + d.torn + d.lapped,
                    d.recorded.min(cap)
                );
                // Rendering while writers run must stay line-clean.
                for line in d.render_text().lines().skip(1) {
                    assert!(line.starts_with("ts="), "garbled dump line: {line}");
                }
                dumps += 1;
            }
            dumps
        });
        let rewriters: Vec<_> = (0..3i64)
            .map(|t| {
                let (mgr, img) = (&mgr, &img);
                s.spawn(move || {
                    for round in 0..40i64 {
                        let n = 2 + ((t + round) % 6);
                        mgr.get_or_rewrite(img, poly, &poly_req(n)).unwrap();
                        let _ = mgr.request(img, poly, &poly_req(n)).unwrap();
                    }
                })
            })
            .collect();
        let invalidator = {
            let (mgr, img) = (&mgr, &img);
            s.spawn(move || {
                for round in 0..20 {
                    if round % 5 == 4 {
                        mgr.clear();
                    } else {
                        mgr.apply_invalidation(Invalidation::Revalidate(img));
                    }
                    std::thread::yield_now();
                }
            })
        };
        for t in rewriters {
            t.join().unwrap();
        }
        invalidator.join().unwrap();
        stop.store(true, Ordering::Release);
        assert!(dumper.join().unwrap() > 0);
    });

    // Quiescent consistency: one live symbol per resident variant, and
    // the journal actually saw the churn.
    let d = mgr.flight().dump();
    assert_eq!(d.torn, 0);
    assert_eq!(mgr.symbols().live_count(SymbolKind::Variant), mgr.len());
    let kinds: Vec<FlightKind> = d.entries.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&FlightKind::Rewritten));
    assert!(kinds.contains(&FlightKind::SymbolPublish));
    assert!(kinds.contains(&FlightKind::SymbolRetire));
    assert!(kinds.contains(&FlightKind::EpochPublish));
}

/// A contained panic freezes a flight dump: the events leading up to the
/// blast (including the successful publish before it) are retrievable
/// from `last_panic_dump()` after the fact.
#[test]
fn contained_panic_captures_preceding_events() {
    let (img, poly) = setup();
    let calls = Arc::new(AtomicUsize::new(0));
    let calls2 = Arc::clone(&calls);
    let mgr = SpecializationManager::builder()
        .publish_gate(Box::new(
            move |_: &Image,
                  _: u64,
                  _: &SpecRequest,
                  _: &brew_core::RewriteResult|
                  -> Result<(), PublishRejection> {
                if calls2.fetch_add(1, Ordering::SeqCst) == 0 {
                    Ok(())
                } else {
                    panic!("gate blew up");
                }
            },
        ))
        .build();
    assert!(mgr.last_panic_dump().is_none());
    mgr.get_or_rewrite(&img, poly, &poly_req(5)).unwrap();
    let err = mgr.get_or_rewrite(&img, poly, &poly_req(9)).unwrap_err();
    assert!(err.to_string().contains("gate blew up"));

    let dump = mgr.last_panic_dump().expect("panic must freeze a dump");
    assert!(dump.starts_with("# brew flight dump v1"));
    assert!(dump.contains("kind=PANIC"), "{dump}");
    // The history before the blast is in the frozen dump: the first
    // publish and the second miss that led to the panicking gate.
    assert!(dump.contains("kind=REWRITTEN"), "{dump}");
    assert!(dump.contains("kind=SYM_PUB"), "{dump}");
    let panic_at = dump.find("kind=PANIC").unwrap();
    let first_pub = dump.find("kind=SYM_PUB").unwrap();
    assert!(first_pub < panic_at, "events must precede the containment");
}
