//! Save-path accounting: `save_variants`/`checkpoint` must report what
//! they wrote *and* what they could not write. PR 8 and earlier silently
//! `continue`d over per-entry read-back errors — a checkpoint could claim
//! success while dropping variants on the floor. Now every non-written
//! entry lands in the [`SaveReport`] as `skipped` or `failed`, failures
//! are counted in `brew_persist_save_failed_total`, and each one records
//! a `SAVE_FAIL` flight event.

use brew_core::telemetry::flight::FlightKind;
use brew_core::telemetry::metrics::Ctr;
use brew_core::{RetKind, SpecRequest, SpecializationManager};
use brew_image::{layout, Image};

const PROG: &str = r#"
    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
"#;

fn setup() -> (Image, u64) {
    let img = Image::new();
    let prog = brew_minic::compile_into(PROG, &img).unwrap();
    (img, prog.func("poly").unwrap())
}

fn poly_req(n: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int()
        .known_int(n)
        .ret(RetKind::Int)
}

/// A clean save accounts for every resident variant as written, nothing
/// skipped or failed, and reports the exact file size. `checkpoint`
/// propagates the same report through the builder-configured path.
#[test]
fn clean_save_reports_all_written() {
    let (img, poly) = setup();
    let path = std::env::temp_dir().join(format!("brew_save_clean_{}.bin", std::process::id()));
    let mgr = SpecializationManager::builder().persist_path(&path).build();
    for n in 2..6 {
        mgr.get_or_rewrite(&img, poly, &poly_req(n)).unwrap();
    }

    let report = mgr.checkpoint(&img).unwrap().expect("path is configured");
    assert_eq!(report.written, mgr.len());
    assert_eq!(report.skipped, 0);
    assert_eq!(report.failed, 0);
    assert_eq!(
        report.bytes,
        std::fs::metadata(&path).unwrap().len() as usize,
        "report must match the file actually written"
    );
    assert_eq!(mgr.metrics().counter(Ctr::PersistSaveFailed).get(), 0);
    std::fs::remove_file(&path).ok();

    // No configured path: checkpoint is a typed no-op, not an error.
    let bare = SpecializationManager::new();
    assert_eq!(bare.checkpoint(&img).unwrap(), None);
}

/// Per-entry read-back failures must not abort the save — and must not
/// be silent: the report counts them, `brew_persist_save_failed_total`
/// counts them, a `SAVE_FAIL` flight event records which entry, and the
/// surviving bytes still load cleanly.
#[test]
fn unreadable_entry_is_counted_failed_not_dropped_silently() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    mgr.get_or_rewrite(&img, poly, &poly_req(3)).unwrap();

    // An entry inside the JIT segment whose code range crosses the
    // segment end: `segment_of` says ours, `read_bytes` faults. A real
    // publish can never produce this against its own image — a save
    // against the wrong image can.
    let bad_entry = layout::JIT_BASE + layout::JIT_SIZE - 8;
    mgr.insert_synthetic_variant_for_tests(0x1234, 0x9999, bad_entry, 64);

    let (bytes, report) = mgr.save_variant_bytes_report(&img);
    assert_eq!(report.written, 1, "the readable variant still saves");
    assert_eq!(report.skipped, 0);
    assert_eq!(report.failed, 1, "the unreadable entry is accounted");
    assert_eq!(mgr.metrics().counter(Ctr::PersistSaveFailed).get(), 1);
    let dump = mgr.flight().dump();
    let fail = dump
        .entries
        .iter()
        .find(|e| e.kind == FlightKind::PersistSaveFailed)
        .expect("a SAVE_FAIL event must be recorded");
    assert_eq!(fail.args[0], 0x1234, "event names the failing function");
    assert_eq!(fail.args[1], bad_entry, "event names the failing entry");
    assert!(dump.render_text().contains("kind=SAVE_FAIL"));

    // What did get written is a valid checkpoint of the surviving entry.
    let fresh_img = Image::new();
    brew_minic::compile_into(PROG, &fresh_img).unwrap();
    let fresh = SpecializationManager::new();
    let loaded = fresh.load_variant_bytes(&fresh_img, &bytes).unwrap();
    assert_eq!(loaded.published, 1);
    assert!(loaded.rejected.is_empty());
}

/// An entry whose address is not in this image's JIT segment at all is
/// `skipped` (legitimately not ours), distinct from `failed`.
#[test]
fn foreign_entry_is_counted_skipped() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    mgr.get_or_rewrite(&img, poly, &poly_req(4)).unwrap();
    // Address in no segment: clearly another image's code.
    mgr.insert_synthetic_variant_for_tests(0x5678, 0x7777, 0x10, 16);

    let (_, report) = mgr.save_variant_bytes_report(&img);
    assert_eq!(report.written, 1);
    assert_eq!(report.skipped, 1);
    assert_eq!(report.failed, 0);
    assert_eq!(mgr.metrics().counter(Ctr::PersistSaveFailed).get(), 0);
}
