//! Instrumentation hooks (§III.D): entry/exit profiling calls and
//! memory-access handlers injected into rewritten code.

use brew_core::{RetKind, Rewriter, SpecRequest};
use brew_emu::{CallArgs, Machine};
use brew_image::Image;

const PROG: &str = r#"
    int entry_count;
    int exit_count;
    int access_count;
    void on_entry(int f) { entry_count += 1; }
    void on_exit(int f)  { exit_count += 1; }
    void on_access(int addr) { access_count += 1; }

    int sum(int* p, int n) {
        int s = 0;
        for (int i = 0; i < n; i++) s += p[i];
        return s;
    }
"#;

fn setup() -> (Image, brew_minic::Compiled) {
    let img = Image::new();
    let prog = brew_minic::compile_into(PROG, &img).unwrap();
    (img, prog)
}

fn counter(img: &Image, prog: &brew_minic::Compiled, name: &str) -> u64 {
    img.read_u64(prog.global(name).unwrap()).unwrap()
}

#[test]
fn entry_and_exit_hooks_fire_once_per_call() {
    let (img, prog) = setup();
    let sum = prog.func("sum").unwrap();
    let req = SpecRequest::new()
        .unknown_int() // p
        .known_int(4) // n
        .ret(RetKind::Int)
        .entry_hook(prog.func("on_entry").unwrap())
        .exit_hook(prog.func("on_exit").unwrap())
        // Don't inline the handlers into the instrumented code's own trace.
        .func(prog.func("on_entry").unwrap(), |o| o.inline = false)
        .func(prog.func("on_exit").unwrap(), |o| o.inline = false);
    let res = Rewriter::new(&img).rewrite(sum, &req).unwrap();
    assert!(res.stats.hooks_injected >= 2);

    let p = img.alloc_heap(4 * 8, 8);
    for i in 0..4 {
        img.write_u64(p + i * 8, i + 1).unwrap();
    }
    let mut m = Machine::new();
    for _ in 0..3 {
        let out = m
            .call(&img, res.entry, &CallArgs::new().ptr(p).int(4))
            .unwrap();
        assert_eq!(out.ret_int, 10, "instrumentation must not change results");
    }
    assert_eq!(counter(&img, &prog, "entry_count"), 3);
    assert_eq!(counter(&img, &prog, "exit_count"), 3);
}

#[test]
fn exit_hook_receives_original_function_address() {
    let src = r#"
        int last_fn;
        void on_exit(int f) { last_fn = f; }
        int id(int x) { return x; }
    "#;
    let img = Image::new();
    let prog = brew_minic::compile_into(src, &img).unwrap();
    let id = prog.func("id").unwrap();
    let req = SpecRequest::new()
        .unknown_int()
        .ret(RetKind::Int)
        .exit_hook(prog.func("on_exit").unwrap())
        .func(prog.func("on_exit").unwrap(), |o| o.inline = false);
    let res = Rewriter::new(&img).rewrite(id, &req).unwrap();
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new().int(7)).unwrap();
    assert_eq!(out.ret_int, 7, "return value preserved across the hook");
    assert_eq!(
        img.read_u64(prog.global("last_fn").unwrap()).unwrap(),
        id,
        "handler sees the original function's address"
    );
}

#[test]
fn memory_hook_counts_unknown_accesses() {
    let (img, prog) = setup();
    let sum = prog.func("sum").unwrap();
    let req = SpecRequest::new()
        .unknown_int() // p
        .known_int(3) // n
        .ret(RetKind::Int)
        .mem_access_hook(prog.func("on_access").unwrap())
        .func(prog.func("on_access").unwrap(), |o| o.inline = false);
    let res = Rewriter::new(&img).rewrite(sum, &req).unwrap();
    assert!(res.stats.hooks_injected > 0);

    let p = img.alloc_heap(3 * 8, 8);
    for i in 0..3 {
        img.write_u64(p + i * 8, 5).unwrap();
    }
    let mut m = Machine::new();
    let out = m
        .call(&img, res.entry, &CallArgs::new().ptr(p).int(3))
        .unwrap();
    assert_eq!(out.ret_int, 15);
    // One hooked access per element (the p[i] loads; the loop was fully
    // unrolled with n known so there are exactly 3).
    assert_eq!(counter(&img, &prog, "access_count"), 3);
}

#[test]
fn all_three_hooks_compose() {
    let (img, prog) = setup();
    let sum = prog.func("sum").unwrap();
    let mut req = SpecRequest::new()
        .unknown_int() // p
        .known_int(2) // n
        .ret(RetKind::Int)
        .entry_hook(prog.func("on_entry").unwrap())
        .exit_hook(prog.func("on_exit").unwrap())
        .mem_access_hook(prog.func("on_access").unwrap());
    for h in ["on_entry", "on_exit", "on_access"] {
        req = req.func(prog.func(h).unwrap(), |o| o.inline = false);
    }
    let res = Rewriter::new(&img).rewrite(sum, &req).unwrap();
    let p = img.alloc_heap(2 * 8, 8);
    img.write_u64(p, 20).unwrap();
    img.write_u64(p + 8, 22).unwrap();
    let mut m = Machine::new();
    let out = m
        .call(&img, res.entry, &CallArgs::new().ptr(p).int(2))
        .unwrap();
    assert_eq!(out.ret_int, 42);
    assert_eq!(counter(&img, &prog, "entry_count"), 1);
    assert_eq!(counter(&img, &prog, "exit_count"), 1);
    assert_eq!(counter(&img, &prog, "access_count"), 2);
}
