//! End-to-end telemetry: the always-on metrics registry, self-counting
//! dispatch stubs, the rewrite span tree and the export formats.

use brew_core::telemetry::metrics::{Ctr, Gge, Hst};
use brew_core::{
    explain_report, validate_json, RetKind, Rewriter, SpecRequest, SpecializationManager,
};
use brew_emu::{CallArgs, Machine};
use brew_image::Image;

const PROG: &str = r#"
    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
"#;

fn setup() -> (Image, u64) {
    let img = Image::new();
    let prog = brew_minic::compile_into(PROG, &img).unwrap();
    (img, prog.func("poly").unwrap())
}

fn poly_req(n: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int()
        .known_int(n)
        .ret(RetKind::Int)
}

#[test]
fn registry_is_fed_without_any_sink() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    assert!(mgr.take_sink().is_none(), "no sink attached");

    let v = mgr.get_or_rewrite(&img, poly, &poly_req(5)).unwrap();
    mgr.get_or_rewrite(&img, poly, &poly_req(5)).unwrap();
    mgr.get_or_rewrite(&img, poly, &poly_req(5)).unwrap();
    mgr.build_dispatcher(&img, poly, poly).unwrap();

    // Satellite fix: events land in the metrics registry even though no
    // EventSink was ever attached.
    let m = mgr.metrics();
    assert_eq!(m.counter(Ctr::CacheMisses).get(), 1);
    assert_eq!(m.counter(Ctr::CacheHits).get(), 2);
    assert_eq!(m.counter(Ctr::Rewrites).get(), 1);
    assert_eq!(m.counter(Ctr::RewriteFailures).get(), 0);
    assert_eq!(m.counter(Ctr::DispatchersBuilt).get(), 1);
    assert_eq!(m.counter(Ctr::TracedInsts).get(), v.stats.traced);
    assert_eq!(m.counter(Ctr::JitCodeBytes).get(), v.code_len as u64);
    assert_eq!(m.gauge(Gge::ResidentBytes).get(), v.code_len as i64);
    assert_eq!(m.gauge(Gge::ResidentVariants).get(), 1);
    assert_eq!(m.gauge(Gge::InflightRewrites).get(), 0, "balanced inc/dec");
    // The rewrite's phase timings landed in every histogram.
    for h in [Hst::TraceNs, Hst::PassNs, Hst::EmitNs, Hst::TotalNs] {
        assert_eq!(m.histogram(h).count(), 1, "{}", h.name());
    }
    assert_eq!(
        m.histogram(Hst::TotalNs).sum(),
        v.stats.total_ns(),
        "total histogram sums the rewrite's phase total"
    );
}

#[test]
fn registry_counts_failures() {
    let (img, _) = setup();
    let mgr = SpecializationManager::new();
    // A non-code address fails to rewrite.
    assert!(mgr.get_or_rewrite(&img, 0x10, &poly_req(1)).is_err());
    let m = mgr.metrics();
    assert_eq!(m.counter(Ctr::RewriteFailures).get(), 1);
    assert_eq!(m.counter(Ctr::Rewrites).get(), 0);
    assert_eq!(m.gauge(Gge::InflightRewrites).get(), 0);
}

#[test]
fn counting_dispatcher_counters_match_call_totals() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    for n in [3i64, 5, 8] {
        mgr.get_or_rewrite(&img, poly, &poly_req(n)).unwrap();
    }
    let (dispatch, page) = mgr.build_dispatcher_counting(&img, poly, poly).unwrap();
    assert_eq!(page.cases, 3);
    assert_eq!(page.total(&img).unwrap(), 0, "page starts zeroed");

    // Drive a known call mix through the stub: variants are chained
    // hottest-first, but every case guards a distinct n so the per-value
    // totals are exact regardless of chain order.
    let mut m = Machine::new();
    let mix = [(3i64, 7u64), (5, 4), (8, 2)];
    let mut fallthrough = 0u64;
    for &(n, times) in &mix {
        for _ in 0..times {
            m.call(&img, dispatch, &CallArgs::new().int(2).int(n))
                .unwrap();
        }
    }
    for n in [0i64, 1, 4] {
        m.call(&img, dispatch, &CallArgs::new().int(2).int(n))
            .unwrap();
        fallthrough += 1;
    }

    let total_calls = mix.iter().map(|&(_, t)| t).sum::<u64>() + fallthrough;
    assert_eq!(page.total(&img).unwrap(), total_calls);
    assert_eq!(page.fallthrough_hits(&img).unwrap(), fallthrough);

    // Map each case's slot back to the variant it guards and check the
    // per-value counts.
    let variants = mgr.variants_of(poly);
    for (ci, v) in variants.iter().enumerate() {
        let guards = v.guards.as_ref().unwrap();
        let n = guards[0].1;
        let want = mix.iter().find(|&&(mn, _)| mn == n).unwrap().1;
        assert_eq!(
            page.case_hits(&img, ci).unwrap(),
            want,
            "case {ci} guards n={n}"
        );
    }

    // Reset zeroes the page; further calls count again.
    page.reset(&img).unwrap();
    m.call(&img, dispatch, &CallArgs::new().int(2).int(3))
        .unwrap();
    assert_eq!(page.total(&img).unwrap(), 1);
}

#[test]
fn counting_stub_is_behaviorally_identical_to_plain() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    for n in [2i64, 6] {
        mgr.get_or_rewrite(&img, poly, &poly_req(n)).unwrap();
    }
    let plain = mgr.build_dispatcher(&img, poly, poly).unwrap();
    let (counting, page) = mgr.build_dispatcher_counting(&img, poly, poly).unwrap();

    let mut m = Machine::new();
    let mut calls = 0u64;
    for x in [-5i64, -1, 0, 1, 2, 3, 100] {
        for n in [0i64, 1, 2, 3, 6, 7] {
            let args = CallArgs::new().int(x).int(n);
            let a = m.call(&img, plain, &args).unwrap().ret_int;
            let b = m.call(&img, counting, &args).unwrap().ret_int;
            let orig = m.call(&img, poly, &args).unwrap().ret_int;
            assert_eq!(a, b, "poly({x},{n}) diverged between stub flavors");
            assert_eq!(b, orig, "poly({x},{n}) diverged from the original");
            calls += 1;
        }
    }
    assert_eq!(
        page.total(&img).unwrap(),
        calls,
        "every call through the counting stub bumped exactly one slot"
    );
}

#[test]
fn exports_are_well_formed_and_cover_the_run() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    mgr.get_or_rewrite(&img, poly, &poly_req(4)).unwrap();
    mgr.get_or_rewrite(&img, poly, &poly_req(4)).unwrap();

    let m = mgr.metrics();
    let prom = m.render_prometheus();
    for needle in [
        "# HELP brew_cache_hits_total",
        "# TYPE brew_cache_hits_total counter",
        "brew_cache_hits_total 1",
        "brew_cache_misses_total 1",
        "brew_rewrite_trace_ns_bucket{le=\"+Inf\"} 1",
        "brew_rewrite_trace_ns_count 1",
        "brew_cache_resident_variants 1",
    ] {
        assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
    }
    validate_json(&m.snapshot_json()).expect("snapshot JSON is valid");
}

#[test]
fn trace_spans_chrome_json_and_explain_report() {
    let (img, poly) = setup();
    let (res, rec) = Rewriter::new(&img)
        .rewrite_with_trace(poly, &poly_req(6))
        .unwrap();

    // The three pipeline phases are present and plausibly ordered.
    for phase in ["trace", "passes", "emit"] {
        assert!(rec.span_ns(phase) > 0, "phase {phase} missing or empty");
    }
    assert!(!rec.events_in("block").is_empty(), "per-block spans");
    assert!(!rec.events_in("pass").is_empty(), "per-pass spans");
    assert!(!rec.events_in("emit-step").is_empty(), "emit-step spans");

    let chrome = rec.to_chrome_json();
    validate_json(&chrome).expect("chrome trace JSON is valid");
    assert!(chrome.contains("\"ph\":\"X\""), "complete events present");

    let report = explain_report(&img, poly, &res, &rec);
    for needle in [
        "poly",
        "### phases",
        "### blocks",
        "### generated code",
        &format!("{:#x}", res.entry),
    ] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }

    // The trace result itself still behaves.
    let out = Machine::new()
        .call(&img, res.entry, &CallArgs::new().int(3).int(6))
        .unwrap();
    assert_eq!(out.ret_int, 729);
}
