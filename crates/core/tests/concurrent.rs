//! Stress tests for the shared `SpecializationManager`: single-flight
//! exactly-once tracing, budget enforcement under concurrent eviction,
//! correct dispatch of concurrently produced variants, and deferred-mode
//! publication. Every assertion is an invariant or a quiescent-state
//! check — nothing here depends on thread timing.

use brew_core::{Dispatch, Event, EventSink, RetKind, SpecRequest, SpecializationManager};
use brew_emu::{CallArgs, Machine};
use brew_image::Image;
use std::sync::{Arc, Mutex};

const PROG: &str = r#"
    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
"#;

const THREADS: usize = 8;
/// Skewed mix: n=2 dominates, the tail is cold — eight distinct
/// fingerprints with very different temperatures.
const MIX: [i64; 16] = [2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 5, 6];
const DISTINCT: usize = 5; // |{2,3,4,5,6}|
const ROUNDS: usize = 100;

fn setup() -> (Image, u64) {
    let img = Image::new();
    let prog = brew_minic::compile_into(PROG, &img).unwrap();
    let poly = prog.func("poly").unwrap();
    (img, poly)
}

fn poly_req(n: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int()
        .known_int(n)
        .ret(RetKind::Int)
}

/// Deterministic per-thread request sequence over the skewed mix.
fn nth_request(tid: usize, i: usize) -> i64 {
    MIX[(tid * 7 + i * 13) % MIX.len()]
}

/// A per-thread emulator whose stack occupies a private 256 KiB slice of
/// the shared image's stack segment, so threads never clobber each other.
fn thread_machine(img: &Image, tid: usize) -> Machine<'_> {
    let mut m = Machine::new();
    m.set_stack_top(img.stack_top() - (tid as u64) * 0x4_0000);
    m
}

struct SharedSink(Arc<Mutex<Vec<Event>>>);

impl EventSink for SharedSink {
    fn event(&self, ev: &Event) {
        self.0.lock().unwrap().push(ev.clone());
    }
}

/// The headline single-flight property: 8 threads hammer a skewed mix,
/// yet each distinct fingerprint is traced exactly once, every returned
/// pointer dispatches to a correct specialized body, and the resident
/// set never exceeds the (ample) budget.
#[test]
fn skewed_mix_traces_each_fingerprint_exactly_once() {
    let (img, poly) = setup();
    let events = Arc::new(Mutex::new(Vec::new()));
    let mgr = SpecializationManager::builder()
        .event_sink(Box::new(SharedSink(Arc::clone(&events))))
        .build();
    let budget = mgr.budget_bytes();

    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let (mgr, img) = (&mgr, &img);
            s.spawn(move || {
                let mut m = thread_machine(img, tid);
                for i in 0..ROUNDS {
                    let n = nth_request(tid, i);
                    let v = mgr.get_or_rewrite(img, poly, &poly_req(n)).unwrap();
                    assert!(
                        mgr.stats().resident_bytes <= budget,
                        "resident set exceeded the budget mid-run"
                    );
                    // The returned pointer dispatches correctly right now,
                    // on this thread, whether we traced it or raced it.
                    let out = m
                        .call(img, v.entry, &CallArgs::new().int(3).int(n))
                        .unwrap();
                    assert_eq!(out.ret_int, 3u64.pow(n as u32), "3^{n} via variant");
                }
            });
        }
    });

    let st = mgr.stats();
    assert_eq!(st.misses, DISTINCT as u64, "one trace per fingerprint");
    assert_eq!(
        st.hits + st.coalesced + st.misses,
        (THREADS * ROUNDS) as u64,
        "every request accounted for"
    );
    let evs = events.lock().unwrap();
    let rewrites = evs
        .iter()
        .filter(|e| matches!(e, Event::Rewritten { .. }))
        .count();
    assert_eq!(rewrites, DISTINCT, "no duplicate trace slipped through");
    assert_eq!(mgr.len(), DISTINCT);
    assert!(st.resident_bytes <= budget);
}

/// Budget enforcement stays global when eviction races across shards:
/// after quiescence the resident set fits the budget, evictions actually
/// happened, and the cache still answers correctly.
#[test]
fn concurrent_eviction_respects_global_budget() {
    let (img, poly) = setup();
    let probe = SpecializationManager::new()
        .get_or_rewrite(&img, poly, &poly_req(2))
        .unwrap()
        .code_len;
    // Two probes' worth: most of the mix fits (evictions under pressure),
    // but the most-unrolled bodies (high n) exceed the budget on their
    // own and exercise the publish-time refusal below.
    let budget = probe * 2;
    let mgr = SpecializationManager::builder().budget(budget).build();

    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let (mgr, img) = (&mgr, &img);
            s.spawn(move || {
                for i in 0..40 {
                    // 16 distinct fingerprints against a two-probe
                    // budget: constant pressure from every thread. The
                    // largest bodies (high n, heavy unrolling) exceed the
                    // budget on their own and must be *refused*, never
                    // published — any other error is still a bug.
                    let n = 2 + ((tid + i * 5) % 16) as i64;
                    match mgr.get_or_rewrite(img, poly, &poly_req(n)) {
                        Ok(_) => {}
                        Err(brew_core::RewriteError::OverBudget { code_len, budget }) => {
                            assert!(code_len > budget, "refusal must be justified");
                        }
                        Err(e) => panic!("unexpected rewrite error: {e}"),
                    }
                }
            });
        }
    });

    let st = mgr.stats();
    assert!(st.evictions > 0, "pressure must evict: {st:?}");
    // The budget invariant as documented on `evict_to_budget`: publish
    // refuses any variant whose code alone exceeds the budget, so the
    // resident set fits — unconditionally, with no oversized-survivor
    // exception.
    assert!(
        st.resident_bytes <= budget,
        "quiescent resident {} exceeds budget {budget} ({} variants resident, {} evictions)",
        st.resident_bytes,
        mgr.len(),
        st.evictions
    );
    // The mix's largest bodies do beat the two-probe budget on their
    // own, so the refusal path must actually have fired and been counted.
    let refused = mgr
        .metrics()
        .counter(brew_core::telemetry::metrics::Ctr::OverBudget)
        .get();
    assert!(
        refused > 0,
        "oversized bodies must be refused, not published"
    );
    // The cache still works: a fresh request round-trips correctly.
    let v = mgr.get_or_rewrite(&img, poly, &poly_req(4)).unwrap();
    let out = Machine::new()
        .call(&img, v.entry, &CallArgs::new().int(5).int(4))
        .unwrap();
    assert_eq!(out.ret_int, 625);
}

/// Deferred mode: `request` answers misses with the original entry (which
/// must keep working), background workers rewrite, and by the time
/// `run_deferred` returns every hot fingerprint has a published variant.
#[test]
fn deferred_mode_eventually_publishes_every_hot_variant() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();

    mgr.run_deferred(&img, 4, || {
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let (mgr, img) = (&mgr, &img);
                s.spawn(move || {
                    let mut m = thread_machine(img, tid);
                    for i in 0..ROUNDS {
                        let n = nth_request(tid, i);
                        let d = mgr.request(img, poly, &poly_req(n)).unwrap();
                        if let Dispatch::Original { deferred, .. } = &d {
                            assert!(deferred, "miss inside the scope must defer");
                        }
                        // Whatever we were handed — original or variant —
                        // it computes poly correctly.
                        let out = m
                            .call(img, d.entry(), &CallArgs::new().int(2).int(n))
                            .unwrap();
                        assert_eq!(out.ret_int, 1u64 << n, "2^{n} via {d:?}");
                    }
                });
            }
        });
    })
    .unwrap();

    // The scope drained its queue: every hot fingerprint is resident.
    assert_eq!(mgr.len(), DISTINCT, "all hot variants published");
    let st = mgr.stats();
    assert_eq!(st.misses, DISTINCT as u64, "workers traced each key once");
    assert_eq!(st.published, DISTINCT as u64, "each publish reported once");
    assert!(st.deferred >= DISTINCT as u64, "first requests deferred");

    // Post-scope requests are plain hits on correct variants.
    let misses_before = mgr.stats().misses;
    let mut m = Machine::new();
    for n in [2i64, 3, 4, 5, 6] {
        let d = mgr.request(&img, poly, &poly_req(n)).unwrap();
        assert!(d.is_specialized(), "published variant answers n={n}");
        let out = m
            .call(&img, d.entry(), &CallArgs::new().int(2).int(n))
            .unwrap();
        assert_eq!(out.ret_int, 1u64 << n);
    }
    assert_eq!(mgr.stats().misses, misses_before, "no re-trace after scope");
}

/// Outside any deferred scope `request` degrades to the synchronous
/// single-flight path and reports a specialized dispatch immediately.
#[test]
fn request_outside_deferred_scope_is_synchronous() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    let d = mgr.request(&img, poly, &poly_req(3)).unwrap();
    assert!(d.is_specialized());
    assert_eq!(mgr.stats().misses, 1);
    assert_eq!(mgr.stats().deferred, 0);
}

/// Regression (companion to the PR 6 unwind test in lifecycle.rs): when a
/// panic escapes a deferred scope's closure, jobs still queued are
/// discarded by the unwinding close — they must surface as a typed
/// `DeferredScopeUnwound { lost }` from the *next* `run_deferred`, not
/// vanish silently. Acknowledging the error clears it, so the scope after
/// that runs normally.
#[test]
fn run_deferred_after_unwound_scope_reports_lost_jobs_once() {
    use brew_core::RewriteError;
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();

    // Pin the single worker on a deliberately slow first job (a 5000-fold
    // unrolled trace), queue quick ones behind it, then unwind out of the
    // scope with `resume_unwind` — it skips the panic hook (message
    // formatting, backtrace capture), so the unwinding close runs in
    // microseconds while the worker is still mid-trace and the quick jobs
    // are still queued to be counted as lost.
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        mgr.run_deferred(&img, 1, || {
            let _ = mgr.request(&img, poly, &poly_req(5000));
            for n in 2..12 {
                let _ = mgr.request(&img, poly, &poly_req(n));
            }
            std::panic::resume_unwind(Box::new("scope dies with jobs queued"));
        })
        .unwrap();
    }));
    assert!(caught.is_err(), "the panic propagates out of run_deferred");

    // The next scope reports the unwind as a typed error (don't pin the
    // exact count — the worker may have drained some jobs pre-panic).
    let err = mgr
        .run_deferred(&img, 1, || unreachable!("must not run after unwind"))
        .unwrap_err();
    assert!(
        matches!(err, RewriteError::DeferredScopeUnwound { .. }),
        "typed unwind error, got {err:?}"
    );

    // Acknowledged: the scope after that is clean and fully functional.
    mgr.run_deferred(&img, 2, || {
        let d = mgr.request(&img, poly, &poly_req(3)).unwrap();
        let _ = d.entry();
    })
    .unwrap();
    assert!(
        mgr.is_resident(poly, poly_req(3).fingerprint()),
        "post-acknowledgement scope publishes normally"
    );
}

/// Nested deferred scopes are a typed error, not a silent queue close.
#[test]
fn nested_deferred_scope_is_rejected() {
    use brew_core::RewriteError;
    let (img, _poly) = setup();
    let mgr = SpecializationManager::new();
    mgr.run_deferred(&img, 1, || {
        let err = mgr.run_deferred(&img, 1, || ()).unwrap_err();
        assert!(matches!(err, RewriteError::DeferredScopeActive));
    })
    .unwrap();
    // The outer scope closed normally; a fresh scope opens fine.
    mgr.run_deferred(&img, 1, || ()).unwrap();
}
