//! Adaptive tiering: the counter → specialization loop under adversarial
//! schedules. Promotion from observed misses, demotion of cold residents,
//! hysteresis against flapping, negative-cache backoff on the promotion
//! path, safety of demotion racing an in-flight caller, counter wrap
//! tolerance, and heat-gated re-specialization after invalidation.

use brew_core::{
    Event, EventSink, Invalidation, NegativePolicy, RetKind, SpecRequest, SpecializationManager,
    TieringConfig,
};
use brew_emu::{CallArgs, Machine};
use brew_image::Image;
use proptest::prelude::*;
use std::sync::Arc;

const PROG: &str = r#"
    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
    int dot(int* c, int x) {
        return c[0] * x + c[1];
    }
"#;

fn setup() -> (Image, brew_minic::Compiled) {
    let img = Image::new();
    let prog = brew_minic::compile_into(PROG, &img).unwrap();
    (img, prog)
}

fn poly_req(n: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int()
        .known_int(n)
        .ret(RetKind::Int)
}

/// A tight band the tests can cross in a handful of ticks.
fn cfg() -> TieringConfig {
    TieringConfig {
        promote_heat: 3.0,
        demote_heat: 1.0,
        decay: 0.5,
        cooldown_ticks: 1,
        cycle_weight: 0.0,
    }
}

/// Forwards to a shared recording sink (the manager owns its sink box).
struct SharedSink(Arc<brew_core::RecordingSink>);

impl EventSink for SharedSink {
    fn event(&self, ev: &Event) {
        self.0.event(ev);
    }
}

fn tier_counts(evs: &[Event]) -> (usize, usize, usize) {
    let p = evs
        .iter()
        .filter(|e| matches!(e, Event::Promoted { .. }))
        .count();
    let d = evs
        .iter()
        .filter(|e| matches!(e, Event::Demoted { .. }))
        .count();
    let r = evs
        .iter()
        .filter(|e| matches!(e, Event::Respecialized { .. }))
        .count();
    (p, d, r)
}

/// The end-to-end loop: misses heat a key until the policy promotes it
/// (specializing without any caller asking synchronously); starving it
/// cools it until the policy demotes it; and the hysteresis band plus
/// cooldown keep that from ever flapping — one promotion, at most one
/// demotion, over the whole schedule.
#[test]
fn misses_promote_starvation_demotes_and_nothing_flaps() {
    let (img, prog) = setup();
    let poly = prog.func("poly").unwrap();
    let sink = Arc::new(brew_core::RecordingSink::default());
    let mgr = SpecializationManager::builder()
        .tiering(cfg())
        .event_sink(Box::new(SharedSink(Arc::clone(&sink))))
        .build();
    let req = poly_req(6);
    let fp = req.fingerprint();

    // Hot phase: four misses per tick. Heat converges toward 8, crossing
    // the promote bar (3) on the second tick.
    let mut promoted_at = None;
    for round in 0..4 {
        for _ in 0..4 {
            let d = mgr.request(&img, poly, &req).unwrap();
            assert!(
                !d.is_specialized() || promoted_at.is_some(),
                "no variant may exist before the policy promotes"
            );
        }
        let s = mgr.tick(&img);
        assert_eq!(s.tick, round + 1);
        if s.promoted > 0 && promoted_at.is_none() {
            promoted_at = Some(s.tick);
        }
    }
    assert!(promoted_at.is_some(), "sustained misses must promote");
    assert!(mgr.is_resident(poly, fp), "promotion produced the variant");
    assert!(mgr.heat_of(poly, fp).unwrap() > 1.0);

    // The promoted variant actually dispatches (and correctly).
    let v = mgr.request(&img, poly, &req).unwrap();
    assert!(v.is_specialized());
    let out = Machine::new()
        .call(&img, v.entry(), &CallArgs::new().int(2).int(0))
        .unwrap();
    assert_eq!(out.ret_int, 64, "2^6 via the promoted variant");

    // Cold phase: no traffic at all. Heat halves every tick; once it
    // falls through the demote bar the variant is removed — exactly once.
    for _ in 0..12 {
        mgr.tick(&img);
    }
    assert!(!mgr.is_resident(poly, fp), "starved variant was demoted");

    let (p, d, _) = tier_counts(&sink.snapshot());
    assert_eq!(p, 1, "one promotion, no flapping");
    assert_eq!(d, 1, "one demotion, no flapping");

    // Metrics agree with the event stream.
    let json = mgr.metrics().snapshot_json();
    assert!(json.contains("\"brew_tier_promoted_total\":1"), "{json}");
    assert!(json.contains("\"brew_tier_demoted_total\":1"), "{json}");
}

/// Traffic oscillating strictly inside the hysteresis band moves nothing:
/// the band exists precisely so borderline keys do not thrash the cache.
#[test]
fn oscillation_inside_the_band_takes_no_action() {
    let (img, prog) = setup();
    let poly = prog.func("poly").unwrap();
    let sink = Arc::new(brew_core::RecordingSink::default());
    let mgr = SpecializationManager::builder()
        .tiering(cfg())
        .event_sink(Box::new(SharedSink(Arc::clone(&sink))))
        .build();
    let req = poly_req(5);

    // Alternating 1/0 misses per tick keeps heat in (0.5, 2.0) after the
    // first tick — always above nothing-to-demote, below promote (3).
    for round in 0..20 {
        if round % 2 == 0 {
            mgr.request(&img, poly, &req).unwrap();
        }
        let s = mgr.tick(&img);
        assert_eq!((s.promoted, s.demoted), (0, 0), "tick {}: {s:?}", s.tick);
    }
    let (p, d, _) = tier_counts(&sink.snapshot());
    assert_eq!((p, d), (0, 0));
    assert!(!mgr.is_resident(poly, req.fingerprint()));
}

/// A fingerprint inside its negative backoff window is not promoted no
/// matter how hot it runs — and the tiering probe must not spend the
/// denial window real requests decay on.
#[test]
fn promotion_respects_negative_backoff() {
    let (img, prog) = setup();
    let poly = prog.func("poly").unwrap();
    let mgr = SpecializationManager::builder()
        .tiering(cfg())
        .negative_policy(NegativePolicy {
            base_backoff: 50,
            attempt_cap: 10,
        })
        .build();
    // Doomed: the loop blows a four-instruction trace budget every time.
    let req = poly_req(64).max_trace_insts(4);

    // Pay the failure once; the key is now negatively cached with a
    // 50-denial backoff window.
    mgr.get_or_rewrite(&img, poly, &req).unwrap_err();
    assert_eq!(mgr.stats().misses, 1);

    // Run the key scorching hot: 48 denied requests across 8 ticks. Every
    // tick's promotion attempt must be suppressed by the backoff, and the
    // suppression probe must not consume denials — if the 8 ticks each
    // spent one, the window (50) would expire mid-loop and a promotion
    // would re-trace, bumping `misses`.
    for _ in 0..8 {
        for _ in 0..6 {
            let d = mgr.request(&img, poly, &req).unwrap();
            assert!(!d.is_specialized(), "denied keys dispatch the original");
        }
        let s = mgr.tick(&img);
        assert_eq!(s.promoted, 0, "backoff must veto promotion: {s:?}");
    }
    assert!(mgr.heat_of(poly, req.fingerprint()).unwrap() > cfg().promote_heat);
    assert_eq!(mgr.stats().misses, 1, "nothing re-traced");
    assert!(mgr.is_empty());

    // Exact accounting: the 48 requests spent 48 of the 50 denials and the
    // ticks spent none. Two more requests drain the window...
    mgr.request(&img, poly, &req).unwrap();
    mgr.request(&img, poly, &req).unwrap();
    assert_eq!(mgr.stats().misses, 1, "denials 49 and 50 still denied");
    // ...and exactly now the retry slot opens: the next synchronous call
    // re-traces (and fails afresh) instead of returning the memoized error.
    let err = mgr.get_or_rewrite(&img, poly, &req).unwrap_err();
    assert!(
        matches!(err, brew_core::RewriteError::TraceBudget),
        "{err:?}"
    );
    assert_eq!(mgr.stats().misses, 2, "the 51st consult was the retry");
}

/// Demotion only unpublishes: a caller holding the variant's entry from
/// before the demotion keeps executing valid code (the JIT segment is a
/// bump allocator — demoted bytes are never reused), and the retained
/// request lets the key come straight back when it reheats.
#[test]
fn demotion_races_in_flight_callers_safely_and_repromotes() {
    let (img, prog) = setup();
    let poly = prog.func("poly").unwrap();
    let mgr = SpecializationManager::builder().tiering(cfg()).build();
    let req = poly_req(4);
    let fp = req.fingerprint();

    // Synchronous insert (tiering never blocks the synchronous path).
    let v = mgr.get_or_rewrite(&img, poly, &req).unwrap();
    assert!(mgr.is_resident(poly, fp));

    // Cold from birth: the first tick that clears the cooldown demotes.
    while mgr.is_resident(poly, fp) {
        assert!(mgr.tick(&img).tick < 10, "demotion never happened");
    }

    // The in-flight caller still dispatches through its stale pointer.
    let out = Machine::new()
        .call(&img, v.entry, &CallArgs::new().int(3).int(0))
        .unwrap();
    assert_eq!(out.ret_int, 81, "demoted code stays executable");

    // Reheat the key: promotion replays the request retained at demotion
    // — no caller ever rebuilt the SpecRequest.
    let mut promoted = false;
    for _ in 0..6 {
        for _ in 0..4 {
            mgr.request(&img, poly, &req).unwrap();
        }
        if mgr.tick(&img).promoted > 0 {
            promoted = true;
            break;
        }
    }
    assert!(promoted, "retained request re-promotes");
    assert!(mgr.is_resident(poly, fp));
    let v2 = mgr.get_or_rewrite(&img, poly, &req).unwrap();
    assert!(!Arc::ptr_eq(&v, &v2), "fresh code at a fresh address");
}

/// Counter slots are read without synchronization and may wrap, reset, or
/// tear. Deltas clamp at zero, so even a slot that travels backwards by
/// nearly `u64::MAX` can never drive a heat score negative.
#[test]
fn counter_wrap_saturates_instead_of_corrupting_heat() {
    let (img, prog) = setup();
    let poly = prog.func("poly").unwrap();
    let mgr = SpecializationManager::builder().tiering(cfg()).build();
    let req = poly_req(3);
    let fp = req.fingerprint();
    mgr.get_or_rewrite(&img, poly, &req).unwrap();
    let (_, page) = mgr.build_dispatcher_counting(&img, poly, poly).unwrap();

    // Forge a slot just under wrap-around, sample it, then let it "wrap"
    // to a small value.
    img.write_u64(page.slot_addr(0), u64::MAX - 1).unwrap();
    mgr.tick(&img);
    let hot = mgr.heat_of(poly, fp).unwrap();
    assert!(hot > 0.0 && hot.is_finite());

    img.write_u64(page.slot_addr(0), 2).unwrap();
    for _ in 0..5 {
        mgr.tick(&img);
        let h = mgr.heat_of(poly, fp).unwrap();
        assert!(h >= 0.0 && h.is_finite(), "wrapped counter must clamp: {h}");
    }
    // And the backwards slot contributed zero, so heat strictly decayed.
    assert!(mgr.heat_of(poly, fp).unwrap() < hot);
}

/// Stub traffic (counter-page deltas) counts as heat even though it never
/// calls into the manager: a variant dispatched only through its stub
/// stays resident while an idle sibling decays out.
#[test]
fn stub_traffic_keeps_a_variant_resident() {
    let (img, prog) = setup();
    let poly = prog.func("poly").unwrap();
    let mgr = SpecializationManager::builder().tiering(cfg()).build();
    let hot = poly_req(3);
    let idle = poly_req(9);
    mgr.get_or_rewrite(&img, poly, &hot).unwrap();
    mgr.get_or_rewrite(&img, poly, &idle).unwrap();
    let (stub, _page) = mgr.build_dispatcher_counting(&img, poly, poly).unwrap();

    // Only the stub is called, and only with the hot fingerprint's value.
    let mut m = Machine::new();
    for round in 0..10 {
        for _ in 0..4 {
            let out = m.call(&img, stub, &CallArgs::new().int(2).int(3)).unwrap();
            assert_eq!(out.ret_int, 8);
        }
        mgr.tick(&img);
        if round >= 2 {
            assert!(
                mgr.is_resident(poly, hot.fingerprint()),
                "stub-only traffic must keep the hot variant resident"
            );
        }
    }
    assert!(
        !mgr.is_resident(poly, idle.fingerprint()),
        "the idle sibling decayed out"
    );
    assert!(mgr.heat_of(poly, hot.fingerprint()).unwrap() > cfg().promote_heat);
}

/// After invalidation, re-specialization is heat-gated: the hot stale
/// variant is rebuilt without any caller's help, the cold one just dies.
#[test]
fn respecialization_is_heat_gated() {
    let (img, prog) = setup();
    let dot = prog.func("dot").unwrap();
    let sink = Arc::new(brew_core::RecordingSink::default());
    let mgr = SpecializationManager::builder()
        // A cooldown far past the test horizon: ticks here only *sample*
        // heat — the cold resident must still be resident (not demoted)
        // when the invalidation sweep judges it.
        .tiering(TieringConfig {
            cooldown_ticks: 1000,
            ..cfg()
        })
        .event_sink(Box::new(SharedSink(Arc::clone(&sink))))
        .build();
    let block = |v0: u64, v1: u64| {
        let p = img.alloc_heap(16, 8);
        img.write_u64(p, v0).unwrap();
        img.write_u64(p + 8, v1).unwrap();
        p
    };
    let (a, b) = (block(3, 7), block(4, 9));
    let req_of = |p: u64| {
        SpecRequest::new()
            .ptr_to_known(p, 16)
            .unknown_int()
            .ret(RetKind::Int)
    };
    let (hot, cold) = (req_of(a), req_of(b));
    mgr.get_or_rewrite(&img, dot, &hot).unwrap();
    mgr.get_or_rewrite(&img, dot, &cold).unwrap();

    // Heat only the first key (cache hits feed heat for resident keys).
    for _ in 0..3 {
        for _ in 0..6 {
            mgr.get_or_rewrite(&img, dot, &hot).unwrap();
        }
        mgr.tick(&img);
    }
    assert!(mgr.heat_of(dot, hot.fingerprint()).unwrap() > 1.0);
    assert!(mgr.heat_of(dot, cold.fingerprint()).unwrap() <= 1.0);

    // Invalidate both folds; the sweep re-enqueues only the hot one.
    img.write_u64(a, 30).unwrap();
    img.write_u64(b, 40).unwrap();
    mgr.deferred_scope(&img, || {
        assert_eq!(mgr.apply_invalidation(Invalidation::Revalidate(&img)), 2);
    })
    .unwrap();
    assert!(
        mgr.is_resident(dot, hot.fingerprint()),
        "hot stale variant was re-specialized by the workers"
    );
    assert!(
        !mgr.is_resident(dot, cold.fingerprint()),
        "cold stale variant must die unrebuilt"
    );
    let (_, _, r) = tier_counts(&sink.snapshot());
    assert_eq!(r, 1, "exactly one Respecialized event");

    // The rebuilt variant folded the *new* data.
    let v = mgr.get_or_rewrite(&img, dot, &hot).unwrap();
    let out = Machine::new()
        .call(&img, v.entry, &CallArgs::new().ptr(a).int(10))
        .unwrap();
    assert_eq!(out.ret_int, 307);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Between samples heat only decays: with no input it is strictly
    /// non-increasing, never negative, and never spontaneously crosses
    /// the promote threshold — one burst cannot hold a key hot forever.
    #[test]
    fn heat_decays_monotonically_between_samples(
        burst in 1u64..60, quiet_ticks in 1usize..20,
    ) {
        let (img, prog) = setup();
        let poly = prog.func("poly").unwrap();
        let mgr = SpecializationManager::builder()
            .tiering(TieringConfig {
                // Unreachable bar: this property is about decay, not
                // promotion side effects.
                promote_heat: f64::MAX,
                demote_heat: 1.0,
                decay: 0.5,
                cooldown_ticks: 1,
                cycle_weight: 0.0,
            })
            .build();
        let req = poly_req(5);
        for _ in 0..burst {
            mgr.request(&img, poly, &req).unwrap();
        }
        mgr.tick(&img);
        let mut prev = mgr.heat_of(poly, req.fingerprint()).unwrap();
        prop_assert!((prev - burst as f64).abs() < 1e-9);
        for _ in 0..quiet_ticks {
            mgr.tick(&img);
            let h = mgr.heat_of(poly, req.fingerprint()).unwrap();
            prop_assert!(h >= 0.0);
            prop_assert!(h <= prev, "heat rose without input: {prev} -> {h}");
            prev = h;
        }
    }
}
