//! The memoizing specialization layer: variant cache, cost-aware
//! eviction, N-way guarded dispatch, and the event stream.

use brew_core::{Event, EventSink, RetKind, SpecRequest, SpecializationManager};
use brew_emu::{CallArgs, Machine};
use brew_image::Image;
use std::sync::{Arc, Mutex};

const PROG: &str = r#"
    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
"#;

fn setup() -> (Image, u64) {
    let img = Image::new();
    let prog = brew_minic::compile_into(PROG, &img).unwrap();
    (img, prog.func("poly").unwrap())
}

fn poly_req(n: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int()
        .known_int(n)
        .ret(RetKind::Int)
}

#[test]
fn repeated_requests_return_pointer_equal_cached_variant() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    let req = poly_req(9);

    let first = mgr.get_or_rewrite(&img, poly, &req).unwrap();
    let traced_after_miss = mgr.stats().traced_total;
    assert!(traced_after_miss > 0, "the miss actually traced");

    for _ in 0..10 {
        let again = mgr.get_or_rewrite(&img, poly, &req).unwrap();
        assert!(Arc::ptr_eq(&first, &again), "hits return the same variant");
    }
    // An equal request built independently is the same cache line too.
    let rebuilt = mgr.get_or_rewrite(&img, poly, &poly_req(9)).unwrap();
    assert!(Arc::ptr_eq(&first, &rebuilt));

    let st = mgr.stats();
    assert_eq!((st.hits, st.misses), (11, 1));
    assert_eq!(st.traced_total, traced_after_miss, "no re-trace on hits");
    assert_eq!(st.resident_bytes, first.code_len);
}

#[test]
fn distinct_requests_are_distinct_variants() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    let a = mgr.get_or_rewrite(&img, poly, &poly_req(3)).unwrap();
    let b = mgr.get_or_rewrite(&img, poly, &poly_req(4)).unwrap();
    assert!(!Arc::ptr_eq(&a, &b));
    assert_ne!(a.entry, b.entry);
    assert_eq!(mgr.stats().misses, 2);
    assert_eq!(mgr.len(), 2);

    // Both stay correct.
    let mut m = Machine::new();
    for (v, want) in [(&a, 8), (&b, 16)] {
        let out = m
            .call(&img, v.entry, &CallArgs::new().int(2).int(0))
            .unwrap();
        assert_eq!(out.ret_int, want);
    }
}

#[test]
fn eviction_under_tight_byte_budget_keeps_recent_variant() {
    let (img, poly) = setup();
    // Learn one variant's size, then budget for roughly two of them.
    let probe = SpecializationManager::new()
        .get_or_rewrite(&img, poly, &poly_req(2))
        .unwrap()
        .code_len;
    let mgr = SpecializationManager::builder()
        .budget(probe * 2 + probe / 2)
        .build();

    for n in 2..8 {
        mgr.get_or_rewrite(&img, poly, &poly_req(n)).unwrap();
    }
    let st = mgr.stats();
    assert!(st.evictions >= 3, "budget pressure evicted: {st:?}");
    assert!(mgr.len() < 6, "cache shrank below the insert count");
    assert!(
        st.resident_bytes <= probe * 2 + probe / 2,
        "resident {} exceeds budget",
        st.resident_bytes
    );

    // The most recent request survived: re-asking is a hit, not a rewrite.
    let misses_before = mgr.stats().misses;
    mgr.get_or_rewrite(&img, poly, &poly_req(7)).unwrap();
    assert_eq!(mgr.stats().misses, misses_before);
    // An evicted one rewrites again.
    mgr.get_or_rewrite(&img, poly, &poly_req(2)).unwrap();
    assert_eq!(mgr.stats().misses, misses_before + 1);
}

#[test]
fn dispatcher_over_three_variants_matches_original_incl_fallthrough() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    for n in [3i64, 5, 8] {
        mgr.get_or_rewrite(&img, poly, &poly_req(n)).unwrap();
    }
    assert_eq!(mgr.variants_of(poly).len(), 3);
    let dispatch = mgr.build_dispatcher(&img, poly, poly).unwrap();
    assert_eq!(mgr.stats().dispatchers_built, 1);

    // Differential: the stub is bit-identical to the original over guarded
    // values (each of the three variants) and fall-through values alike.
    let mut m = Machine::new();
    for x in [-3i64, -1, 0, 1, 2, 7, 1000] {
        for n in [0i64, 1, 2, 3, 4, 5, 6, 8, 9] {
            let via = m
                .call(&img, dispatch, &CallArgs::new().int(x).int(n))
                .unwrap()
                .ret_int;
            let orig = m
                .call(&img, poly, &CallArgs::new().int(x).int(n))
                .unwrap()
                .ret_int;
            assert_eq!(via, orig, "poly({x}, {n}) diverged through the dispatcher");
        }
    }

    // The hot path really runs specialized code: fewer cycles than the
    // original for a guarded n.
    let via = m
        .call(&img, dispatch, &CallArgs::new().int(2).int(8))
        .unwrap();
    let orig = m.call(&img, poly, &CallArgs::new().int(2).int(8)).unwrap();
    assert!(via.stats.cycles < orig.stats.cycles);
}

#[derive(Default)]
struct SharedSink(Arc<Mutex<Vec<Event>>>);

impl EventSink for SharedSink {
    fn event(&self, ev: &Event) {
        self.0.lock().unwrap().push(ev.clone());
    }
}

#[test]
fn event_sink_streams_miss_rewrite_hit_and_dispatch() {
    let (img, poly) = setup();
    let events = Arc::new(Mutex::new(Vec::new()));
    let mgr = SpecializationManager::builder()
        .event_sink(Box::new(SharedSink(Arc::clone(&events))))
        .build();

    let v = mgr.get_or_rewrite(&img, poly, &poly_req(6)).unwrap();
    mgr.get_or_rewrite(&img, poly, &poly_req(6)).unwrap();
    let dispatch = mgr.build_dispatcher(&img, poly, poly).unwrap();

    let evs = events.lock().unwrap();
    assert!(matches!(evs[0], Event::Miss { func } if func == poly));
    assert!(
        matches!(evs[1], Event::Rewritten { func, entry, .. } if func == poly && entry == v.entry)
    );
    assert!(matches!(evs[2], Event::Hit { entry, .. } if entry == v.entry));
    assert!(matches!(
        evs[3],
        Event::DispatcherBuilt { entry, variants: 1, .. } if entry == dispatch
    ));
    assert_eq!(evs.len(), 4);
}

#[test]
fn named_lookup_resolves_and_rejects() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::new();
    let v = mgr
        .get_or_rewrite_named(&img, "poly", &poly_req(4))
        .unwrap();
    assert_eq!(v.func, poly);
    let err = mgr
        .get_or_rewrite_named(&img, "nope", &poly_req(4))
        .unwrap_err();
    assert!(err.to_string().contains("nope"));
}
