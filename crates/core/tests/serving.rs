//! Serving-path torture: reader threads hammer the wait-free dispatch
//! lookup while writers publish, revalidate, invalidate, evict and clear
//! the very same keys. The assertions are the RCU contract made
//! executable:
//!
//! - **No stale-invalidated serving.** Once a writer has invalidated a
//!   variant and published its replacement (and the reader has observed
//!   that via a `SeqCst` generation counter), no subsequent lookup may
//!   return the old variant. The epoch index's `SeqCst` snapshot swap
//!   orders publication before the counter store, so a reader that sees
//!   generation `g` must be handed a variant that folded `>= g`.
//! - **No torn reads.** Every dispatched entry computes the exact
//!   function value — a torn snapshot pointer or a half-published entry
//!   would produce garbage, not an off-by-one.
//! - **No use-after-reclaim.** Readers hold `Arc<Variant>`s across
//!   evictions and `clear()`; the two-epoch limbo keeps retired
//!   snapshots alive until no reader can still be probing them, and the
//!   JIT bump allocator never reuses code addresses, so a variant fetched
//!   just before its eviction still dispatches correctly.
//!
//! The suite runs in tier-1 `cargo test`; CI additionally runs it in
//! release mode under the `serve` stage, where the tighter timings make
//! the races much more likely to land.

use brew_core::telemetry::metrics::{Ctr, Gge};
use brew_core::{
    Dispatch, Invalidation, PublishRejection, RetKind, SpecRequest, SpecializationManager,
};
use brew_emu::{CallArgs, Machine};
use brew_image::Image;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const PROG: &str = r#"
    int gen(int* g, int x) {
        return g[0] * 1000 + x;
    }
    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
"#;

const READERS: usize = 4;

fn setup() -> (Image, brew_minic::Compiled) {
    let img = Image::new();
    let prog = brew_minic::compile_into(PROG, &img).unwrap();
    (img, prog)
}

fn poly_req(n: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int()
        .known_int(n)
        .ret(RetKind::Int)
}

/// A per-thread emulator on a private 256 KiB slice of the shared stack
/// segment (same idiom as concurrent.rs) so threads never clobber each
/// other.
fn thread_machine(img: &Image, tid: usize) -> Machine<'_> {
    let mut m = Machine::new();
    m.set_stack_top(img.stack_top() - (tid as u64) * 0x4_0000);
    m
}

/// The headline linearizability check. A writer advances a generation
/// counter folded into the specialized code: write `g[0] = gen`, drop the
/// stale variant via `Revalidate`, republish, then store `published_g =
/// gen` with `SeqCst`. Readers load `published_g` *before* each request;
/// any specialized dispatch they then receive must bake a generation at
/// least that fresh — the old variant was removed from the read index
/// before the counter advanced, so serving it would mean the lookup read
/// a retired snapshot.
#[test]
fn readers_never_observe_a_stale_invalidated_variant() {
    let (img, prog) = setup();
    let genf = prog.func("gen").unwrap();
    let g = img.alloc_heap(8, 8);
    img.write_u64(g, 1).unwrap();
    let mgr = SpecializationManager::new();
    let req = SpecRequest::new()
        .ptr_to_known(g, 8)
        .unknown_int()
        .ret(RetKind::Int);

    const GENERATIONS: u64 = 40;
    let published_g = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let specialized_seen = AtomicUsize::new(0);

    // Publish generation 1 before any reader starts.
    mgr.get_or_rewrite(&img, genf, &req).unwrap();
    published_g.store(1, Ordering::SeqCst);

    std::thread::scope(|s| {
        for tid in 0..READERS {
            let (mgr, img, req) = (&mgr, &img, &req);
            let (published_g, done, specialized_seen) = (&published_g, &done, &specialized_seen);
            s.spawn(move || {
                let mut m = thread_machine(img, tid + 1);
                let x = 7 + tid as u64;
                while !done.load(Ordering::Acquire) {
                    let pg = published_g.load(Ordering::SeqCst);
                    let d = mgr.request(img, genf, req).unwrap();
                    if let Dispatch::Specialized(v) = d {
                        let out = m
                            .call(img, v.entry, &CallArgs::new().ptr(g).int(x as i64))
                            .unwrap();
                        // A torn pointer or half-published entry would not
                        // produce `baked * 1000 + x` for any integer baked.
                        assert_eq!(out.ret_int % 1000, x, "torn read: {}", out.ret_int);
                        let baked = (out.ret_int - x) / 1000;
                        assert!(
                            baked >= pg && baked <= GENERATIONS,
                            "stale variant served: baked generation {baked} after \
                             observing published_g={pg}"
                        );
                        specialized_seen.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // Don't start churning until the readers are actually serving —
        // in release the whole generation loop can otherwise finish
        // before the spawned threads are first scheduled.
        while specialized_seen.load(Ordering::Relaxed) < READERS {
            std::thread::yield_now();
        }

        // The writer: advance the folded data, drop the stale variant,
        // republish, then announce. `get_or_rewrite` may coalesce with a
        // reader-side synchronous re-trace — either way a variant folding
        // the current generation is resident when the store lands.
        let mut dropped = 0usize;
        for generation in 2..=GENERATIONS {
            img.write_u64(g, generation).unwrap();
            dropped += mgr.apply_invalidation(Invalidation::Revalidate(&img));
            mgr.get_or_rewrite(&img, genf, &req).unwrap();
            published_g.store(generation, Ordering::SeqCst);
        }
        done.store(true, Ordering::Release);
        assert!(dropped > 0, "revalidation never dropped anything");
    });

    assert!(
        specialized_seen.load(Ordering::Relaxed) > 0,
        "the torture never exercised the specialized hit path"
    );
    // The final published variant folds the final generation.
    let v = mgr.get_or_rewrite(&img, genf, &req).unwrap();
    let out = Machine::new()
        .call(&img, v.entry, &CallArgs::new().ptr(g).int(0))
        .unwrap();
    assert_eq!(out.ret_int, GENERATIONS * 1000);
}

/// Mixed churn: readers dispatch-and-call a skewed key mix while one
/// thread invalidates the whole function, another clears the cache, and
/// eviction pressure from a tiny budget rotates victims constantly. Every
/// single call must still compute the right value, and quiescence must
/// leave the epoch machinery drained (bounded limbo, all-but-last
/// retirees reclaimed).
#[test]
fn churn_torture_every_dispatch_computes_the_right_value() {
    let (img, prog) = setup();
    let poly = prog.func("poly").unwrap();
    let probe = SpecializationManager::new()
        .get_or_rewrite(&img, poly, &poly_req(2))
        .unwrap()
        .code_len;
    // ~3.5 variants of budget against 8 distinct keys: constant eviction.
    let mgr = SpecializationManager::builder()
        .budget(probe * 3 + probe / 2)
        .build();

    const ROUNDS: usize = 300;
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let readers: Vec<_> = (0..READERS)
            .map(|tid| {
                let (mgr, img) = (&mgr, &img);
                s.spawn(move || {
                    let mut m = thread_machine(img, tid + 1);
                    for i in 0..ROUNDS {
                        let n = 2 + ((tid * 7 + i * 13) % 8) as i64;
                        // `request` outside a deferred scope is the serving
                        // path: lock-free hit, synchronous single-flight miss.
                        let d = mgr.request(img, poly, &poly_req(n)).unwrap();
                        let out = m
                            .call(img, d.entry(), &CallArgs::new().int(2).int(n))
                            .unwrap();
                        assert_eq!(out.ret_int, 1u64 << n, "2^{n} via {d:?}");
                    }
                })
            })
            .collect();
        let (mgr, img, done) = (&mgr, &img, &done);
        s.spawn(move || {
            // Function-wide invalidation races the readers' republishing.
            while !done.load(Ordering::Acquire) {
                mgr.apply_invalidation(Invalidation::Func(poly));
                std::thread::yield_now();
            }
        });
        s.spawn(move || {
            let mut machine = thread_machine(img, READERS + 1);
            while !done.load(Ordering::Acquire) {
                mgr.clear();
                // Hold a variant across its own clear()/eviction: the Arc
                // and the never-reused JIT bytes must stay valid.
                if let Ok(v) = mgr.get_or_rewrite(img, poly, &poly_req(9)) {
                    mgr.clear();
                    let out = machine
                        .call(img, v.entry, &CallArgs::new().int(2).int(9))
                        .unwrap();
                    assert_eq!(out.ret_int, 512, "use-after-reclaim");
                }
                std::thread::yield_now();
            }
        });
        // Churners poll `done`, which flips once every reader has
        // finished its fixed workload — then the scope joins them.
        for h in readers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
    });

    // Quiescent correctness and epoch hygiene.
    let v = mgr.get_or_rewrite(&img, poly, &poly_req(5)).unwrap();
    let out = Machine::new()
        .call(&img, v.entry, &CallArgs::new().int(3).int(5))
        .unwrap();
    assert_eq!(out.ret_int, 243);
    let m = mgr.metrics();
    assert!(m.counter(Ctr::EpochPublished).get() > 0, "swaps happened");
    assert!(
        m.counter(Ctr::EpochReclaimed).get() > 0,
        "retired snapshots were reclaimed"
    );
    let limbo = m.gauge(Gge::EpochLimbo).get();
    assert!(
        (0..=16).contains(&limbo),
        "limbo must stay bounded by one generation per shard: {limbo}"
    );
    assert!(
        mgr.stats().resident_bytes <= mgr.budget_bytes(),
        "budget holds at quiescence"
    );
}

/// Warm restart under load: checkpoint the serving cache while readers
/// hammer it, then re-materialize the bytes into a fresh image + manager
/// whose publish gate must re-inspect every variant before it becomes
/// visible. Loaded variants serve as plain hits — zero re-traces.
#[test]
fn warm_restart_republishes_saved_variants_through_the_gate() {
    let (img, prog) = setup();
    let poly = prog.func("poly").unwrap();
    let mgr = SpecializationManager::new();
    const KEYS: i64 = 6;
    for n in 2..2 + KEYS {
        mgr.get_or_rewrite(&img, poly, &poly_req(n)).unwrap();
    }

    // Checkpoint repeatedly while readers serve: snapshot_all must see a
    // consistent published set, never a torn entry.
    let mut bytes = Vec::new();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let done = &done;
        for tid in 0..READERS {
            let (mgr, img) = (&mgr, &img);
            s.spawn(move || {
                let mut m = thread_machine(img, tid + 1);
                while !done.load(Ordering::Acquire) {
                    let n = 2 + (tid as i64 % KEYS);
                    let d = mgr.request(img, poly, &poly_req(n)).unwrap();
                    assert!(d.is_specialized());
                    let out = m
                        .call(img, d.entry(), &CallArgs::new().int(2).int(n))
                        .unwrap();
                    assert_eq!(out.ret_int, 1u64 << n);
                }
            });
        }
        for _ in 0..20 {
            bytes = mgr.save_variant_bytes(&img);
        }
        done.store(true, Ordering::Release);
    });

    // "Restart": identical program compiled into a fresh image gives the
    // same layout, so the persisted placements re-reserve cleanly.
    let (img2, prog2) = setup();
    let poly2 = prog2.func("poly").unwrap();
    assert_eq!(poly, poly2, "deterministic layout across restarts");
    let inspected = Arc::new(AtomicUsize::new(0));
    let gate_count = Arc::clone(&inspected);
    let mgr2 = SpecializationManager::builder()
        .publish_gate(Box::new(
            move |_img: &Image, _f: u64, _req: &SpecRequest, res: &brew_core::RewriteResult| {
                gate_count.fetch_add(1, Ordering::Relaxed);
                if res.code_len == 0 {
                    return Err(PublishRejection {
                        findings: 1,
                        summary: "empty variant".into(),
                    });
                }
                Ok(())
            },
        ))
        .build();

    let report = mgr2.load_variant_bytes(&img2, &bytes).unwrap();
    assert_eq!(report.published, KEYS as usize, "{:?}", report.rejected);
    assert!(report.rejected.is_empty());
    assert_eq!(
        inspected.load(Ordering::Relaxed),
        KEYS as usize,
        "the gate inspected every re-materialized variant"
    );
    assert_eq!(
        mgr2.metrics().counter(Ctr::PersistLoaded).get(),
        KEYS as u64
    );

    // Warm cache: every key is a hit, dispatches correctly, zero traces.
    let mut m = Machine::new();
    for n in 2..2 + KEYS {
        let d = mgr2.request(&img2, poly2, &poly_req(n)).unwrap();
        assert!(d.is_specialized(), "warm start must serve n={n} as a hit");
        let out = m
            .call(&img2, d.entry(), &CallArgs::new().int(2).int(n))
            .unwrap();
        assert_eq!(out.ret_int, 1u64 << n);
    }
    assert_eq!(mgr2.stats().misses, 0, "no re-trace after warm start");
}
