//! Property tests over the known-world state algebra (§III.F): the
//! migration compatibility relation, demotion and fingerprinting must obey
//! the laws the tracer's block-identity and loop-closure logic relies on.

use brew_core::value::{FlagsVal, Value};
use brew_core::world::{RegState, World, XmmState};
use brew_x86::cond::Flags;
use brew_x86::reg::{Gpr, Xmm};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => Just(Value::Unknown),
        3 => any::<u64>().prop_map(Value::Const),
        1 => (-64i64..0).prop_map(|o| Value::StackRel(o * 8)),
    ]
}

fn arb_regstate() -> impl Strategy<Value = RegState> {
    (arb_value(), any::<bool>()).prop_map(|(val, s)| RegState {
        val,
        // Unknown values are always synced by invariant.
        synced: s || matches!(val, Value::Unknown),
    })
}

fn arb_flags() -> impl Strategy<Value = FlagsVal> {
    prop_oneof![
        Just(FlagsVal::Unknown),
        (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(cf, zf, sf)| {
            FlagsVal::Known(Flags {
                cf,
                zf,
                sf,
                of: false,
                pf: false,
            })
        }),
    ]
}

prop_compose! {
    fn arb_world()(
        regs in proptest::collection::vec(arb_regstate(), 15),
        xmm0 in arb_value(),
        flags in arb_flags(),
        frame in proptest::collection::btree_map(-8i64..0, arb_value(), 0..4),
        gshadow in proptest::collection::btree_map(0u64..4, arb_value(), 0..3),
    ) -> World {
        let mut w = World::entry(0x40_0000);
        for (i, r) in regs.into_iter().enumerate() {
            let n = if i >= Gpr::Rsp.number() as usize { i + 1 } else { i };
            w.regs[n] = r;
        }
        w.set_xmm(Xmm::Xmm0, XmmState {
            lanes: [xmm0, Value::Unknown],
            synced: true,
        });
        w.flags = flags;
        w.frame = frame.into_iter().map(|(k, v)| (k * 8, v)).collect();
        w.gshadow = gshadow.into_iter().map(|(k, v)| (0x60_0000 + k * 8, v)).collect();
        w
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn migration_is_reflexive(w in arb_world()) {
        prop_assert!(w.can_migrate_to(&w));
        prop_assert!(w.migration_plan(&w).is_empty());
    }

    #[test]
    fn equal_worlds_have_equal_fingerprints(w in arb_world()) {
        prop_assert_eq!(w.fingerprint(), w.clone().fingerprint());
    }

    #[test]
    fn demotion_accepts_both_sides(a in arb_world(), b in arb_world()) {
        let d = a.demote_toward(&b);
        prop_assert!(
            a.can_migrate_to(&d),
            "source must migrate into its own demotion\n{a:#?}\n{d:#?}"
        );
    }

    #[test]
    fn fully_demoted_is_universal_target(w in arb_world()) {
        let f = w.fully_demoted();
        prop_assert!(w.can_migrate_to(&f));
        // And it is a fixpoint.
        prop_assert_eq!(f.fully_demoted(), f.clone());
        prop_assert!(f.can_migrate_to(&f));
    }

    #[test]
    fn migration_is_transitive_enough(a in arb_world()) {
        // a -> demote(a, entry) -> fully_demoted chains must hold.
        let entry = World::entry(0x40_0000);
        let d = a.demote_toward(&entry);
        let f = a.fully_demoted();
        if a.can_migrate_to(&d) && d.can_migrate_to(&f) {
            prop_assert!(a.can_migrate_to(&f));
        }
    }

    #[test]
    fn plan_only_materializes_known_unsynced(a in arb_world(), b in arb_world()) {
        if a.can_migrate_to(&b) {
            let plan = a.migration_plan(&b);
            for (r, v) in &plan.gprs {
                let st = a.reg(*r);
                prop_assert!(st.val.is_known() && !st.synced);
                prop_assert_eq!(*v, st.val);
            }
        }
    }

    #[test]
    fn knowing_more_never_helps_the_target(a in arb_world()) {
        // If the target knows a register the source doesn't, migration must
        // be rejected.
        let mut target = a.clone();
        let mut source = a.clone();
        source.set_reg(Gpr::Rcx, RegState { val: Value::Unknown, synced: true });
        target.set_reg(Gpr::Rcx, RegState { val: Value::Const(1), synced: false });
        prop_assert!(!source.can_migrate_to(&target));
    }
}
