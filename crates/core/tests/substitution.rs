//! White-box tests of the tracer's substitution machinery on hand-written
//! machine code — exercising instruction shapes the mini-C compiler never
//! emits (32-bit operations, shifts, cqo/idiv with mixed knowledge,
//! setcc folding) and asserting the *generated code's structure*, not just
//! its behavior.

use brew_core::{disasm_result, RetKind, Rewriter, SpecRequest};
use brew_emu::{CallArgs, Machine};
use brew_image::Image;
use brew_x86::encode::encode;
use brew_x86::prelude::*;

fn asm(img: &mut Image, insts: &[Inst]) -> u64 {
    let mut probe = Vec::new();
    for i in insts {
        encode(i, i.static_target().unwrap_or(0x40_0000), &mut probe).unwrap();
    }
    let addr = img.alloc_code(&vec![0u8; probe.len()]);
    let mut bytes = Vec::new();
    for i in insts {
        let at = addr + bytes.len() as u64;
        encode(i, at, &mut bytes).unwrap();
    }
    img.write_bytes(addr, &bytes).unwrap();
    addr
}

fn rewrite_with_param0_known(
    img: &mut Image,
    f: u64,
    value: i64,
    extra_unknown: usize,
) -> brew_core::RewriteResult {
    let mut req = SpecRequest::new().known_int(value).ret(RetKind::Int);
    for _ in 0..extra_unknown {
        req = req.unknown_int();
    }
    Rewriter::new(img).rewrite(f, &req).unwrap()
}

#[test]
fn w32_arithmetic_folds_with_zero_extension() {
    // f(edi known = -1): eax = edi; eax += 1 (32-bit wrap to 0); rax returned.
    let mut img = Image::new();
    let f = asm(
        &mut img,
        &[
            Inst::Mov {
                w: Width::W32,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rdi),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W32,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(1),
            },
            Inst::Ret,
        ],
    );
    let res = rewrite_with_param0_known(&mut img, f, -1, 0);
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new().int(-1)).unwrap();
    assert_eq!(out.ret_int, 0, "0xFFFFFFFF + 1 wraps at 32 bits");
    // Fully folded: just the materialized return + ret.
    assert!(out.stats.insts <= 2, "{:?}", disasm_result(&img, &res));
}

#[test]
fn w32_unknown_imm_substitution() {
    // eax(unknown) + (known 32-bit constant from rsi).
    let mut img = Image::new();
    let f = asm(
        &mut img,
        &[
            Inst::Mov {
                w: Width::W32,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rdi),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W32,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rsi),
            },
            Inst::Ret,
        ],
    );
    // 0x90000000 doesn't fit a sign-extended imm32 as u32 value... it does
    // as a 32-bit immediate (bit pattern). The substituted form must stay
    // correct.
    let req = SpecRequest::new()
        .unknown_int()
        .known_int(0x9000_0000u32 as i64)
        .ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let mut m = Machine::new();
    for a in [0i64, 1, 0x7000_0000] {
        let want = ((a as u32).wrapping_add(0x9000_0000)) as u64;
        let out = m
            .call(
                &img,
                res.entry,
                &CallArgs::new().int(a).int(0x9000_0000u32 as i64),
            )
            .unwrap();
        assert_eq!(out.ret_int, want, "a={a}");
    }
}

#[test]
fn shl_by_known_cl_becomes_immediate_shift() {
    // rax = rdi << cl where cl = rsi (known 3).
    let mut img = Image::new();
    let f = asm(
        &mut img,
        &[
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rdi),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Reg(Gpr::Rsi),
            },
            Inst::Shift {
                op: ShOp::Shl,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                count: ShiftCount::Cl,
            },
            Inst::Ret,
        ],
    );
    let req = SpecRequest::new()
        .unknown_int()
        .known_int(3)
        .ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let text = disasm_result(&img, &res).join("\n");
    assert!(
        text.contains("shlq rax, 3"),
        "CL folded to immediate:\n{text}"
    );
    let mut m = Machine::new();
    let out = m
        .call(&img, res.entry, &CallArgs::new().int(5).int(3))
        .unwrap();
    assert_eq!(out.ret_int, 40);
}

#[test]
fn fully_known_shift_elided() {
    let mut img = Image::new();
    let f = asm(
        &mut img,
        &[
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rdi),
            },
            Inst::Shift {
                op: ShOp::Shl,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                count: ShiftCount::Imm(4),
            },
            Inst::Ret,
        ],
    );
    let res = rewrite_with_param0_known(&mut img, f, 3, 0);
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new().int(3)).unwrap();
    assert_eq!(out.ret_int, 48);
    assert!(out.stats.insts <= 2);
}

#[test]
fn idiv_with_known_divisor_keeps_division() {
    // rax = rdi / rsi, rsi known = 7 (dividend unknown: idiv must stay).
    let mut img = Image::new();
    let f = asm(
        &mut img,
        &[
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rdi),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Reg(Gpr::Rsi),
            },
            Inst::Cqo { w: Width::W64 },
            Inst::Idiv {
                w: Width::W64,
                src: Operand::Reg(Gpr::Rcx),
            },
            Inst::Ret,
        ],
    );
    let req = SpecRequest::new()
        .unknown_int()
        .known_int(7)
        .ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let mut m = Machine::new();
    for a in [0i64, 100, -100, 6, 7] {
        let out = m
            .call(&img, res.entry, &CallArgs::new().int(a).int(7))
            .unwrap();
        assert_eq!(out.ret_int as i64, a / 7, "a={a}");
    }
    // The divisor register must have been materialized before idiv.
    let text = disasm_result(&img, &res).join("\n");
    assert!(text.contains("idiv"), "{text}");
    assert!(text.contains("rcx, 0x7"), "divisor materialized:\n{text}");
}

#[test]
fn setcc_with_known_flags_folds_to_constant() {
    let mut img = Image::new();
    let f = asm(
        &mut img,
        &[
            // cmp rdi, 10; setl al; movzx — rdi known 3 → result constant 1.
            Inst::Alu {
                op: AluOp::Cmp,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rdi),
                src: Operand::Imm(10),
            },
            Inst::Setcc {
                cond: Cond::L,
                dst: Operand::Reg(Gpr::Rax),
            },
            Inst::Movzx8 {
                w: Width::W64,
                dst: Gpr::Rax,
                src: Operand::Reg(Gpr::Rax),
            },
            Inst::Ret,
        ],
    );
    let res = rewrite_with_param0_known(&mut img, f, 3, 0);
    let text = disasm_result(&img, &res).join("\n");
    assert!(!text.contains("set"), "setcc folded away:\n{text}");
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new().int(3)).unwrap();
    assert_eq!(out.ret_int, 1);
}

#[test]
fn known_mem_operand_becomes_absolute() {
    // rax = *(rdi + 16) with rdi known and the pointee declared known.
    let mut img = Image::new();
    let data = img.alloc_data(32, 8);
    img.write_u64(data + 16, 4242).unwrap();
    let f = asm(
        &mut img,
        &[
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rdi, 16)),
            },
            Inst::Ret,
        ],
    );
    let req = SpecRequest::new().ptr_to_known(data, 32).ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    // The load folds entirely: the value 4242 is baked in.
    let text = disasm_result(&img, &res).join("\n");
    assert!(text.contains("0x1092"), "value 4242 baked in:\n{text}");
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new().ptr(data)).unwrap();
    assert_eq!(out.ret_int, 4242);
}

#[test]
fn unknown_base_known_index_folds_displacement() {
    // rax = *(rdi + rsi*8) with rsi known = 5: operand becomes [rdi + 40].
    let mut img = Image::new();
    let f = asm(
        &mut img,
        &[
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Mem(MemRef::base_index(Gpr::Rdi, Gpr::Rsi, 8, 0)),
            },
            Inst::Ret,
        ],
    );
    let req = SpecRequest::new()
        .unknown_int()
        .known_int(5)
        .ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let text = disasm_result(&img, &res).join("\n");
    assert!(
        text.contains("[rdi+0x28]"),
        "index folded into disp:\n{text}"
    );

    let p = img.alloc_heap(64, 8);
    img.write_u64(p + 40, 77).unwrap();
    let mut m = Machine::new();
    let out = m
        .call(&img, res.entry, &CallArgs::new().ptr(p).int(5))
        .unwrap();
    assert_eq!(out.ret_int, 77);
}

#[test]
fn known_base_unknown_index_keeps_index_only_form() {
    // rax = *(rdi + rsi*8) with rdi known: operand becomes [rsi*8 + base].
    let mut img = Image::new();
    let p = img.alloc_heap(64, 8);
    img.write_u64(p + 24, 99).unwrap();
    let f = asm(
        &mut img,
        &[
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Mem(MemRef::base_index(Gpr::Rdi, Gpr::Rsi, 8, 0)),
            },
            Inst::Ret,
        ],
    );
    let req = SpecRequest::new()
        .known_int(p as i64)
        .unknown_int()
        .ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let text = disasm_result(&img, &res).join("\n");
    assert!(
        text.contains("rsi*8"),
        "index preserved, base folded:\n{text}"
    );
    let mut m = Machine::new();
    let out = m
        .call(&img, res.entry, &CallArgs::new().ptr(p).int(3))
        .unwrap();
    assert_eq!(out.ret_int, 99);
}

#[test]
fn known_synced_param_register_is_used_directly() {
    // rax = rdi + rsi where rsi is a KNOWN parameter too large for imm32:
    // the architectural register already holds it (the caller passes it),
    // so no materialization is emitted — the register operand stays.
    let big = 0x1234_5678_9ABCi64;
    let mut img = Image::new();
    let f = asm(
        &mut img,
        &[
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rdi),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rsi),
            },
            Inst::Ret,
        ],
    );
    let req = SpecRequest::new()
        .unknown_int()
        .known_int(big)
        .ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let text = disasm_result(&img, &res).join("\n");
    assert!(!text.contains("movabs"), "synced register reused:\n{text}");
    let mut m = Machine::new();
    let out = m
        .call(&img, res.entry, &CallArgs::new().int(10).int(big))
        .unwrap();
    assert_eq!(out.ret_int as i64, 10 + big);
}

#[test]
fn imm64_requires_movabs_materialization() {
    // rax = rdi + rcx where rcx was *loaded* from known memory (so the
    // load is elided, rcx is known-but-unsynced) and the value does not
    // fit a sign-extended imm32: materialization must emit a movabs.
    let big = 0x1234_5678_9ABCu64;
    let mut img = Image::new();
    let data = img.alloc_data(8, 8);
    img.write_u64(data, big).unwrap();
    let f = asm(
        &mut img,
        &[
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rcx),
                src: Operand::Mem(MemRef::base(Gpr::Rdi)),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rdi),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rcx),
            },
            Inst::Ret,
        ],
    );
    let req = SpecRequest::new().ptr_to_known(data, 8).ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let text = disasm_result(&img, &res).join("\n");
    assert!(
        text.contains("movabs"),
        "large unsynced constant needs movabs:\n{text}"
    );
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new().ptr(data)).unwrap();
    assert_eq!(out.ret_int, data.wrapping_add(big));
}

#[test]
fn fp_constant_comes_from_literal_pool() {
    // xmm1 becomes a known-but-unsynced constant by computation (an elided
    // multiply of two known loads); using it then references the literal
    // pool as an absolute operand (the Figure-6 shape).
    let mut img = Image::new();
    let data = img.alloc_data(16, 8);
    img.write_f64(data, 2.0).unwrap();
    img.write_f64(data + 8, 1.25).unwrap();
    let f = asm(
        &mut img,
        &[
            // xmm1 = *rdi * *(rdi+8)  — fully known, fully elided
            Inst::MovSd {
                dst: Operand::Xmm(Xmm::Xmm1),
                src: Operand::Mem(MemRef::base(Gpr::Rdi)),
            },
            Inst::Sse {
                op: SseOp::Mulsd,
                dst: Xmm::Xmm1,
                src: Operand::Mem(MemRef::base_disp(Gpr::Rdi, 8)),
            },
            // xmm0 (unknown arg) * xmm1 (known unsynced 2.5) -> pool operand
            Inst::Sse {
                op: SseOp::Mulsd,
                dst: Xmm::Xmm0,
                src: Operand::Xmm(Xmm::Xmm1),
            },
            Inst::Ret,
        ],
    );
    let req = SpecRequest::new()
        .ptr_to_known(data, 16)
        .unknown_f64()
        .ret(RetKind::F64);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let text = disasm_result(&img, &res).join("\n");
    assert!(text.contains("mulsd xmm0, [0x6"), "pool operand:\n{text}");
    let mut m = Machine::new();
    let out = m
        .call(&img, res.entry, &CallArgs::new().ptr(data).f64(3.0))
        .unwrap();
    assert_eq!(out.ret_f64, 7.5);
}

#[test]
fn prologue_epilogue_of_inlined_callee_disappears() {
    // Outer calls a callee with full push-rbp prologue; after rewriting
    // with everything known, no push/pop remains.
    let mut img = Image::new();
    // callee: push rbp; mov rbp,rsp; mov rax, rdi; add rax, 5; pop rbp; ret
    let callee = asm(
        &mut img,
        &[
            Inst::Push {
                src: Operand::Reg(Gpr::Rbp),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rbp),
                src: Operand::Reg(Gpr::Rsp),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rdi),
            },
            Inst::Alu {
                op: AluOp::Add,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(5),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rsp),
                src: Operand::Reg(Gpr::Rbp),
            },
            Inst::Pop {
                dst: Operand::Reg(Gpr::Rbp),
            },
            Inst::Ret,
        ],
    );
    let outer = asm(&mut img, &[Inst::CallRel { target: callee }, Inst::Ret]);
    let res = rewrite_with_param0_known(&mut img, outer, 37, 0);
    let text = disasm_result(&img, &res).join("\n");
    assert!(!text.contains("push"), "inlined prologue removed:\n{text}");
    assert!(!text.contains("call"), "call inlined:\n{text}");
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new().int(37)).unwrap();
    assert_eq!(out.ret_int, 42);
}

#[test]
fn callee_saved_register_restored_after_pop_elision() {
    // The function saves rbx, sets it to a known constant, uses it, and
    // restores it. Pop elision leaves rbx known-unsynced; the ret must
    // materialize the *restored* (original-unknown) value — i.e. the pop
    // must not be elided into a wrong constant.
    let mut img = Image::new();
    let f = asm(
        &mut img,
        &[
            Inst::Push {
                src: Operand::Reg(Gpr::Rbx),
            }, // save (unknown)
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rbx),
                src: Operand::Imm(1000),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rbx),
            },
            Inst::Pop {
                dst: Operand::Reg(Gpr::Rbx),
            }, // restore
            Inst::Ret,
        ],
    );
    let req = SpecRequest::new().ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    // The emulator's debug harness asserts callee-saved preservation.
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new()).unwrap();
    assert_eq!(out.ret_int, 1000);
}

#[test]
fn recursion_with_known_argument_unrolls_completely() {
    // fib(n) with n known: recursive calls inline through the shadow stack
    // and the whole computation folds to a constant.
    let img = Image::new();
    brew_minic::compile_into(
        "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }",
        &img,
    )
    .unwrap();
    let req = SpecRequest::new().known_int(12).ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite_named("fib", &req).unwrap();
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new().int(12)).unwrap();
    assert_eq!(out.ret_int, 144);
    assert_eq!(out.stats.calls, 0, "all recursive calls inlined");
    assert_eq!(out.stats.branches, 0, "all conditions folded");
    assert!(res.stats.inlined_calls > 100, "fib(12) has many call sites");
    // The value computation folds away entirely; what remains is the
    // inlined frames' stack choreography (the paper's planned register
    // renaming would remove it too). Still far cheaper than the original.
    let fib = img.lookup("fib").unwrap();
    let orig = m.call(&img, fib, &CallArgs::new().int(12)).unwrap();
    assert!(
        out.stats.cycles * 2 < orig.stats.cycles,
        "rewritten {} vs original {}",
        out.stats.cycles,
        orig.stats.cycles
    );
}

#[test]
fn unbounded_recursion_inlining_fails_recoverably() {
    let img = Image::new();
    let prog = brew_minic::compile_into(
        "int down(int n) { if (n == 0) return 0; return down(n - 1); }",
        &img,
    )
    .unwrap();
    let f = prog.func("down").unwrap();
    // n unknown: the recursion depth is unbounded at trace time; the
    // branch forks and the recursive path keeps inlining until the depth
    // guard trips.
    let req = SpecRequest::new().unknown_int().ret(RetKind::Int);
    let err = Rewriter::new(&img).rewrite(f, &req).unwrap_err();
    assert!(
        matches!(
            err,
            brew_core::RewriteError::TraceFault { .. }
                | brew_core::RewriteError::TraceBudget
                | brew_core::RewriteError::BlockBudget
        ),
        "{err:?}"
    );
}

#[test]
fn rewrite_stats_display_is_informative() {
    let img = Image::new();
    brew_minic::compile_into("int f(int a) { return a + 1; }", &img).unwrap();
    let req = SpecRequest::new().unknown_int().ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite_named("f", &req).unwrap();
    let text = res.stats.to_string();
    assert!(text.contains("traced") && text.contains("bytes"), "{text}");
}
#[test]
fn fib_like_nested_frames_convert() {
    use brew_core::frame::compress_frames;
    // mimic two nested inlined frames
    let insts = vec![
        Inst::Push {
            src: Operand::Reg(Gpr::Rbp),
        },
        Inst::Alu {
            op: AluOp::Sub,
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rsp),
            src: Operand::Imm(0x10),
        },
        Inst::Push {
            src: Operand::Reg(Gpr::Rbp),
        },
        Inst::Alu {
            op: AluOp::Sub,
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rsp),
            src: Operand::Imm(0x10),
        },
        Inst::Lea {
            dst: Gpr::Rsp,
            src: MemRef::base_disp(Gpr::Rsp, 0x10),
        },
        Inst::Pop {
            dst: Operand::Reg(Gpr::Rbp),
        },
        Inst::Lea {
            dst: Gpr::Rsp,
            src: MemRef::base_disp(Gpr::Rsp, 0x10),
        },
        Inst::Pop {
            dst: Operand::Reg(Gpr::Rbp),
        },
    ];
    let mut b = brew_core::capture::CapturedBlock::pending(0);
    b.insts = insts
        .into_iter()
        .map(brew_core::capture::CapturedInst::plain)
        .collect();
    b.term = brew_core::capture::Terminator::Ret;
    b.traced = true;
    let mut blocks = vec![b];
    let n = compress_frames(&mut blocks);
    println!("converted: {n}");
    for ci in &blocks[0].insts {
        println!("{}", ci.inst);
    }
    assert!(n >= 2);
}
