//! The `verify_on_publish` policy: a publish gate inspects every finished
//! rewrite before it becomes visible, on both the synchronous and the
//! deferred path. A rejected variant is never published — it is denied,
//! negatively cached, counted, and dispatch falls back to the original.

use brew_core::telemetry::metrics::{Ctr, Hst};
use brew_core::{
    Dispatch, NegativePolicy, PublishRejection, RetKind, RewriteError, SpecRequest,
    SpecializationManager,
};
use brew_image::Image;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const PROG: &str = r#"
    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
"#;

fn setup() -> (Image, u64) {
    let img = Image::new();
    let prog = brew_minic::compile_into(PROG, &img).unwrap();
    let poly = prog.func("poly").unwrap();
    (img, poly)
}

fn poly_req(n: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int()
        .known_int(n)
        .ret(RetKind::Int)
}

#[test]
fn accepting_gate_publishes_and_counts() {
    let (img, poly) = setup();
    let seen = Arc::new(AtomicUsize::new(0));
    let seen2 = Arc::clone(&seen);
    let mgr = SpecializationManager::builder()
        .publish_gate(Box::new(
            move |_img: &Image, func: u64, _req: &SpecRequest, res: &brew_core::RewriteResult| {
                assert!(res.code_len > 0);
                assert!(func > 0);
                seen2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        ))
        .build();
    let v = mgr.get_or_rewrite(&img, poly, &poly_req(5)).unwrap();
    assert!(v.code_len > 0);
    assert_eq!(seen.load(Ordering::SeqCst), 1);
    // A cache hit must not re-run the gate.
    mgr.get_or_rewrite(&img, poly, &poly_req(5)).unwrap();
    assert_eq!(seen.load(Ordering::SeqCst), 1);
    let m = mgr.metrics();
    assert_eq!(m.counter(Ctr::VerifyPassed).get(), 1);
    assert_eq!(m.counter(Ctr::VerifyRejected).get(), 0);
    assert_eq!(m.histogram(Hst::VerifyNs).count(), 1);
}

#[test]
fn rejected_variant_is_never_published_and_denied_after() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::builder()
        .negative_policy(NegativePolicy {
            base_backoff: 1_000_000,
            attempt_cap: 10,
        })
        .publish_gate(Box::new(
            |_: &Image, _: u64, _: &SpecRequest, _: &brew_core::RewriteResult| {
                Err(PublishRejection {
                    findings: 3,
                    summary: "wild jump at 0x900000".into(),
                })
            },
        ))
        .build();
    let err = mgr.get_or_rewrite(&img, poly, &poly_req(5)).unwrap_err();
    match &err {
        RewriteError::VerifyRejected { findings, first } => {
            assert_eq!(*findings, 3);
            assert!(first.contains("wild jump"));
        }
        other => panic!("expected VerifyRejected, got {other:?}"),
    }
    assert!(mgr.is_empty(), "rejected variant must not be cached");
    assert_eq!(mgr.metrics().counter(Ctr::VerifyRejected).get(), 1);

    // The rejection is negatively cached: dispatch falls back to the
    // original without re-tracing (and without re-running the gate).
    let d = mgr.request(&img, poly, &poly_req(5)).unwrap();
    match d {
        Dispatch::Original { func, .. } => assert_eq!(func, poly),
        Dispatch::Specialized(_) => panic!("denied key must dispatch to the original"),
    }
    assert_eq!(mgr.stats().denied, 1);
    assert_eq!(mgr.stats().misses, 1, "no second trace for the denied key");
}

#[test]
fn gate_panic_is_contained() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::builder()
        .publish_gate(Box::new(
            |_: &Image,
             _: u64,
             _: &SpecRequest,
             _: &brew_core::RewriteResult|
             -> Result<(), PublishRejection> { panic!("verifier bug") },
        ))
        .build();
    let err = mgr.get_or_rewrite(&img, poly, &poly_req(5)).unwrap_err();
    assert!(matches!(err, RewriteError::Internal(ref s) if s.contains("verifier bug")));
    assert_eq!(mgr.stats().panics_contained, 1);
    assert!(mgr.is_empty());
}

#[test]
fn deferred_path_runs_the_gate() {
    let (img, poly) = setup();
    let mgr = SpecializationManager::builder()
        .publish_gate(Box::new(
            |_: &Image, _: u64, _: &SpecRequest, _: &brew_core::RewriteResult| {
                Err(PublishRejection {
                    findings: 1,
                    summary: "stack imbalance".into(),
                })
            },
        ))
        .build();
    mgr.run_deferred(&img, 2, || {
        let d = mgr.request(&img, poly, &poly_req(7)).unwrap();
        assert!(!d.is_specialized());
    })
    .unwrap();
    // The worker drained the job; the gate rejected it, so nothing was
    // published and the key is negatively cached.
    assert!(mgr.is_empty(), "rejected deferred variant must not publish");
    assert_eq!(mgr.stats().published, 0);
    assert_eq!(mgr.metrics().counter(Ctr::VerifyRejected).get(), 1);

    // Detaching the gate restores the default publish-everything policy.
    assert!(mgr.take_publish_gate().is_some());
    let mgr2 = SpecializationManager::new();
    mgr2.run_deferred(&img, 2, || {
        mgr2.request(&img, poly, &poly_req(7)).unwrap();
    })
    .unwrap();
    assert_eq!(mgr2.len(), 1);
}
