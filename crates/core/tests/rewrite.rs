//! End-to-end rewriter tests: compile mini-C, rewrite, and differentially
//! test original vs specialized code in the emulator.

use brew_core::{PassConfig, RetKind, Rewriter, SpecRequest};
use brew_emu::{CallArgs, Machine};
use brew_image::Image;
use brew_minic::compile_into;

/// The paper's Figure-4 stencil program.
const STENCIL_SRC: &str = r#"
    struct P { double f; int dx; int dy; };
    struct S { int ps; struct P p[5]; };
    struct S s5 = {5, {{-1.0, 0, 0}, {0.25, -1, 0}, {0.25, 1, 0},
                       {0.25, 0, -1}, {0.25, 0, 1}}};
    double apply(double* m, int xs, struct S* s) {
        double v = 0.0;
        for (int i = 0; i < s->ps; i++) {
            struct P* p = &s->p[i];
            v += p->f * m[p->dx + xs * p->dy];
        }
        return v;
    }
"#;

fn setup(src: &str) -> (Image, brew_minic::Compiled) {
    let img = Image::new();
    let prog = compile_into(src, &img).expect("compile");
    (img, prog)
}

#[test]
fn specialize_identity_params_unknown() {
    // No parameters known: the rewrite is a (cleaned-up) clone.
    let (img, prog) = setup("int add(int a, int b) { return a + b; }");
    let f = prog.func("add").unwrap();
    let req = SpecRequest::new()
        .unknown_int()
        .unknown_int()
        .ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let mut m = Machine::new();
    for (a, b) in [(1i64, 2i64), (-5, 5), (i64::MAX, 1), (0, 0)] {
        let orig = m.call(&img, f, &CallArgs::new().int(a).int(b)).unwrap();
        let spec = m
            .call(&img, res.entry, &CallArgs::new().int(a).int(b))
            .unwrap();
        assert_eq!(orig.ret_int, spec.ret_int, "add({a},{b})");
    }
}

#[test]
fn specialize_known_param_bakes_constant() {
    let (img, prog) = setup("int madd(int a, int b, int c) { return a * b + c; }");
    let f = prog.func("madd").unwrap();
    let req = SpecRequest::new()
        .unknown_int()
        .known_int(7)
        .unknown_int()
        .ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let mut m = Machine::new();
    for (a, c) in [(3i64, 4i64), (0, 0), (-2, 9)] {
        let spec = m
            .call(&img, res.entry, &CallArgs::new().int(a).int(7).int(c))
            .unwrap();
        assert_eq!(spec.ret_int as i64, a * 7 + c);
    }
    // Specialized code must be cheaper than the original.
    let a_orig = Machine::new()
        .call(&img, f, &CallArgs::new().int(3).int(7).int(1))
        .unwrap();
    let a_spec = Machine::new()
        .call(&img, res.entry, &CallArgs::new().int(3).int(7).int(1))
        .unwrap();
    assert!(
        a_spec.stats.cycles < a_orig.stats.cycles,
        "specialized {} vs original {}",
        a_spec.stats.cycles,
        a_orig.stats.cycles
    );
}

#[test]
fn constant_loop_fully_unrolls() {
    // sum(1..=n) with n known: the loop disappears entirely.
    let (img, prog) =
        setup("int sum_to(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }");
    let f = prog.func("sum_to").unwrap();
    let req = SpecRequest::new().known_int(42).ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new().int(42)).unwrap();
    assert_eq!(out.ret_int, 903);
    assert_eq!(out.stats.branches, 0, "no conditional branches survive");
    // In fact the whole body folds to `mov rax, 903; ret`-ish code.
    assert!(out.stats.insts < 10, "got {} instructions", out.stats.insts);
}

#[test]
fn unknown_loop_bound_keeps_loop() {
    let (img, prog) =
        setup("int sum_to(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }");
    let f = prog.func("sum_to").unwrap();
    let req = SpecRequest::new()
        .unknown_int()
        .ret(RetKind::Int)
        .default_opts(|o| o.max_variants = 4); // allow a little peeling, then close
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let mut m = Machine::new();
    for n in [0i64, 1, 5, 100, 1000] {
        let orig = m.call(&img, f, &CallArgs::new().int(n)).unwrap();
        let spec = m.call(&img, res.entry, &CallArgs::new().int(n)).unwrap();
        assert_eq!(orig.ret_int, spec.ret_int, "sum_to({n})");
    }
}

#[test]
fn the_paper_stencil_specialization() {
    let (img, prog) = setup(STENCIL_SRC);
    let apply = prog.func("apply").unwrap();
    let s5 = prog.global("s5").unwrap();
    let xs = 8i64;

    // Figure 5: xs known, stencil pointer known with known pointee.
    let req = SpecRequest::new()
        .unknown_int() // matrix pointer
        .known_int(xs)
        .ptr_to_known(s5, 8 + 5 * 24)
        .ret(RetKind::F64);
    let res = Rewriter::new(&img).rewrite(apply, &req).unwrap();

    // Fill a matrix and compare original vs specialized on every interior
    // point.
    let ys = 6i64;
    let mbase = img.alloc_heap((xs * ys * 8) as u64, 8);
    for y in 0..ys {
        for x in 0..xs {
            img.write_f64(
                mbase + ((y * xs + x) * 8) as u64,
                (y * 131 + x * 17) as f64 * 0.25,
            )
            .unwrap();
        }
    }
    let mut m = Machine::new();
    let mut orig_cycles = 0;
    let mut spec_cycles = 0;
    for y in 1..ys - 1 {
        for x in 1..xs - 1 {
            let center = mbase + ((y * xs + x) * 8) as u64;
            let args = CallArgs::new().ptr(center).int(xs).ptr(s5);
            let orig = m.call(&img, apply, &args).unwrap();
            let spec = m.call(&img, res.entry, &args).unwrap();
            assert_eq!(orig.ret_f64, spec.ret_f64, "at ({x},{y})");
            orig_cycles += orig.stats.cycles;
            spec_cycles += spec.stats.cycles;
        }
    }
    // The paper reports the specialized version at 44% of the generic
    // runtime (§V.A). Require at least a 1.8x model-cycle improvement.
    assert!(
        spec_cycles * 18 <= orig_cycles * 10,
        "specialized {spec_cycles} vs original {orig_cycles} cycles"
    );

    // Figure 6 structure: no loop, exactly 5 multiplies, coefficients
    // referenced at absolute data addresses.
    let mut m2 = Machine::new();
    let center = mbase + ((xs + 1) * 8) as u64;
    let out = m2
        .call(
            &img,
            res.entry,
            &CallArgs::new().ptr(center).int(xs).ptr(s5),
        )
        .unwrap();
    assert_eq!(out.stats.branches, 0, "loop fully unrolled");
    assert_eq!(out.stats.fp_ops, 10, "5 muls + 5 adds");
    assert_eq!(out.stats.calls, 0);
}

#[test]
fn stencil_sweep_differential() {
    // Whole-sweep rewrite with bounded unrolling (the §V.B configuration).
    let src = format!(
        "{STENCIL_SRC}
        void sweep(double* m1, double* m2, int xs, int ys) {{
            for (int y = 1; y < ys - 1; y++)
                for (int x = 1; x < xs - 1; x++)
                    m2[y * xs + x] = apply(&m1[y * xs + x], xs, &s5);
        }}"
    );
    let (img, prog) = setup(&src);
    let sweep = prog.func("sweep").unwrap();
    let s5 = prog.global("s5").unwrap();
    let (xs, ys) = (7i64, 6i64);

    let req = SpecRequest::new()
        .unknown_int() // m1
        .unknown_int() // m2
        .known_int(xs)
        .known_int(ys)
        .known_mem(s5..s5 + 8 + 5 * 24)
        .ret(RetKind::Void)
        // Avoid full unrolling of the sweep loops: force branches unknown
        // in sweep itself; apply (inlined) still specializes.
        .func(sweep, |o| {
            o.branch_unknown = true;
            o.max_variants = 4;
        });
    let res = Rewriter::new(&img).rewrite(sweep, &req).unwrap();

    let m1 = img.alloc_heap((xs * ys * 8) as u64, 8);
    let m2a = img.alloc_heap((xs * ys * 8) as u64, 8);
    let m2b = img.alloc_heap((xs * ys * 8) as u64, 8);
    for i in 0..xs * ys {
        img.write_f64(m1 + (i * 8) as u64, ((i * 37) % 19) as f64 * 0.5)
            .unwrap();
    }
    let mut m = Machine::new();
    let orig = m
        .call(
            &img,
            sweep,
            &CallArgs::new().ptr(m1).ptr(m2a).int(xs).int(ys),
        )
        .unwrap();
    let spec = m
        .call(
            &img,
            res.entry,
            &CallArgs::new().ptr(m1).ptr(m2b).int(xs).int(ys),
        )
        .unwrap();
    for i in 0..xs * ys {
        let a = img.read_f64(m2a + (i * 8) as u64).unwrap();
        let b = img.read_f64(m2b + (i * 8) as u64).unwrap();
        assert_eq!(a, b, "sweep output differs at {i}");
    }
    assert!(
        spec.stats.cycles < orig.stats.cycles,
        "sweep specialization should pay off: {} vs {}",
        spec.stats.cycles,
        orig.stats.cycles
    );
}

#[test]
fn fresh_unknown_prevents_unrolling() {
    let (img, prog) =
        setup("int sum_to(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }");
    let f = prog.func("sum_to").unwrap();
    let req = SpecRequest::new()
        .known_int(1000)
        .ret(RetKind::Int)
        .func(f, |o| o.fresh_unknown = true);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    // Despite n being known, the loop is not unrolled (§V.C brute force).
    assert!(
        res.code_len < 400,
        "code stays small: {} bytes",
        res.code_len
    );
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new().int(1000)).unwrap();
    assert_eq!(out.ret_int, 500500);
    assert!(out.stats.branches >= 1000, "loop still iterates");
}

#[test]
fn inlining_removes_call_overhead() {
    let src = r#"
        int helper(int x) { return x * 3; }
        int outer(int a) { return helper(a) + helper(a + 1); }
    "#;
    let (img, prog) = setup(src);
    let outer = prog.func("outer").unwrap();
    let req = SpecRequest::new().unknown_int().ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(outer, &req).unwrap();
    assert_eq!(res.stats.inlined_calls, 2);
    assert_eq!(res.stats.kept_calls, 0);

    let mut m = Machine::new();
    for a in [0i64, 1, -7, 1000] {
        let orig = m.call(&img, outer, &CallArgs::new().int(a)).unwrap();
        let spec = m.call(&img, res.entry, &CallArgs::new().int(a)).unwrap();
        assert_eq!(orig.ret_int, spec.ret_int);
        assert_eq!(spec.stats.calls, 0, "no calls left");
        assert!(spec.stats.cycles < orig.stats.cycles);
    }
}

#[test]
fn no_inline_keeps_call_with_compensation() {
    let src = r#"
        int helper(int x) { return x * 3; }
        int outer(int a) { return helper(a + 2); }
    "#;
    let (img, prog) = setup(src);
    let outer = prog.func("outer").unwrap();
    let helper = prog.func("helper").unwrap();
    let req = SpecRequest::new()
        .known_int(40)
        .ret(RetKind::Int)
        .func(helper, |o| o.inline = false);
    let res = Rewriter::new(&img).rewrite(outer, &req).unwrap();
    assert_eq!(res.stats.kept_calls, 1);
    let mut m = Machine::new();
    let out = m.call(&img, res.entry, &CallArgs::new().int(40)).unwrap();
    assert_eq!(out.ret_int, 126);
    assert_eq!(out.stats.calls, 1, "the helper call survives");
}

#[test]
fn indirect_call_devirtualized() {
    let src = r#"
        typedef int (*op_t)(int, int);
        int add(int a, int b) { return a + b; }
        int call_it(op_t f, int a, int b) { return f(a, b); }
    "#;
    let (img, prog) = setup(src);
    let call_it = prog.func("call_it").unwrap();
    let add = prog.func("add").unwrap();
    let req = SpecRequest::new()
        .known_int(add as i64)
        .unknown_int()
        .unknown_int()
        .ret(RetKind::Int);
    let res = Rewriter::new(&img).rewrite(call_it, &req).unwrap();
    let mut m = Machine::new();
    let out = m
        .call(&img, res.entry, &CallArgs::new().ptr(add).int(20).int(22))
        .unwrap();
    assert_eq!(out.ret_int, 42);
    assert_eq!(out.stats.calls, 0, "indirect call inlined away");
}

#[test]
fn failure_is_recoverable_bad_code() {
    let img = Image::new();
    // Garbage bytes as a "function".
    let junk = img.alloc_code(&[0x06, 0x07, 0x08]);
    let req = SpecRequest::new();
    let err = Rewriter::new(&img).rewrite(junk, &req).unwrap_err();
    assert!(matches!(err, brew_core::RewriteError::Undecodable { .. }));
}

#[test]
fn infinite_loop_rewrites_to_self_loop() {
    // `jmp self` closes on itself: the world is unchanged across the back
    // edge, so the rewrite is a 5-byte self-loop, not a failure.
    let img = Image::new();
    let mut bytes = Vec::new();
    let base = brew_image::layout::CODE_BASE;
    brew_x86::encode::encode(
        &brew_x86::inst::Inst::JmpRel { target: base },
        base,
        &mut bytes,
    )
    .unwrap();
    img.alloc_code(&bytes);
    let req = SpecRequest::new();
    let res = Rewriter::new(&img).rewrite(base, &req).unwrap();
    assert_eq!(res.code_len, 5);
    let mut m = Machine::new();
    m.fuel = 1000;
    assert!(matches!(
        m.call(&img, res.entry, &CallArgs::new()),
        Err(brew_emu::EmuError::OutOfFuel)
    ));
}

#[test]
fn failure_trace_budget() {
    // A known-bound loop of a billion iterations would fully unroll; the
    // trace budget turns that into a recoverable failure.
    let (img, prog) =
        setup("int sum_to(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }");
    let f = prog.func("sum_to").unwrap();
    let req = SpecRequest::new()
        .known_int(1_000_000_000)
        .ret(RetKind::Int)
        .max_trace_insts(10_000)
        .default_opts(|o| o.max_variants = u32::MAX); // never migrate: force unrolling
    let err = Rewriter::new(&img).rewrite(f, &req).unwrap_err();
    assert!(
        matches!(
            err,
            brew_core::RewriteError::TraceBudget | brew_core::RewriteError::BlockBudget
        ),
        "{err:?}"
    );
}

#[test]
fn doubles_known_fp_param() {
    let (img, prog) = setup("double scale(double x, double k) { return x * k + 1.0; }");
    let f = prog.func("scale").unwrap();
    let req = SpecRequest::new()
        .unknown_f64()
        .known_f64(2.5)
        .ret(RetKind::F64);
    let res = Rewriter::new(&img).rewrite(f, &req).unwrap();
    let mut m = Machine::new();
    for x in [0.0f64, 1.5, -3.25, 1e10] {
        let out = m
            .call(&img, res.entry, &CallArgs::new().f64(x).f64(2.5))
            .unwrap();
        assert_eq!(out.ret_f64, x * 2.5 + 1.0);
    }
}

#[test]
fn passes_off_still_correct() {
    let (img, prog) = setup(STENCIL_SRC);
    let apply = prog.func("apply").unwrap();
    let s5 = prog.global("s5").unwrap();
    let xs = 5i64;
    let req = SpecRequest::new()
        .unknown_int()
        .known_int(xs)
        .ptr_to_known(s5, 8 + 5 * 24)
        .ret(RetKind::F64);
    let res_none = Rewriter::new(&img)
        .rewrite(apply, &req.clone().passes(PassConfig::none()))
        .unwrap();
    let res_all = Rewriter::new(&img).rewrite(apply, &req).unwrap();

    let mbase = img.alloc_heap((xs * xs * 8) as u64, 8);
    for i in 0..xs * xs {
        img.write_f64(mbase + (i * 8) as u64, (i * i) as f64)
            .unwrap();
    }
    let center = mbase + ((xs + 2) * 8) as u64;
    let mut m = Machine::new();
    let args = CallArgs::new().ptr(center).int(xs).ptr(s5);
    let orig = m.call(&img, apply, &args).unwrap();
    let none = m.call(&img, res_none.entry, &args).unwrap();
    let all = m.call(&img, res_all.entry, &args).unwrap();
    assert_eq!(orig.ret_f64, none.ret_f64);
    assert_eq!(orig.ret_f64, all.ret_f64);
    // Passes strictly help (or at least don't hurt).
    assert!(all.stats.insts <= none.stats.insts);
}

#[test]
fn guard_dispatches() {
    let (img, prog) = setup("int dbl(int x) { return x + x; }");
    let f = prog.func("dbl").unwrap();
    let req = SpecRequest::new().known_int(21).ret(RetKind::Int);
    let mut rw = Rewriter::new(&img);
    let spec = rw.rewrite(f, &req).unwrap();
    let guard = rw.guard(0, 21, spec.entry, f).unwrap();

    let mut m = Machine::new();
    // Hot value: dispatches to the specialized variant.
    let hot = m.call(&img, guard, &CallArgs::new().int(21)).unwrap();
    assert_eq!(hot.ret_int, 42);
    // Cold value: falls back to the original, still correct.
    let cold = m.call(&img, guard, &CallArgs::new().int(5)).unwrap();
    assert_eq!(cold.ret_int, 10);
}

#[test]
#[allow(deprecated)]
fn deprecated_split_api_still_works() {
    // The pre-SpecRequest entry points remain as thin wrappers.
    use brew_core::{ArgValue, ParamSpec, RewriteConfig};
    let (img, prog) = setup("int madd(int a, int b, int c) { return a * b + c; }");
    let f = prog.func("madd").unwrap();
    let mut cfg = RewriteConfig::new();
    cfg.set_param(0, ParamSpec::Unknown)
        .set_param(1, ParamSpec::Known)
        .set_param(2, ParamSpec::Unknown)
        .set_ret(RetKind::Int);
    let res = Rewriter::new(&img)
        .rewrite_with_config(
            &cfg,
            f,
            &[ArgValue::Int(0), ArgValue::Int(7), ArgValue::Int(0)],
        )
        .unwrap();
    let mut m = Machine::new();
    let out = m
        .call(&img, res.entry, &CallArgs::new().int(3).int(7).int(5))
        .unwrap();
    assert_eq!(out.ret_int, 26);
}
