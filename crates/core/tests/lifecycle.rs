//! Variant lifecycle: negative caching of failed rewrites, staleness
//! detection over folded known memory, invalidation, and panic/poison
//! containment in the manager.

use brew_core::{
    Dispatch, Event, EventSink, Invalidation, NegativePolicy, RetKind, RewriteError, SpecRequest,
    SpecializationManager,
};
use brew_emu::{CallArgs, Machine};
use brew_image::Image;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PROG: &str = r#"
    int poly(int x, int n) {
        int r = 1;
        for (int i = 0; i < n; i++) r *= x;
        return r;
    }
    int divit(int* p) {
        return 1000 / p[0];
    }
    int dot(int* c, int x) {
        return c[0] * x + c[1];
    }
"#;

fn setup() -> (Image, brew_minic::Compiled) {
    let img = Image::new();
    let prog = brew_minic::compile_into(PROG, &img).unwrap();
    (img, prog)
}

fn poly_req(n: i64) -> SpecRequest {
    SpecRequest::new()
        .unknown_int()
        .known_int(n)
        .ret(RetKind::Int)
}

/// A request doomed to fail: the loop blows a four-instruction trace
/// budget every time.
fn doomed_req() -> SpecRequest {
    poly_req(64).max_trace_insts(4)
}

#[test]
fn negative_cache_denies_repeats_without_retracing() {
    let (img, prog) = setup();
    let poly = prog.func("poly").unwrap();
    // A backoff too large to elapse in this test: every repeat is denied.
    let mgr = SpecializationManager::builder()
        .negative_policy(NegativePolicy {
            base_backoff: 1_000_000,
            attempt_cap: 10,
        })
        .build();

    let req = doomed_req();
    let first = mgr.get_or_rewrite(&img, poly, &req);
    assert!(matches!(first, Err(RewriteError::TraceBudget)), "{first:?}");
    let st = mgr.stats();
    assert_eq!((st.misses, st.negative_entries), (1, 1));
    assert!(
        matches!(mgr.failure_of(poly, &req), Some(RewriteError::TraceBudget)),
        "the failure is memoized"
    );

    // Every repeat is answered from the negative cache: the error comes
    // back, but nothing is traced and no new miss is led.
    for _ in 0..100 {
        assert!(matches!(
            mgr.get_or_rewrite(&img, poly, &req),
            Err(RewriteError::TraceBudget)
        ));
    }
    let st = mgr.stats();
    assert_eq!(st.misses, 1, "one trace total, 100 denials: {st:?}");
    assert_eq!(st.denied, 100);

    // The non-blocking path degrades to the original entry instead of an
    // error — callers asked where to dispatch, and the answer is "the
    // original, same as when the rewrite first failed".
    match mgr.request(&img, poly, &req).unwrap() {
        Dispatch::Original { func, deferred } => {
            assert_eq!(func, poly);
            assert!(!deferred, "a denied request must not queue a job");
        }
        d => panic!("expected Original, got {d:?}"),
    }
    assert_eq!(mgr.stats().misses, 1);

    // A different (healthy) request for the same function is unaffected.
    let v = mgr.get_or_rewrite(&img, poly, &poly_req(3)).unwrap();
    let out = Machine::new()
        .call(&img, v.entry, &CallArgs::new().int(2).int(0))
        .unwrap();
    assert_eq!(out.ret_int, 8);

    // Denials are visible in the always-on metrics registry (100 from
    // the synchronous repeats, one more from `request`).
    let json = mgr.metrics().snapshot_json();
    assert!(json.contains("\"brew_negative_hits_total\":101"), "{json}");
    assert!(json.contains("\"brew_negative_entries\":1"), "{json}");
}

#[test]
fn backoff_retries_and_succeeds_once_the_failure_cause_is_removed() {
    let (img, prog) = setup();
    let divit = prog.func("divit").unwrap();
    let p = img.alloc_heap(8, 8);
    img.write_u64(p, 0).unwrap(); // division by known zero: trace faults
    let mgr = SpecializationManager::builder()
        .negative_policy(NegativePolicy {
            base_backoff: 2,
            attempt_cap: 10,
        })
        .build();
    // PTR_TO_KNOWN fingerprints the pointer, not the pointee — fixing the
    // data keeps the same cache key, which is exactly what lets a decayed
    // retry succeed where the original attempt failed.
    let req = SpecRequest::new().ptr_to_known(p, 8).ret(RetKind::Int);

    let first = mgr.get_or_rewrite(&img, divit, &req);
    assert!(
        matches!(first, Err(RewriteError::TraceFault { .. })),
        "{first:?}"
    );
    assert_eq!(mgr.stats().misses, 1);

    // Two denials (base backoff), then the window elapses and the retry
    // re-traces — and fails again, because the data is still bad.
    for _ in 0..2 {
        assert!(mgr.get_or_rewrite(&img, divit, &req).is_err());
    }
    assert_eq!(mgr.stats().misses, 1, "denials do not trace");
    assert!(mgr.get_or_rewrite(&img, divit, &req).is_err());
    assert_eq!(mgr.stats().misses, 2, "the elapsed backoff retried");

    // Remove the failure cause. The second failure doubled the window to
    // four denials; the retry after them succeeds and clears the entry.
    img.write_u64(p, 5).unwrap();
    for _ in 0..4 {
        assert!(mgr.get_or_rewrite(&img, divit, &req).is_err());
    }
    let v = mgr.get_or_rewrite(&img, divit, &req).unwrap();
    assert_eq!(mgr.stats().misses, 3);
    assert_eq!(mgr.stats().negative_entries, 0, "success forgets the key");
    assert!(mgr.failure_of(divit, &req).is_none());
    let out = Machine::new()
        .call(&img, v.entry, &CallArgs::new().ptr(p))
        .unwrap();
    assert_eq!(out.ret_int, 200);

    // And the now-healthy key is served from the positive cache.
    let again = mgr.get_or_rewrite(&img, divit, &req).unwrap();
    assert!(Arc::ptr_eq(&v, &again));
}

#[test]
fn revalidate_drops_exactly_the_stale_variant() {
    let (img, prog) = setup();
    let dot = prog.func("dot").unwrap();
    let poly = prog.func("poly").unwrap();
    let c = img.alloc_heap(16, 8);
    img.write_u64(c, 3).unwrap();
    img.write_u64(c + 8, 7).unwrap();
    let sink = Arc::new(brew_core::RecordingSink::default());
    let mgr = SpecializationManager::builder()
        .event_sink(Box::new(SharedSink(Arc::clone(&sink))))
        .build();
    let dot_req = SpecRequest::new()
        .ptr_to_known(c, 16)
        .unknown_int()
        .ret(RetKind::Int);

    let v1 = mgr.get_or_rewrite(&img, dot, &dot_req).unwrap();
    assert_eq!(
        v1.snapshot.byte_len(),
        16,
        "the rewrite recorded both folded loads: {:?}",
        v1.snapshot.ranges()
    );
    // A variant that folded no known memory rides along as a control.
    let vp = mgr.get_or_rewrite(&img, poly, &poly_req(3)).unwrap();
    assert!(vp.snapshot.is_empty());

    let mut m = Machine::new();
    let run = |m: &mut Machine, entry: u64| {
        m.call(&img, entry, &CallArgs::new().ptr(c).int(10))
            .unwrap()
            .ret_int
    };
    assert_eq!(run(&mut m, v1.entry), 37);

    // Mutate a folded byte. The fingerprint doesn't change (PTR_TO_KNOWN
    // hashes the pointer), so — by the paper's contract — the cache keeps
    // serving the now-stale constants baked into v1.
    img.write_u64(c, 5).unwrap();
    let stale = mgr.get_or_rewrite(&img, dot, &dot_req).unwrap();
    assert!(Arc::ptr_eq(&v1, &stale), "same key -> same cached variant");
    assert_eq!(run(&mut m, stale.entry), 37, "stale: still the old fold");

    // The Revalidate sweep re-hashes every snapshot and drops only the
    // mismatch. Drain the setup-phase events first so the assertions
    // below see exactly the sweep's output.
    sink.take();
    assert_eq!(mgr.apply_invalidation(Invalidation::Revalidate(&img)), 1);
    let st = mgr.stats();
    assert_eq!((st.stale, st.invalidated), (1, 1), "{st:?}");
    assert_eq!(mgr.len(), 1, "the empty-snapshot variant survived");
    let evs = sink.take();
    assert!(
        matches!(evs[0], Event::Stale { func, entry } if func == dot && entry == v1.entry),
        "{evs:?}"
    );
    assert!(
        matches!(evs[1], Event::Invalidated { func, .. } if func == dot),
        "{evs:?}"
    );

    // The next request re-specializes against current data and agrees
    // with the original function (differential check).
    let v2 = mgr.get_or_rewrite(&img, dot, &dot_req).unwrap();
    assert!(!Arc::ptr_eq(&v1, &v2));
    assert_eq!(run(&mut m, v2.entry), 57);
    assert_eq!(run(&mut m, dot), 57, "specialized == original");

    // A second revalidate finds nothing stale.
    assert_eq!(mgr.apply_invalidation(Invalidation::Revalidate(&img)), 0);
}

#[test]
fn invalidate_data_intersects_folded_ranges_precisely() {
    let (img, prog) = setup();
    let dot = prog.func("dot").unwrap();
    let a = img.alloc_heap(16, 8);
    let b = img.alloc_heap(16, 8);
    for (p, v0, v1) in [(a, 2u64, 5u64), (b, 4, 9)] {
        img.write_u64(p, v0).unwrap();
        img.write_u64(p + 8, v1).unwrap();
    }
    let mgr = SpecializationManager::new();
    let req_of = |p: u64| {
        SpecRequest::new()
            .ptr_to_known(p, 16)
            .unknown_int()
            .ret(RetKind::Int)
    };
    let va = mgr.get_or_rewrite(&img, dot, &req_of(a)).unwrap();
    let vb = mgr.get_or_rewrite(&img, dot, &req_of(b)).unwrap();
    assert_eq!(mgr.len(), 2);

    // A range that touches only block `a` drops only `a`'s variant —
    // no image access, no hashing, pure range intersection.
    assert_eq!(mgr.apply_invalidation(Invalidation::Data(a + 8..a + 9)), 1);
    assert_eq!(mgr.len(), 1);
    let still = mgr.get_or_rewrite(&img, dot, &req_of(b)).unwrap();
    assert!(Arc::ptr_eq(&vb, &still), "b's variant was untouched");

    // A range adjacent to (but not overlapping) `b`'s fold is a no-op.
    assert_eq!(
        mgr.apply_invalidation(Invalidation::Data(b + 16..b + 32)),
        0
    );

    // Re-specializing `a` after its data changed picks up fresh values.
    img.write_u64(a, 10).unwrap();
    let va2 = mgr.get_or_rewrite(&img, dot, &req_of(a)).unwrap();
    assert!(!Arc::ptr_eq(&va, &va2));
    let out = Machine::new()
        .call(&img, va2.entry, &CallArgs::new().ptr(a).int(3))
        .unwrap();
    assert_eq!(out.ret_int, 35);

    // invalidate(func) sweeps every variant of the function and any
    // negative entries it accumulated.
    mgr.get_or_rewrite(&img, prog.func("poly").unwrap(), &doomed_req())
        .unwrap_err();
    assert_eq!(mgr.apply_invalidation(Invalidation::Func(dot)), 2);
    assert_eq!(
        mgr.apply_invalidation(Invalidation::Func(prog.func("poly").unwrap())),
        0
    );
    assert_eq!(mgr.negative_len(), 0, "poly's negative entry was dropped");
    assert!(mgr.is_empty());
}

/// Forwards to a shared recording sink (the manager owns its sink box).
struct SharedSink(Arc<brew_core::RecordingSink>);

impl EventSink for SharedSink {
    fn event(&self, ev: &Event) {
        self.0.event(ev);
    }
}

/// A sink that panics on every `Published` event — simulating a buggy
/// observer plugged into the worker pool.
struct PanickingSink(AtomicU64);

impl EventSink for PanickingSink {
    fn event(&self, ev: &Event) {
        if matches!(ev, Event::Published { .. }) {
            self.0.fetch_add(1, Ordering::SeqCst);
            panic!("sink exploded on publish");
        }
    }
}

#[test]
fn panicking_sink_fails_jobs_not_the_worker_pool() {
    let (img, prog) = setup();
    let poly = prog.func("poly").unwrap();
    let mgr = SpecializationManager::builder()
        .event_sink(Box::new(PanickingSink(AtomicU64::new(0))))
        .build();

    // Without containment the first panic would unwind through
    // `std::thread::scope` and abort the whole batch (and this test).
    mgr.run_deferred(&img, 2, || {
        for n in 2..7 {
            let d = mgr.request(&img, poly, &poly_req(n)).unwrap();
            assert!(!d.is_specialized(), "first request answers original");
        }
    })
    .unwrap();

    let st = mgr.stats();
    assert_eq!(mgr.len(), 5, "every variant was still cached: {st:?}");
    assert!(
        st.panics_contained >= 1,
        "sink panics were contained and counted: {st:?}"
    );
    // The manager remains fully usable: sink swap, hits, new rewrites.
    assert!(mgr.take_sink().is_some());
    let v = mgr.get_or_rewrite(&img, poly, &poly_req(3)).unwrap();
    let out = Machine::new()
        .call(&img, v.entry, &CallArgs::new().int(2).int(0))
        .unwrap();
    assert_eq!(out.ret_int, 8);
    assert_eq!(mgr.stats().hits, 1, "served from cache after the storm");
}

#[test]
fn deferred_jobs_respect_the_negative_backoff() {
    let (img, prog) = setup();
    let poly = prog.func("poly").unwrap();
    let mgr = SpecializationManager::builder()
        .negative_policy(NegativePolicy {
            base_backoff: 1_000_000,
            attempt_cap: 10,
        })
        .build();
    let req = doomed_req();

    // First scope: the miss queues one job; the worker traces it, fails,
    // and memoizes the failure (run_deferred drains before returning).
    mgr.run_deferred(&img, 2, || {
        let d = mgr.request(&img, poly, &req).unwrap();
        assert!(matches!(d, Dispatch::Original { deferred: true, .. }));
    })
    .unwrap();
    let st = mgr.stats();
    assert_eq!((st.misses, st.negative_entries), (1, 1), "{st:?}");

    // Second scope: every request for the doomed key is denied up front —
    // no job is queued, no worker traces, nothing is published.
    mgr.run_deferred(&img, 2, || {
        for _ in 0..50 {
            let d = mgr.request(&img, poly, &req).unwrap();
            assert!(
                matches!(
                    d,
                    Dispatch::Original {
                        deferred: false,
                        ..
                    }
                ),
                "denied, not re-queued: {d:?}"
            );
        }
    })
    .unwrap();
    let st = mgr.stats();
    assert_eq!(st.misses, 1, "the backoff kept workers idle: {st:?}");
    assert_eq!(st.denied, 50);
    assert_eq!(st.published, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After any mutation of the known block and a revalidate, the served
    /// variant always agrees with the original function on current data.
    #[test]
    fn revalidate_never_leaves_a_stale_answer(
        c0 in 0u64..50, c1 in 0u64..50, x in 0i64..50,
        m0 in 0u64..50, m1 in 0u64..50,
    ) {
        let (img, prog) = setup();
        let dot = prog.func("dot").unwrap();
        let c = img.alloc_heap(16, 8);
        img.write_u64(c, c0).unwrap();
        img.write_u64(c + 8, c1).unwrap();
        let mgr = SpecializationManager::new();
        let req = SpecRequest::new()
            .ptr_to_known(c, 16)
            .unknown_int()
            .ret(RetKind::Int);
        mgr.get_or_rewrite(&img, dot, &req).unwrap();

        // Mutate (possibly to the same values: revalidate must then keep
        // the variant), sweep, and re-request.
        img.write_u64(c, m0).unwrap();
        img.write_u64(c + 8, m1).unwrap();
        let dropped = mgr.apply_invalidation(Invalidation::Revalidate(&img));
        let unchanged = (m0, m1) == (c0, c1);
        prop_assert_eq!(dropped, if unchanged { 0 } else { 1 });

        let v = mgr.get_or_rewrite(&img, dot, &req).unwrap();
        let mut m = Machine::new();
        let spec = m.call(&img, v.entry, &CallArgs::new().ptr(c).int(x)).unwrap().ret_int;
        let orig = m.call(&img, dot, &CallArgs::new().ptr(c).int(x)).unwrap().ret_int;
        prop_assert_eq!(spec, orig);
        prop_assert_eq!(spec, m0 * x as u64 + m1);
    }
}
