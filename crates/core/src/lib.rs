//! # brew-core — programmer-controlled binary rewriting at runtime
//!
//! The paper's contribution (Weidendorfer & Breitbart, IPPS 2016): a
//! minimal, low-level API that lets application or library code request a
//! *specialized* version of any compiled function at runtime.
//!
//! ```text
//! brew_initConf(rConf);                        SpecRequest::new()
//! brew_setpar(rConf, 2, BREW_KNOWN);           .known_int(7)
//! brew_setpar(rConf, 3, BREW_PTR_TO_KNOWN);    .ptr_to_known(s5, len)
//! brew_setmem(rConf, start, end, BREW_KNOWN);  .known_mem(start..end)
//! brew_rewrite(rConf, func, 0, xs, &s5);       rw.rewrite(func, &req)
//! ```
//!
//! (The literal `brew_*` spelling also keeps working via [`compat`].)
//!
//! The rewriter traces one emulated call of the function instruction by
//! instruction, maintaining a known/unknown flag for every value
//! ([`value::Value`]), inlining calls over a shadow stack, following known
//! conditional jumps (which unrolls constant loops), forking at unknown
//! ones with saved known-world states ([`world::World`]), bounding code
//! growth with per-address variant thresholds and world migration, running
//! optimization passes over the captured blocks, and finally laying out,
//! encoding and relocating the result into the image's JIT segment.
//!
//! Rewriting can always fail (§III.G) — every failure is a recoverable
//! [`RewriteError`], and the caller keeps using the original function.
//!
//! ```
//! use brew_core::{RetKind, Rewriter, SpecRequest};
//! use brew_image::Image;
//! use brew_emu::{CallArgs, Machine};
//!
//! let mut img = Image::new();
//! let prog = brew_minic::compile_into(
//!     "int madd(int a, int b, int c) { return a * b + c; }", &mut img).unwrap();
//! let f = prog.func("madd").unwrap();
//!
//! // Specialize for b == 7: bind a treatment *and* a value per parameter.
//! let req = SpecRequest::new()
//!     .unknown_int()
//!     .known_int(7)
//!     .unknown_int()
//!     .ret(RetKind::Int);
//! let spec = Rewriter::new(&mut img).rewrite(f, &req).unwrap();
//!
//! // Drop-in replacement: same signature, parameter 1 is now baked in.
//! let mut m = Machine::new();
//! let out = m.call(&mut img, spec.entry, &CallArgs::new().int(6).int(7).int(-2)).unwrap();
//! assert_eq!(out.ret_int as i64, 40);
//! ```
//!
//! For many specializations of the same code base, drive the rewriter
//! through [`manager::SpecializationManager`]: it memoizes variants by
//! request fingerprint, bounds cached code with cost-aware LRU eviction
//! and emits guarded multi-variant dispatch stubs.

#![warn(missing_docs)]

pub mod capture;
pub mod compat;
pub mod config;
pub mod emit;
pub mod error;
mod exec;
pub mod frame;
pub mod guard;
pub mod manager;
pub mod passes;
pub mod persist;
pub mod promote;
pub mod regalloc;
pub mod request;
pub mod snapshot;
pub mod telemetry;
pub mod tracer;
pub mod value;
pub mod world;

pub use capture::RewriteStats;
pub use config::{ArgValue, FuncOpts, ParamSpec, RetKind, RewriteConfig};
pub use error::RewriteError;
pub use guard::{
    make_guard, make_guard_chain, make_guard_chain_counting, make_guard_counting, CounterPage,
    GuardCase,
};
pub use manager::{
    CacheKey, CacheStats, DecayedThreshold, DeferredConfig, Dispatch, Event, EventSink,
    Invalidation, LoadReport, ManagerBuilder, NegativePolicy, PublishGate, PublishRejection,
    RecordingSink, SaveReport, SpecializationManager, TickSummary, TierAction, TieringConfig,
    TieringPolicy, Variant,
};
pub use passes::PassConfig;
pub use persist::{PersistError, PersistedVariant};
pub use request::SpecRequest;
pub use snapshot::KnownSnapshot;
pub use telemetry::{
    explain_report, validate_json, DispatchProfiler, FlightDump, FlightKind, FlightRecorder,
    JitSymbol, MetricsRegistry, SpanRecorder, SymbolKind, SymbolTable,
};

use brew_image::{Image, SegKind};
use brew_x86::prelude::*;
use std::time::Instant;
use world::{RegState, World, XmmState};

/// Result of a successful rewrite.
#[derive(Debug, Clone)]
pub struct RewriteResult {
    /// Entry address of the rewritten function (drop-in replacement).
    pub entry: u64,
    /// Emitted code size in bytes.
    pub code_len: usize,
    /// Rewrite statistics.
    pub stats: RewriteStats,
    /// The known-memory bytes this rewrite folded into constants, as a
    /// compact re-checkable snapshot — the basis for staleness detection
    /// and invalidation in the [`manager`].
    pub snapshot: KnownSnapshot,
}

/// The rewriter. Borrows the image: it reads original code and known data
/// from it and writes specialized code into its JIT segment.
pub struct Rewriter<'a> {
    img: &'a Image,
}

impl<'a> Rewriter<'a> {
    /// Wrap an image for rewriting.
    pub fn new(img: &'a Image) -> Self {
        Rewriter { img }
    }

    /// `brew_rewrite`: generate a specialized variant of the function at
    /// `func` as described by `req` — each parameter's treatment and trace
    /// value bound together, plus configuration and pass selection.
    pub fn rewrite(&mut self, func: u64, req: &SpecRequest) -> Result<RewriteResult, RewriteError> {
        self.rewrite_parts(&req.cfg, func, &req.args, &req.passes, None)
    }

    /// [`Rewriter::rewrite`] with a structured trace attached: the
    /// returned [`telemetry::SpanRecorder`] holds the span tree of the
    /// rewrite (phases, per-block traces, migration/inlining decisions,
    /// per-pass and per-emit-step timings), exportable as chrome://tracing
    /// JSON or rendered through [`telemetry::explain_report`].
    pub fn rewrite_with_trace(
        &mut self,
        func: u64,
        req: &SpecRequest,
    ) -> Result<(RewriteResult, telemetry::SpanRecorder), RewriteError> {
        let mut rec = telemetry::SpanRecorder::new();
        let res = self.rewrite_parts(&req.cfg, func, &req.args, &req.passes, Some(&mut rec))?;
        Ok((res, rec))
    }

    /// [`Rewriter::rewrite`] addressing the function by its image symbol.
    pub fn rewrite_named(
        &mut self,
        name: &str,
        req: &SpecRequest,
    ) -> Result<RewriteResult, RewriteError> {
        let func = self
            .img
            .lookup(name)
            .ok_or_else(|| RewriteError::BadConfig(format!("unknown symbol `{name}`")))?;
        self.rewrite(func, req)
    }

    /// Deprecated split-API entry point: a [`RewriteConfig`] plus a
    /// positional argument slice. Specs and values must line up
    /// one-to-one; prefer [`Rewriter::rewrite`] with a [`SpecRequest`],
    /// which makes drift unrepresentable.
    #[deprecated(
        since = "0.2.0",
        note = "build a SpecRequest and call `rewrite(func, &req)`"
    )]
    pub fn rewrite_with_config(
        &mut self,
        cfg: &RewriteConfig,
        func: u64,
        args: &[ArgValue],
    ) -> Result<RewriteResult, RewriteError> {
        let req = SpecRequest::from_config(cfg, args, &PassConfig::default())?;
        self.rewrite(func, &req)
    }

    /// Deprecated split-API variant of [`Rewriter::rewrite_named`].
    #[deprecated(
        since = "0.2.0",
        note = "build a SpecRequest and call `rewrite_named(name, &req)`"
    )]
    pub fn rewrite_named_with_config(
        &mut self,
        cfg: &RewriteConfig,
        name: &str,
        args: &[ArgValue],
    ) -> Result<RewriteResult, RewriteError> {
        let req = SpecRequest::from_config(cfg, args, &PassConfig::default())?;
        self.rewrite_named(name, &req)
    }

    /// Deprecated split-API entry point with an explicit pass selection.
    #[deprecated(
        since = "0.2.0",
        note = "build a SpecRequest with `.passes(pc)` and call `rewrite(func, &req)`"
    )]
    pub fn rewrite_with_passes(
        &mut self,
        cfg: &RewriteConfig,
        func: u64,
        args: &[ArgValue],
        pc: &PassConfig,
    ) -> Result<RewriteResult, RewriteError> {
        let req = SpecRequest::from_config(cfg, args, pc)?;
        self.rewrite(func, &req)
    }

    /// The rewrite pipeline proper, over validated parts. `rec` (optional)
    /// collects the span tree of the run.
    fn rewrite_parts(
        &mut self,
        cfg: &RewriteConfig,
        func: u64,
        args: &[ArgValue],
        pc: &PassConfig,
        mut rec: Option<&mut telemetry::SpanRecorder>,
    ) -> Result<RewriteResult, RewriteError> {
        if cfg.mem_access_hook.is_some()
            && (cfg.func_opts.values().any(|o| o.branch_unknown) || cfg.default_opts.branch_unknown)
        {
            return Err(RewriteError::BadConfig(
                "memory-access hooks cannot be combined with branch_unknown \
                 (handlers clobber flags the forced branches would read)"
                    .into(),
            ));
        }
        if cfg.params.len() > args.len() {
            return Err(RewriteError::BadConfig(format!(
                "{} parameter specs but only {} arguments",
                cfg.params.len(),
                args.len()
            )));
        }
        // Options keyed by an address outside any code are dead weight at
        // best and a misspelled function at worst — reject them.
        for (&addr, _) in cfg.func_opts.iter() {
            if !matches!(
                self.img.segment_of(addr),
                Some(SegKind::Code | SegKind::Jit)
            ) {
                return Err(RewriteError::BadConfig(format!(
                    "func_opts for {addr:#x}: not a code address{}",
                    self.img
                        .symbol_at(addr)
                        .map(|s| format!(" (symbol `{s}`)"))
                        .unwrap_or_default()
                )));
            }
        }

        // Known memory = config ranges + PTR_TO_KNOWN extents.
        let mut known_mem = cfg.known_mem.clone();
        for (i, a) in args.iter().enumerate() {
            if let Some(config::ParamSpec::PtrToKnown { len }) = cfg.params.get(i) {
                let ArgValue::Int(p) = a else {
                    return Err(RewriteError::BadConfig(format!(
                        "parameter {i} marked PTR_TO_KNOWN is not a pointer"
                    )));
                };
                known_mem.push(*p as u64..(*p as u64).saturating_add(*len));
            }
        }

        // Entry world: argument registers carry the known values.
        let world = entry_world(cfg, func, args)?;

        let t_trace = Instant::now();
        let span_trace = rec.as_ref().map(|r| r.now_ns());
        let mut tracer = tracer::Tracer::new(self.img, cfg, known_mem);
        tracer.recorder = rec.as_deref_mut();
        let mut entry_block = tracer.run(func, world)?;

        let mut blocks = std::mem::take(&mut tracer.blocks);
        let escaped = tracer.escaped;
        let mut stats = tracer.stats;
        let read_set = tracer.read_set.take();
        drop(tracer);
        stats.trace_ns = t_trace.elapsed().as_nanos() as u64;
        if let (Some(r), Some(t0)) = (rec.as_deref_mut(), span_trace) {
            r.complete(
                "trace",
                "phase",
                t0,
                vec![
                    ("blocks".into(), stats.blocks.to_string()),
                    ("guest_insts".into(), stats.traced.to_string()),
                    ("migrations".into(), stats.migrations.to_string()),
                ],
            );
        }

        // §III.D: inject the profiling call at function begin as a
        // synthetic block in front of the traced entry.
        if let Some(h) = cfg.entry_hook {
            let insts = exec::build_hook_sequence(h, exec::HookArg::Const(func))
                .into_iter()
                .map(capture::CapturedInst::plain)
                .collect();
            let mut b = capture::CapturedBlock::pending(0);
            b.insts = insts;
            b.term = capture::Terminator::Jmp(entry_block);
            b.traced = true;
            blocks.push(b);
            entry_block = capture::BlockId(blocks.len() - 1);
            stats.hooks_injected += 1;
            if let Some(r) = rec.as_deref_mut() {
                r.instant(
                    "entry-hook",
                    "decision",
                    vec![("func".into(), format!("{func:#x}"))],
                );
            }
        }

        let t_pass = Instant::now();
        let span_pass = rec.as_ref().map(|r| r.now_ns());
        stats.pass_removed =
            passes::run_passes_traced(&mut blocks, pc, escaped, rec.as_deref_mut());
        stats.pass_ns = t_pass.elapsed().as_nanos() as u64;
        if let (Some(r), Some(t0)) = (rec.as_deref_mut(), span_pass) {
            r.complete(
                "passes",
                "phase",
                t0,
                vec![("removed".into(), stats.pass_removed.to_string())],
            );
        }

        let t_emit = Instant::now();
        let span_emit = rec.as_ref().map(|r| r.now_ns());
        let (entry, code_len) = emit::layout_and_emit_traced(
            &blocks,
            entry_block,
            self.img,
            cfg.max_code_bytes,
            rec.as_deref_mut(),
        )?;
        stats.emit_ns = t_emit.elapsed().as_nanos() as u64;
        stats.code_bytes = code_len as u64;
        if let (Some(r), Some(t0)) = (rec, span_emit) {
            r.complete(
                "emit",
                "phase",
                t0,
                vec![
                    ("entry".into(), format!("{entry:#x}")),
                    ("bytes".into(), code_len.to_string()),
                ],
            );
        }
        Ok(RewriteResult {
            entry,
            code_len,
            stats,
            snapshot: read_set.snapshot(self.img),
        })
    }

    /// Build a guarded dispatch stub (§III.D): calls `specialized` when
    /// integer parameter `param` equals `expected`, else `original`.
    pub fn guard(
        &mut self,
        param: usize,
        expected: i64,
        specialized: u64,
        original: u64,
    ) -> Result<u64, RewriteError> {
        guard::make_guard(self.img, param, expected, specialized, original)
    }

    /// Build an N-way guarded dispatch chain (§III.D generalized): cases
    /// are tested in order, each a conjunction of integer-parameter
    /// compares guarding one variant; the chain falls through to
    /// `original`.
    pub fn guard_chain(&mut self, cases: &[GuardCase], original: u64) -> Result<u64, RewriteError> {
        guard::make_guard_chain(self.img, cases, original)
    }
}

/// Build the entry [`World`] from the configuration and trace arguments.
fn entry_world(cfg: &RewriteConfig, func: u64, args: &[ArgValue]) -> Result<World, RewriteError> {
    let mut w = World::entry(func);
    let mut int_idx = 0usize;
    let mut fp_idx = 0usize;
    for (i, a) in args.iter().enumerate() {
        let spec = cfg
            .params
            .get(i)
            .copied()
            .unwrap_or(config::ParamSpec::Unknown);
        let known = !matches!(spec, config::ParamSpec::Unknown);
        match a {
            ArgValue::Int(v) => {
                if int_idx >= Gpr::SYSV_ARGS.len() {
                    return Err(RewriteError::BadConfig(
                        "more than 6 integer arguments".into(),
                    ));
                }
                let reg = Gpr::SYSV_ARGS[int_idx];
                int_idx += 1;
                if known {
                    // The caller passes this argument too (same signature),
                    // and under the BREW_KNOWN contract it always equals the
                    // captured value — so the register is synced.
                    w.set_reg(
                        reg,
                        RegState {
                            val: value::Value::Const(*v as u64),
                            synced: true,
                        },
                    );
                }
            }
            ArgValue::F64(v) => {
                if fp_idx >= Xmm::SYSV_ARGS.len() {
                    return Err(RewriteError::BadConfig(
                        "more than 8 floating-point arguments".into(),
                    ));
                }
                let reg = Xmm::SYSV_ARGS[fp_idx];
                fp_idx += 1;
                if known {
                    w.set_xmm(
                        reg,
                        XmmState {
                            lanes: [value::Value::Const(v.to_bits()), value::Value::Unknown],
                            synced: true,
                        },
                    );
                }
            }
        }
    }
    Ok(w)
}

/// Disassemble a rewritten function for inspection (the Figure-6 listing of
/// the paper): `(address, text)` lines.
pub fn disasm_result(img: &Image, res: &RewriteResult) -> Vec<String> {
    let window = img.code_window(res.entry, res.code_len).unwrap_or_default();
    let n = res.code_len.min(window.len());
    let (insts, _) = decode_all(&window[..n], res.entry);
    insts
        .iter()
        .map(|(a, i)| format!("{a:#08x}: {i}"))
        .collect()
}
