//! Captured (rewritten) code: decoded instructions grouped in blocks with
//! explicit terminators, kept in this form through the optimization passes
//! until final layout and emission (§III.G: "Captured instructions are kept
//! in decoded form").

use brew_x86::cond::Cond;
use brew_x86::inst::Inst;

/// Index of a captured block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(pub usize);

/// How a captured block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional transfer to another captured block.
    Jmp(BlockId),
    /// Conditional transfer.
    Jcc {
        /// Branch condition.
        cond: Cond,
        /// Block on condition true.
        taken: BlockId,
        /// Block on condition false.
        fall: BlockId,
    },
    /// Return from the rewritten function.
    Ret,
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> {
        let (a, b) = match self {
            Terminator::Jmp(t) => (Some(*t), None),
            Terminator::Jcc { taken, fall, .. } => (Some(*taken), Some(*fall)),
            Terminator::Ret => (None, None),
        };
        a.into_iter().chain(b)
    }
}

/// One captured instruction with the frame-offset metadata the global
/// dead-store pass needs (rsp-relative operands in different blocks have
/// different RSP bases, so offsets are recorded in entry-RSP terms here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapturedInst {
    /// The rewritten instruction.
    pub inst: Inst,
    /// Entry-RSP-relative offset this instruction stores to, if it stores
    /// to a tracked frame slot.
    pub frame_store: Option<i64>,
    /// Entry-RSP-relative offset this instruction loads from, if it loads
    /// from a tracked frame slot.
    pub frame_load: Option<i64>,
}

impl CapturedInst {
    /// Plain instruction without frame metadata.
    pub fn plain(inst: Inst) -> Self {
        CapturedInst {
            inst,
            frame_store: None,
            frame_load: None,
        }
    }
}

/// A captured basic block.
#[derive(Debug, Clone)]
pub struct CapturedBlock {
    /// Guest address this block was traced from (0 for synthetic
    /// compensation blocks).
    pub guest_addr: u64,
    /// Body (terminator excluded).
    pub insts: Vec<CapturedInst>,
    /// Terminator.
    pub term: Terminator,
    /// Did the block's trace consume branch flags before writing any?
    /// Migration edges may only enter blocks where this is `false`.
    pub reads_flags_on_entry: bool,
    /// `true` once the block has been traced (blocks are created when
    /// enqueued).
    pub traced: bool,
    /// Some path enters this block via migration compensation with
    /// architecturally untrusted flags.
    pub entered_untrusted: bool,
}

impl CapturedBlock {
    /// Fresh (pending) block for `guest_addr`.
    pub fn pending(guest_addr: u64) -> Self {
        CapturedBlock {
            guest_addr,
            insts: Vec::new(),
            term: Terminator::Ret,
            reads_flags_on_entry: false,
            traced: false,
            entered_untrusted: false,
        }
    }
}

/// Statistics of one rewrite, reported in [`crate::RewriteResult`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Guest instructions visited while tracing (incl. re-traces).
    pub traced: u64,
    /// Instructions emitted into captured blocks (before passes).
    pub emitted: u64,
    /// Instructions whose effect was fully evaluated at rewrite time.
    pub elided: u64,
    /// Captured blocks (incl. compensation blocks).
    pub blocks: u64,
    /// World migrations performed.
    pub migrations: u64,
    /// Calls inlined.
    pub inlined_calls: u64,
    /// Calls kept (emitted) in the rewritten code.
    pub kept_calls: u64,
    /// Instructions removed by optimization passes.
    pub pass_removed: u64,
    /// Literal-pool bytes allocated.
    pub pool_bytes: u64,
    /// Final emitted code size in bytes.
    pub code_bytes: u64,
    /// Memory-access hook call sites injected.
    pub hooks_injected: u64,
    /// Wall-clock nanoseconds spent decoding and tracing the emulated call.
    pub trace_ns: u64,
    /// Wall-clock nanoseconds spent in the optimization passes.
    pub pass_ns: u64,
    /// Wall-clock nanoseconds spent on layout, encoding and relocation.
    pub emit_ns: u64,
}

impl RewriteStats {
    /// Total wall-clock nanoseconds across the instrumented phases.
    pub fn total_ns(&self) -> u64 {
        self.trace_ns + self.pass_ns + self.emit_ns
    }

    /// Dependency-free JSON object with every field plus the derived
    /// `total_ns` — all values are unsigned integers, so no escaping is
    /// needed. The output passes [`crate::telemetry::validate_json`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"traced\":{},\"emitted\":{},\"elided\":{},\"blocks\":{},\
             \"migrations\":{},\"inlined_calls\":{},\"kept_calls\":{},\
             \"pass_removed\":{},\"pool_bytes\":{},\"code_bytes\":{},\
             \"hooks_injected\":{},\"trace_ns\":{},\"pass_ns\":{},\
             \"emit_ns\":{},\"total_ns\":{}}}",
            self.traced,
            self.emitted,
            self.elided,
            self.blocks,
            self.migrations,
            self.inlined_calls,
            self.kept_calls,
            self.pass_removed,
            self.pool_bytes,
            self.code_bytes,
            self.hooks_injected,
            self.trace_ns,
            self.pass_ns,
            self.emit_ns,
            self.total_ns(),
        )
    }
}

impl std::fmt::Display for RewriteStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "traced {} guest insts -> emitted {} ({} evaluated away, {} removed by passes) \
             in {} blocks ({} migrations, {} inlined / {} kept calls), {} bytes \
             (+{} pool, {} hooks); {}us trace + {}us passes + {}us emit",
            self.traced,
            self.emitted,
            self.elided,
            self.pass_removed,
            self.blocks,
            self.migrations,
            self.inlined_calls,
            self.kept_calls,
            self.code_bytes,
            self.pool_bytes,
            self.hooks_injected,
            self.trace_ns / 1_000,
            self.pass_ns / 1_000,
            self.emit_ns / 1_000,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_json_is_valid_and_complete() {
        let s = RewriteStats {
            traced: 10,
            trace_ns: 3,
            pass_ns: 4,
            emit_ns: 5,
            ..Default::default()
        };
        let j = s.to_json();
        crate::telemetry::validate_json(&j).unwrap();
        assert!(j.contains("\"traced\":10"));
        assert!(j.contains("\"total_ns\":12"));
        assert!(j.contains("\"pool_bytes\":0"));
        assert!(j.contains("\"hooks_injected\":0"));
    }

    #[test]
    fn successors() {
        let t = Terminator::Jcc {
            cond: Cond::E,
            taken: BlockId(1),
            fall: BlockId(2),
        };
        let s: Vec<BlockId> = t.successors().collect();
        assert_eq!(s, vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret.successors().count(), 0);
        assert_eq!(Terminator::Jmp(BlockId(7)).successors().count(), 1);
    }
}
