//! Paper-spelling compatibility layer (Fig. 2/3 of the paper).
//!
//! The C prototype's API reads:
//!
//! ```c
//! Rewriter* r = brew_initConf();
//! brew_setpar(rConf, 2, BREW_KNOWN);
//! brew_setpar(rConf, 3, BREW_PTR_TO_KNOWN);
//! brew_setmem(rConf, s5, s5 + sizeof(*s5), BREW_KNOWN);
//! apply_s5 = brew_rewrite(rConf, apply, 0, xs, &s5);
//! ```
//!
//! This module keeps that spelling working verbatim against the
//! [`crate::SpecRequest`]-based core, for readers following the paper
//! side-by-side. Parameter indices are **1-based** as in the paper.
//! New code should use [`crate::SpecRequest`] directly.

#![allow(non_snake_case)]

use crate::config::{ArgValue, ParamSpec, RewriteConfig};
use crate::error::RewriteError;
use crate::passes::PassConfig;
use crate::request::SpecRequest;
use crate::{RewriteResult, Rewriter};
use brew_image::Image;

/// `BREW_UNKNOWN`: the parameter varies at runtime.
pub const BREW_UNKNOWN: ParamSpec = ParamSpec::Unknown;

/// `BREW_KNOWN`: the traced value is fixed for all future calls.
pub const BREW_KNOWN: ParamSpec = ParamSpec::Known;

/// `BREW_PTR_TO_KNOWN`: known pointer to `len` bytes of immutable known
/// data. The paper infers the extent from types; we take it explicitly.
pub fn BREW_PTR_TO_KNOWN(len: u64) -> ParamSpec {
    ParamSpec::PtrToKnown { len }
}

/// `brew_initConf`: a fresh rewriter configuration.
pub fn brew_initConf() -> RewriteConfig {
    RewriteConfig::new()
}

/// `brew_setpar`: mark parameter `par` (**1-based**, as in the paper's
/// `brew_setpar(rConf, 2, BREW_KNOWN)` for the second parameter) with a
/// treatment.
pub fn brew_setpar(conf: &mut RewriteConfig, par: usize, spec: ParamSpec) {
    assert!(par >= 1, "brew_setpar parameter indices are 1-based");
    conf.set_param(par - 1, spec);
}

/// `brew_setmem`: declare `[start, end)` known immutable memory.
pub fn brew_setmem(conf: &mut RewriteConfig, start: u64, end: u64) {
    conf.set_mem_known(start..end);
}

/// `brew_rewrite`: specialize `func` given the emulated-call arguments.
/// As in the paper, arguments beyond the configured specs are treated as
/// `BREW_UNKNOWN`.
pub fn brew_rewrite(
    img: &Image,
    conf: &RewriteConfig,
    func: u64,
    args: &[ArgValue],
) -> Result<RewriteResult, RewriteError> {
    let mut conf = conf.clone();
    if conf.params.len() < args.len() {
        conf.params.resize(args.len(), ParamSpec::Unknown);
    }
    let req = SpecRequest::from_config(&conf, args, &PassConfig::default())?;
    Rewriter::new(img).rewrite(func, &req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetKind;

    #[test]
    fn figure_2_spelling_works() {
        let img = Image::new();
        let prog =
            brew_minic::compile_into("int madd(int a, int b, int c) { return a * b + c; }", &img)
                .unwrap();
        let f = prog.func("madd").unwrap();

        let mut rConf = brew_initConf();
        brew_setpar(&mut rConf, 2, BREW_KNOWN);
        rConf.set_ret(RetKind::Int);
        let spec = brew_rewrite(
            &img,
            &rConf,
            f,
            &[ArgValue::Int(0), ArgValue::Int(7), ArgValue::Int(0)],
        )
        .unwrap();
        assert!(spec.code_len > 0);

        let mut m = brew_emu::Machine::new();
        let out = m
            .call(
                &img,
                spec.entry,
                &brew_emu::CallArgs::new().int(6).int(7).int(-2),
            )
            .unwrap();
        assert_eq!(out.ret_int as i64, 40);
    }

    #[test]
    fn one_based_indexing_matches_paper() {
        let mut conf = brew_initConf();
        brew_setpar(&mut conf, 2, BREW_KNOWN);
        assert_eq!(conf.params, vec![ParamSpec::Unknown, ParamSpec::Known]);
        brew_setpar(&mut conf, 3, BREW_PTR_TO_KNOWN(40));
        assert_eq!(conf.params[2], ParamSpec::PtrToKnown { len: 40 });
    }

    #[test]
    fn setmem_declares_range() {
        let mut conf = brew_initConf();
        brew_setmem(&mut conf, 0x1000, 0x1100);
        assert!(conf.addr_known(0x1000, 8));
    }
}
