//! Paper-spelling compatibility layer (Fig. 2/3 of the paper).
//!
//! The C prototype's API reads:
//!
//! ```c
//! Rewriter* r = brew_initConf();
//! brew_setpar(rConf, 2, BREW_KNOWN);
//! brew_setpar(rConf, 3, BREW_PTR_TO_KNOWN);
//! brew_setmem(rConf, s5, s5 + sizeof(*s5), BREW_KNOWN);
//! apply_s5 = brew_rewrite(rConf, apply, 0, xs, &s5);
//! ```
//!
//! This module keeps that spelling working verbatim against the
//! [`crate::SpecRequest`]-based core, for readers following the paper
//! side-by-side. Parameter indices are **1-based** as in the paper.
//! New code should use [`crate::SpecRequest`] directly.
//!
//! It is also home to the *manager* compatibility surface: the
//! `with_*`/`set_*` constructors and the split invalidation methods that
//! predate [`ManagerBuilder`](crate::manager::ManagerBuilder) and
//! [`Invalidation`]. They live on below as
//! `#[deprecated]` one-line delegations, so code written against earlier
//! releases keeps compiling (with a nudge) while new code gets exactly one
//! way to do each thing.

#![allow(non_snake_case)]

use crate::config::{ArgValue, ParamSpec, RewriteConfig};
use crate::error::RewriteError;
use crate::manager::{EventSink, Invalidation, NegativePolicy, PublishGate, SpecializationManager};
use crate::passes::PassConfig;
use crate::request::SpecRequest;
use crate::{RewriteResult, Rewriter};
use brew_image::Image;
use std::ops::Range;

/// The pre-[`ManagerBuilder`](crate::manager::ManagerBuilder) construction and mutation surface, each
/// method a deprecated delegation to its replacement. Kept in one impl
/// block here (not in `manager`) so the migration target is obvious from
/// the deprecation note and the old spelling is easy to delete wholesale.
impl SpecializationManager {
    /// Manager bounded by `budget_bytes` of cached code.
    #[deprecated(
        since = "0.2.0",
        note = "use `SpecializationManager::builder().budget(..).build()`"
    )]
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self::builder().budget(budget_bytes).build()
    }

    /// Manager bounded by `budget_bytes`, with `shards` cache shards.
    #[deprecated(
        since = "0.2.0",
        note = "use `SpecializationManager::builder().budget(..).shards(..).build()`"
    )]
    pub fn with_budget_and_shards(budget_bytes: usize, shards: usize) -> Self {
        Self::builder().budget(budget_bytes).shards(shards).build()
    }

    /// Replace the negative-cache policy, dropping existing entries.
    #[deprecated(
        since = "0.2.0",
        note = "use `SpecializationManager::builder().negative_policy(..)`"
    )]
    pub fn with_negative_policy(mut self, policy: NegativePolicy) -> Self {
        self.replace_negative_policy(policy);
        self
    }

    /// Attach an event sink (replacing any previous one).
    #[deprecated(since = "0.2.0", note = "use `ManagerBuilder::event_sink`")]
    pub fn set_sink(&self, sink: Box<dyn EventSink>) {
        self.install_sink(sink);
    }

    /// Enable `verify_on_publish` with `gate` (replacing any previous
    /// gate).
    #[deprecated(since = "0.2.0", note = "use `ManagerBuilder::publish_gate`")]
    pub fn set_publish_gate(&self, gate: Box<dyn PublishGate>) {
        self.install_gate(gate);
    }

    /// Drop every cached variant of `func`; returns how many were
    /// dropped.
    #[deprecated(
        since = "0.2.0",
        note = "use `apply_invalidation(Invalidation::Func(func))`"
    )]
    pub fn invalidate(&self, func: u64) -> usize {
        self.apply_invalidation(Invalidation::Func(func))
    }

    /// Drop every cached variant whose folded ranges overlap `range`;
    /// returns how many were dropped.
    #[deprecated(
        since = "0.2.0",
        note = "use `apply_invalidation(Invalidation::Data(range))`"
    )]
    pub fn invalidate_data(&self, range: Range<u64>) -> usize {
        self.apply_invalidation(Invalidation::Data(range))
    }

    /// Re-hash every variant's snapshot against `img` and drop the stale
    /// ones; returns how many were dropped.
    #[deprecated(
        since = "0.2.0",
        note = "use `apply_invalidation(Invalidation::Revalidate(img))`"
    )]
    pub fn revalidate(&self, img: &Image) -> usize {
        self.apply_invalidation(Invalidation::Revalidate(img))
    }
}

/// `BREW_UNKNOWN`: the parameter varies at runtime.
pub const BREW_UNKNOWN: ParamSpec = ParamSpec::Unknown;

/// `BREW_KNOWN`: the traced value is fixed for all future calls.
pub const BREW_KNOWN: ParamSpec = ParamSpec::Known;

/// `BREW_PTR_TO_KNOWN`: known pointer to `len` bytes of immutable known
/// data. The paper infers the extent from types; we take it explicitly.
pub fn BREW_PTR_TO_KNOWN(len: u64) -> ParamSpec {
    ParamSpec::PtrToKnown { len }
}

/// `brew_initConf`: a fresh rewriter configuration.
pub fn brew_initConf() -> RewriteConfig {
    RewriteConfig::new()
}

/// `brew_setpar`: mark parameter `par` (**1-based**, as in the paper's
/// `brew_setpar(rConf, 2, BREW_KNOWN)` for the second parameter) with a
/// treatment.
pub fn brew_setpar(conf: &mut RewriteConfig, par: usize, spec: ParamSpec) {
    assert!(par >= 1, "brew_setpar parameter indices are 1-based");
    conf.set_param(par - 1, spec);
}

/// `brew_setmem`: declare `[start, end)` known immutable memory.
pub fn brew_setmem(conf: &mut RewriteConfig, start: u64, end: u64) {
    conf.set_mem_known(start..end);
}

/// `brew_rewrite`: specialize `func` given the emulated-call arguments.
/// As in the paper, arguments beyond the configured specs are treated as
/// `BREW_UNKNOWN`.
pub fn brew_rewrite(
    img: &Image,
    conf: &RewriteConfig,
    func: u64,
    args: &[ArgValue],
) -> Result<RewriteResult, RewriteError> {
    let mut conf = conf.clone();
    if conf.params.len() < args.len() {
        conf.params.resize(args.len(), ParamSpec::Unknown);
    }
    let req = SpecRequest::from_config(&conf, args, &PassConfig::default())?;
    Rewriter::new(img).rewrite(func, &req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetKind;

    #[test]
    fn figure_2_spelling_works() {
        let img = Image::new();
        let prog =
            brew_minic::compile_into("int madd(int a, int b, int c) { return a * b + c; }", &img)
                .unwrap();
        let f = prog.func("madd").unwrap();

        let mut rConf = brew_initConf();
        brew_setpar(&mut rConf, 2, BREW_KNOWN);
        rConf.set_ret(RetKind::Int);
        let spec = brew_rewrite(
            &img,
            &rConf,
            f,
            &[ArgValue::Int(0), ArgValue::Int(7), ArgValue::Int(0)],
        )
        .unwrap();
        assert!(spec.code_len > 0);

        let mut m = brew_emu::Machine::new();
        let out = m
            .call(
                &img,
                spec.entry,
                &brew_emu::CallArgs::new().int(6).int(7).int(-2),
            )
            .unwrap();
        assert_eq!(out.ret_int as i64, 40);
    }

    #[test]
    fn one_based_indexing_matches_paper() {
        let mut conf = brew_initConf();
        brew_setpar(&mut conf, 2, BREW_KNOWN);
        assert_eq!(conf.params, vec![ParamSpec::Unknown, ParamSpec::Known]);
        brew_setpar(&mut conf, 3, BREW_PTR_TO_KNOWN(40));
        assert_eq!(conf.params[2], ParamSpec::PtrToKnown { len: 40 });
    }

    #[test]
    fn setmem_declares_range() {
        let mut conf = brew_initConf();
        brew_setmem(&mut conf, 0x1000, 0x1100);
        assert!(conf.addr_known(0x1000, 8));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_manager_shims_delegate() {
        use crate::manager::RecordingSink;

        let m = SpecializationManager::with_budget_and_shards(4096, 2);
        assert_eq!(m.budget_bytes(), 4096);
        let m = m.with_negative_policy(NegativePolicy {
            base_backoff: 1,
            attempt_cap: 3,
        });

        m.set_sink(Box::new(RecordingSink::default()));
        assert!(m.take_sink().is_some());
        m.set_publish_gate(Box::new(
            |_: &Image, _: u64, _: &SpecRequest, _: &RewriteResult| Ok(()),
        ));
        assert!(m.take_publish_gate().is_some());

        // The split invalidation methods reach the unified entry point.
        assert_eq!(m.invalidate(0x1234), 0);
        assert_eq!(m.invalidate_data(0..16), 0);
        assert_eq!(m.revalidate(&Image::new()), 0);

        assert_eq!(
            SpecializationManager::with_budget(1 << 20).budget_bytes(),
            1 << 20
        );
    }
}
