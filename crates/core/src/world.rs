//! The known-world state (§III.F).
//!
//! *"The correctness of our tracing strategy crucially depends on the
//! known-state of values. [...] we need to add the facility to save and
//! restore the state of all known-ness as well as the values themselves if
//! known. We call this the known-world state."*
//!
//! A [`World`] captures everything the tracer knows at a program point:
//! abstract register values (plus whether the *architectural* register
//! currently holds that value — the `synced` bit that drives materialization
//!/ compensation code), abstract flags, the shadow stack frame, the shadow
//! of emitted global stores, and the inline call stack. Block identity is
//! `(guest address, World)`; migration compares and demotes worlds.

use crate::value::{FlagsVal, Value};
use brew_x86::reg::{Gpr, Xmm};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Abstract state of one general-purpose register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegState {
    /// Abstract value.
    pub val: Value,
    /// Does the architectural register hold `val` at runtime? Elided
    /// instructions leave this `false`; materialization sets it. `Unknown`
    /// values are always synced (the register *is* the unknown value).
    pub synced: bool,
}

impl RegState {
    /// An unknown (and therefore trivially synced) register.
    pub const UNKNOWN: RegState = RegState {
        val: Value::Unknown,
        synced: true,
    };
}

/// Abstract state of one SSE register (two 64-bit lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XmmState {
    /// Lane values (`[low, high]`); constants are raw f64 bit patterns.
    pub lanes: [Value; 2],
    /// Architectural-sync bit for the whole register.
    pub synced: bool,
}

impl XmmState {
    /// An unknown (synced) SSE register.
    pub const UNKNOWN: XmmState = XmmState {
        lanes: [Value::Unknown; 2],
        synced: true,
    };
}

/// One inlined activation (§III.E: "we maintain a shadow stack remembering
/// traced call instructions and corresponding return addresses").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InlineFrame {
    /// Guest address to continue at after the callee's `ret`.
    pub ret_addr: u64,
    /// RSP offset at the call site (sanity-checked at `ret`).
    pub rsp_at_call: i64,
    /// Function the caller was in (its options are restored on return).
    pub caller_fn: u64,
}

/// The complete known-world state at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct World {
    /// GPR states, indexed by register number.
    pub regs: [RegState; 16],
    /// XMM states, indexed by register number.
    pub xmm: [XmmState; 16],
    /// Abstract flags.
    pub flags: FlagsVal,
    /// Shadow stack frame: 8-byte slots keyed by entry-RSP-relative offset.
    /// Absent means unknown (the stack is never declared known memory).
    pub frame: BTreeMap<i64, Value>,
    /// Shadow of emitted stores to constant (global) addresses, 8-byte
    /// slots keyed by address. Absent means "original image bytes";
    /// `Unknown` means poisoned by a store we couldn't track.
    pub gshadow: BTreeMap<u64, Value>,
    /// A frame address escaped into an emitted non-address computation or
    /// memory; unknown stores may now alias the frame.
    pub frame_escaped: bool,
    /// Inline call stack (innermost last).
    pub inline_stack: Vec<InlineFrame>,
    /// The function currently being traced (its [`FuncOpts`](crate::FuncOpts) apply).
    pub cur_fn: u64,
}

impl World {
    /// Entry world for rewriting the function at `entry`: everything
    /// unknown, RSP = `StackRel(0)`.
    pub fn entry(entry: u64) -> World {
        let mut w = World {
            regs: [RegState::UNKNOWN; 16],
            xmm: [XmmState::UNKNOWN; 16],
            flags: FlagsVal::Unknown,
            frame: BTreeMap::new(),
            gshadow: BTreeMap::new(),
            frame_escaped: false,
            inline_stack: Vec::new(),
            cur_fn: entry,
        };
        w.regs[Gpr::Rsp.number() as usize] = RegState {
            val: Value::StackRel(0),
            synced: true,
        };
        w
    }

    /// Read a GPR's abstract state.
    #[inline]
    pub fn reg(&self, r: Gpr) -> RegState {
        self.regs[r.number() as usize]
    }

    /// Write a GPR's abstract state.
    #[inline]
    pub fn set_reg(&mut self, r: Gpr, s: RegState) {
        self.regs[r.number() as usize] = s;
    }

    /// Read an XMM register's abstract state.
    #[inline]
    pub fn xmm(&self, x: Xmm) -> XmmState {
        self.xmm[x.number() as usize]
    }

    /// Write an XMM register's abstract state.
    #[inline]
    pub fn set_xmm(&mut self, x: Xmm, s: XmmState) {
        self.xmm[x.number() as usize] = s;
    }

    /// Current RSP offset (always tracked; RSP writes are always emitted).
    pub fn rsp_off(&self) -> i64 {
        match self.reg(Gpr::Rsp).val {
            Value::StackRel(o) => o,
            other => unreachable!("rsp degraded to {other:?}"),
        }
    }

    /// Read an 8-byte frame slot.
    pub fn frame_slot(&self, off: i64) -> Value {
        self.frame.get(&off).copied().unwrap_or(Value::Unknown)
    }

    /// Write an 8-byte frame slot.
    pub fn set_frame_slot(&mut self, off: i64, v: Value) {
        match v {
            Value::Unknown => {
                self.frame.insert(off, Value::Unknown);
            }
            v => {
                self.frame.insert(off, v);
            }
        }
    }

    /// Forget every frame slot strictly below `off` (dead temp space after
    /// a non-inlined call returns).
    pub fn invalidate_frame_below(&mut self, off: i64) {
        self.frame.retain(|&k, _| k >= off);
    }

    /// Poison all tracked state an untracked store could alias: global
    /// shadow entries and, when the frame escaped, frame slots.
    pub fn clobber_for_unknown_store(&mut self) {
        for v in self.gshadow.values_mut() {
            *v = Value::Unknown;
        }
        if self.frame_escaped {
            for v in self.frame.values_mut() {
                *v = Value::Unknown;
            }
        }
    }

    /// Stable fingerprint for block-identity hashing (full equality is
    /// verified separately against candidates).
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.regs.hash(&mut h);
        self.xmm.hash(&mut h);
        self.flags.hash(&mut h);
        for (k, v) in &self.frame {
            k.hash(&mut h);
            v.hash(&mut h);
        }
        for (k, v) in &self.gshadow {
            k.hash(&mut h);
            v.hash(&mut h);
        }
        self.frame_escaped.hash(&mut h);
        self.inline_stack.hash(&mut h);
        self.cur_fn.hash(&mut h);
        h.finish()
    }

    /// Can a path in state `self` branch into a block traced under `target`
    /// with only *materializing* compensation (no knowledge invention)?
    ///
    /// Rules (§III.F): a location the target treats as unknown accepts
    /// anything (memory is always architecturally correct; registers get
    /// materialized by [`World::migration_plan`]); a location the target
    /// knows must be known here with the same value. Stack depth, inline
    /// context and escape state must match exactly.
    pub fn can_migrate_to(&self, target: &World) -> bool {
        if self.inline_stack != target.inline_stack
            || self.cur_fn != target.cur_fn
            || self.rsp_off() != target.rsp_off()
            || (self.frame_escaped != target.frame_escaped)
        {
            return false;
        }
        // Flags: target must not know more than we do.
        match (target.flags, self.flags) {
            (FlagsVal::Unknown, _) => {}
            (FlagsVal::Known(t), FlagsVal::Known(s)) if t == s => {}
            _ => return false,
        }
        for i in 0..16 {
            let (s, t) = (self.regs[i], target.regs[i]);
            match t.val {
                Value::Unknown => {}
                tv => {
                    if s.val != tv {
                        return false;
                    }
                }
            }
        }
        for i in 0..16 {
            let (s, t) = (&self.xmm[i], &target.xmm[i]);
            for l in 0..2 {
                match t.lanes[l] {
                    Value::Unknown => {}
                    tv => {
                        if s.lanes[l] != tv {
                            return false;
                        }
                    }
                }
            }
        }
        // Frame: absent == Unknown.
        for (k, tv) in &target.frame {
            if !matches!(tv, Value::Unknown) && self.frame_slot(*k) != *tv {
                return false;
            }
        }
        for (k, sv) in &self.frame {
            if !matches!(sv, Value::Unknown) {
                // fine: target treats it as unknown or knows it equal
                // (checked above); nothing to do.
                let _ = k;
            }
        }
        // Global shadow: absent means "image bytes", which is NOT unknown —
        // strict matching except target-poisoned entries.
        for (k, tv) in &target.gshadow {
            match tv {
                Value::Unknown => {}
                tv => {
                    if self.gshadow.get(k) != Some(tv) {
                        return false;
                    }
                }
            }
        }
        for (k, sv) in &self.gshadow {
            match target.gshadow.get(k) {
                Some(_) => {} // handled above
                None => {
                    // Target assumed original bytes; we changed them.
                    if !matches!(sv, Value::Unknown) {
                        return false;
                    }
                    // Even poisoned is a mismatch: target would fold reads
                    // from image bytes that may have been overwritten.
                    return false;
                }
            }
        }
        true
    }

    /// Registers that must be materialized when branching from `self` into
    /// a block traced under `target` (assuming [`World::can_migrate_to`]).
    ///
    /// A register needs materialization when it is known-but-unsynced here
    /// and the target either treats it as unknown (it will use the
    /// architectural value) or requires it synced.
    pub fn migration_plan(&self, target: &World) -> MaterializeSet {
        let mut out = MaterializeSet::default();
        for i in 0..16 {
            let (s, t) = (self.regs[i], target.regs[i]);
            if s.val.is_known() && !s.synced {
                let needed = match t.val {
                    Value::Unknown => true,
                    _ => t.synced,
                };
                if needed {
                    out.gprs.push((Gpr::from_number(i as u8), s.val));
                }
            }
        }
        for i in 0..16 {
            let (s, t) = (&self.xmm[i], &target.xmm[i]);
            if !s.synced && s.lanes.iter().any(|l| l.is_known()) {
                let needed = t.lanes.iter().all(|l| matches!(l, Value::Unknown)) || t.synced;
                if needed {
                    out.xmms.push((Xmm::from_number(i as u8), s.lanes[0]));
                }
            }
        }
        out
    }

    /// Build the demoted world `W''` used when no existing variant is a
    /// migration target: keep locations that agree with `closest`, demote
    /// the rest to unknown (the paper's "migrate to a state where
    /// corresponding values become unknown").
    pub fn demote_toward(&self, closest: &World) -> World {
        let mut w = self.clone();
        for i in 0..16 {
            if i == Gpr::Rsp.number() as usize {
                continue; // rsp stays tracked
            }
            if w.regs[i] != closest.regs[i] {
                w.regs[i] = RegState::UNKNOWN;
            }
        }
        for i in 0..16 {
            if w.xmm[i] != closest.xmm[i] {
                w.xmm[i] = XmmState::UNKNOWN;
            }
        }
        if w.flags != closest.flags {
            w.flags = FlagsVal::Unknown;
        }
        let keys: Vec<i64> = w.frame.keys().copied().collect();
        for k in keys {
            if w.frame.get(&k) != closest.frame.get(&k) {
                w.frame.insert(k, Value::Unknown);
            }
        }
        for (k, _) in closest.frame.iter() {
            w.frame.entry(*k).or_insert(Value::Unknown);
        }
        let keys: Vec<u64> = w.gshadow.keys().copied().collect();
        for k in keys {
            if w.gshadow.get(&k) != closest.gshadow.get(&k) {
                w.gshadow.insert(k, Value::Unknown);
            }
        }
        w
    }

    /// Fully demoted world: everything unknown except stack *structure* —
    /// RSP and every stack-relative value (frame pointers of the traced
    /// activations) stay tracked, since epilogues need them and they are
    /// invariant across loop iterations anyway. Termination anchor of the
    /// migration algorithm.
    pub fn fully_demoted(&self) -> World {
        let mut w = World::entry(self.cur_fn);
        w.cur_fn = self.cur_fn;
        w.inline_stack = self.inline_stack.clone();
        w.frame_escaped = self.frame_escaped;
        for i in 0..16 {
            if matches!(self.regs[i].val, Value::StackRel(_)) {
                w.regs[i] = self.regs[i];
            }
        }
        // Poison every global slot we ever stored to (absent would claim
        // "original bytes"); keep stack-relative slot values (saved frame
        // pointers of inlined activations).
        for k in self.gshadow.keys() {
            w.gshadow.insert(*k, Value::Unknown);
        }
        for (k, v) in &self.frame {
            match v {
                Value::StackRel(_) => {
                    w.frame.insert(*k, *v);
                }
                _ => {
                    w.frame.insert(*k, Value::Unknown);
                }
            }
        }
        w
    }
}

/// Registers to materialize as compensation code.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MaterializeSet {
    /// GPRs with the value to load.
    pub gprs: Vec<(Gpr, Value)>,
    /// XMM registers with the low-lane bit pattern to load.
    pub xmms: Vec<(Xmm, Value)>,
}

impl MaterializeSet {
    /// No registers to materialize.
    pub fn is_empty(&self) -> bool {
        self.gprs.is_empty() && self.xmms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_world_shape() {
        let w = World::entry(0x400000);
        assert_eq!(w.rsp_off(), 0);
        assert_eq!(w.reg(Gpr::Rax).val, Value::Unknown);
        assert!(w.reg(Gpr::Rax).synced);
        assert_eq!(w.frame_slot(-8), Value::Unknown);
    }

    #[test]
    fn fingerprint_distinguishes_values() {
        let w1 = World::entry(0x400000);
        let mut w2 = w1.clone();
        w2.set_reg(
            Gpr::Rdi,
            RegState {
                val: Value::Const(42),
                synced: true,
            },
        );
        assert_ne!(w1.fingerprint(), w2.fingerprint());
        assert_eq!(w1.fingerprint(), w1.clone().fingerprint());
    }

    #[test]
    fn migration_compatibility() {
        let base = World::entry(0x400000);
        let mut known = base.clone();
        known.set_reg(
            Gpr::Rcx,
            RegState {
                val: Value::Const(7),
                synced: false,
            },
        );

        // Known state can migrate to the all-unknown state...
        assert!(known.can_migrate_to(&base));
        // ...but not the reverse (can't invent knowledge).
        assert!(!base.can_migrate_to(&known));
        // Equal knowledge migrates trivially.
        assert!(known.can_migrate_to(&known));

        // Conflicting constants can't migrate.
        let mut other = base.clone();
        other.set_reg(
            Gpr::Rcx,
            RegState {
                val: Value::Const(9),
                synced: false,
            },
        );
        assert!(!known.can_migrate_to(&other));
    }

    #[test]
    fn migration_plan_materializes_unsynced() {
        let base = World::entry(0x400000);
        let mut known = base.clone();
        known.set_reg(
            Gpr::Rcx,
            RegState {
                val: Value::Const(7),
                synced: false,
            },
        );
        known.set_reg(
            Gpr::Rdx,
            RegState {
                val: Value::Const(9),
                synced: true,
            },
        );

        let plan = known.migration_plan(&base);
        // rcx is known-unsynced and demoted -> materialize; rdx is synced
        // already -> architectural value is correct, nothing to emit.
        assert_eq!(plan.gprs, vec![(Gpr::Rcx, Value::Const(7))]);
        assert!(plan.xmms.is_empty());
    }

    #[test]
    fn stack_depth_must_match() {
        let base = World::entry(0x400000);
        let mut deeper = base.clone();
        deeper.set_reg(
            Gpr::Rsp,
            RegState {
                val: Value::StackRel(-16),
                synced: true,
            },
        );
        assert!(!deeper.can_migrate_to(&base));
    }

    #[test]
    fn gshadow_absent_is_not_unknown() {
        let base = World::entry(0x400000);
        let mut stored = base.clone();
        stored.gshadow.insert(0x600000, Value::Const(1));
        // Target assumed original image bytes at 0x600000; we overwrote.
        assert!(!stored.can_migrate_to(&base));
        // A target that poisoned the slot accepts us.
        let mut poisoned = base.clone();
        poisoned.gshadow.insert(0x600000, Value::Unknown);
        assert!(stored.can_migrate_to(&poisoned));
    }

    #[test]
    fn demotion_converges() {
        let base = World::entry(0x400000);
        let mut a = base.clone();
        a.set_reg(
            Gpr::Rcx,
            RegState {
                val: Value::Const(1),
                synced: false,
            },
        );
        let mut b = base.clone();
        b.set_reg(
            Gpr::Rcx,
            RegState {
                val: Value::Const(2),
                synced: false,
            },
        );

        let d = a.demote_toward(&b);
        assert_eq!(d.reg(Gpr::Rcx).val, Value::Unknown);
        // Demoted world accepts both sides.
        assert!(a.can_migrate_to(&d));
        assert!(b.can_migrate_to(&d));

        let full = a.fully_demoted();
        assert!(a.can_migrate_to(&full));
        assert!(b.can_migrate_to(&full));
    }

    #[test]
    fn clobber_unknown_store() {
        let mut w = World::entry(0x400000);
        w.gshadow.insert(0x600000, Value::Const(5));
        w.frame.insert(-8, Value::Const(6));
        w.clobber_for_unknown_store();
        assert_eq!(w.gshadow[&0x600000], Value::Unknown);
        // Frame survives while not escaped.
        assert_eq!(w.frame_slot(-8), Value::Const(6));
        w.frame_escaped = true;
        w.clobber_for_unknown_store();
        assert_eq!(w.frame_slot(-8), Value::Unknown);
    }
}
