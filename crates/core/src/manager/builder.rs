//! `ManagerBuilder` — the one construction surface for
//! [`SpecializationManager`].
//!
//! Five PRs accreted five independent knobs onto the manager: a byte
//! budget, a shard count, a negative-cache policy, an event sink and a
//! publish gate — each with its own constructor variant or post-hoc
//! setter, in three different styles (`with_*` consuming, `set_*` interior
//! mutability). The builder replaces all of them with one fluent chain and
//! typed config structs, and is the only way to enable the adaptive
//! tiering layer:
//!
//! ```
//! use brew_core::manager::{DeferredConfig, SpecializationManager, TieringConfig};
//!
//! let mgr = SpecializationManager::builder()
//!     .budget(64 * 1024)
//!     .shards(8)
//!     .tiering(TieringConfig::default())
//!     .deferred(DeferredConfig { workers: 2 })
//!     .build();
//! assert_eq!(mgr.budget_bytes(), 64 * 1024);
//! ```
//!
//! The old setters live on as `#[deprecated]` shims in [`crate::compat`].

use super::negative::{NegativeCache, NegativePolicy};
use super::shards::{ShardedCache, DEFAULT_SHARDS};
use super::tiering::{DecayedThreshold, Tiering, TieringConfig, TieringPolicy};
use super::worker::JobQueue;
use super::{Counters, EventSink, InflightTable, PublishGate, SpecializationManager};
use crate::telemetry::flight::DEFAULT_FLIGHT_CAPACITY;
use crate::telemetry::{FlightRecorder, MetricsRegistry, SymbolTable};
use brew_image::layout;
use std::sync::{Arc, Mutex, RwLock};

/// Deferred-mode configuration: how many scoped worker threads a
/// [`SpecializationManager::deferred_scope`] attaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeferredConfig {
    /// Background rewrite workers per deferred scope (minimum 1).
    pub workers: usize,
}

impl Default for DeferredConfig {
    fn default() -> Self {
        DeferredConfig { workers: 2 }
    }
}

/// Builder for [`SpecializationManager`]; see the module docs. Obtain one
/// via [`SpecializationManager::builder`], finish with
/// [`build`](ManagerBuilder::build).
pub struct ManagerBuilder {
    budget_bytes: usize,
    shards: usize,
    negative: NegativePolicy,
    deferred: DeferredConfig,
    tiering: Option<(TieringConfig, Option<Box<dyn TieringPolicy>>)>,
    sink: Option<Box<dyn EventSink>>,
    gate: Option<Box<dyn PublishGate>>,
    persist_path: Option<std::path::PathBuf>,
    flight_capacity: usize,
}

impl Default for ManagerBuilder {
    fn default() -> Self {
        ManagerBuilder {
            budget_bytes: (layout::JIT_SIZE / 4) as usize,
            shards: DEFAULT_SHARDS,
            negative: NegativePolicy::default(),
            deferred: DeferredConfig::default(),
            tiering: None,
            sink: None,
            gate: None,
            persist_path: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

impl ManagerBuilder {
    /// A builder with every knob at its default (budget = a quarter of
    /// the JIT segment, default shards, no sink, no gate, no tiering).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the variant cache to `bytes` of resident code.
    pub fn budget(mut self, bytes: usize) -> Self {
        self.budget_bytes = bytes;
        self
    }

    /// Number of cache shards (rounded up to a power of two). The
    /// negative cache uses the same count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Tune the negative cache (backoff base, attempt cap).
    pub fn negative_policy(mut self, policy: NegativePolicy) -> Self {
        self.negative = policy;
        self
    }

    /// Configure deferred mode (worker count for
    /// [`SpecializationManager::deferred_scope`]).
    pub fn deferred(mut self, cfg: DeferredConfig) -> Self {
        self.deferred = cfg;
        self
    }

    /// Enable adaptive tiering with the default [`DecayedThreshold`]
    /// policy reading its thresholds from `cfg`.
    pub fn tiering(mut self, cfg: TieringConfig) -> Self {
        self.tiering = Some((cfg, None));
        self
    }

    /// Enable adaptive tiering with a custom policy. `cfg` still supplies
    /// the decay factor applied at every tick.
    pub fn tiering_policy(mut self, cfg: TieringConfig, policy: Box<dyn TieringPolicy>) -> Self {
        self.tiering = Some((cfg, Some(policy)));
        self
    }

    /// Attach an event sink from the start — no events can be missed
    /// between construction and a post-hoc setter call.
    pub fn event_sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Enable `verify_on_publish`: every finished rewrite must pass
    /// `gate` before it becomes visible.
    pub fn publish_gate(mut self, gate: Box<dyn PublishGate>) -> Self {
        self.gate = Some(gate);
        self
    }

    /// Default variant-persistence file for
    /// [`SpecializationManager::warm_start`] /
    /// [`SpecializationManager::checkpoint`]. Setting a path does not by
    /// itself read or write anything — persistence stays explicit.
    pub fn persist_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.persist_path = Some(path.into());
        self
    }

    /// Capacity (in events, rounded up to a power of two) of the flight
    /// recorder's ring journal. The default keeps the last
    /// [`DEFAULT_FLIGHT_CAPACITY`] manager events.
    pub fn flight_capacity(mut self, events: usize) -> Self {
        self.flight_capacity = events;
        self
    }

    /// Construct the manager.
    ///
    /// # Panics
    ///
    /// When a tiering config is invalid: `demote_heat >= promote_heat`
    /// (no hysteresis band) or `decay` outside `(0, 1)` — both would make
    /// the layer flap or never forget, so they are construction errors,
    /// not runtime surprises.
    pub fn build(self) -> SpecializationManager {
        let tiering = self.tiering.map(|(cfg, policy)| {
            assert!(
                cfg.demote_heat < cfg.promote_heat,
                "tiering config: demote_heat ({}) must be below promote_heat ({})",
                cfg.demote_heat,
                cfg.promote_heat
            );
            assert!(
                cfg.decay > 0.0 && cfg.decay < 1.0,
                "tiering config: decay ({}) must be in (0, 1)",
                cfg.decay
            );
            let policy = policy.unwrap_or_else(|| Box::new(DecayedThreshold::new(cfg)));
            Tiering::new(cfg, policy)
        });
        // The cache holds a clone of the registry so the epoch machinery
        // can count snapshot publications/reclamations without a back
        // reference to the manager.
        let metrics = Arc::new(MetricsRegistry::new());
        // The cache also holds a clone of the flight recorder so the
        // epoch machinery can journal snapshot publish/reclaim from
        // inside the shard writers.
        let flight = Arc::new(FlightRecorder::new(self.flight_capacity));
        SpecializationManager {
            cache: ShardedCache::new(self.shards, Arc::clone(&metrics), Arc::clone(&flight)),
            negative: NegativeCache::new(self.shards, self.negative),
            inflight: InflightTable::default(),
            queue: JobQueue::new(),
            budget_bytes: self.budget_bytes,
            deferred_cfg: self.deferred,
            tiering,
            counters: Counters::default(),
            metrics,
            flight,
            symbols: Arc::new(SymbolTable::new()),
            last_panic: Mutex::new(None),
            sink: RwLock::new(self.sink),
            gate: RwLock::new(self.gate),
            persist_path: self.persist_path,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_plain_new() {
        let a = SpecializationManager::new();
        let b = ManagerBuilder::new().build();
        assert_eq!(a.budget_bytes(), b.budget_bytes());
        assert_eq!(a.len(), 0);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn knobs_apply() {
        let m = SpecializationManager::builder()
            .budget(4096)
            .shards(2)
            .negative_policy(NegativePolicy {
                base_backoff: 1,
                attempt_cap: 3,
            })
            .deferred(DeferredConfig { workers: 4 })
            .tiering(TieringConfig::default())
            .build();
        assert_eq!(m.budget_bytes(), 4096);
        assert!(m.tiering.is_some());
        assert_eq!(m.deferred_cfg.workers, 4);
    }

    #[test]
    #[should_panic(expected = "demote_heat")]
    fn inverted_band_is_rejected() {
        let _ = SpecializationManager::builder()
            .tiering(TieringConfig {
                promote_heat: 1.0,
                demote_heat: 2.0,
                decay: 0.5,
                cooldown_ticks: 0,
                cycle_weight: 0.0,
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn decay_outside_unit_interval_is_rejected() {
        let _ = SpecializationManager::builder()
            .tiering(TieringConfig {
                promote_heat: 8.0,
                demote_heat: 1.0,
                decay: 1.5,
                cooldown_ticks: 0,
                cycle_weight: 0.0,
            })
            .build();
    }
}
