//! `SpecializationManager` — a shared, thread-safe specialization service:
//! memoized, budgeted, single-flight, observable.
//!
//! The paper's cost argument (§V, A6) is that a rewrite is *paid once and
//! amortized*; its dispatch sketch (§III.D) is that many specialized
//! variants coexist and are selected at call time. The bare
//! [`crate::Rewriter`] supports neither: every call re-traces from
//! scratch, and a guard stub dispatches between exactly two targets. The
//! manager adds the missing layer:
//!
//! - **Sharded variant cache** — rewrites are memoized under
//!   `(function, request fingerprint)` (see [`SpecRequest::fingerprint`]);
//!   the cache is split into fingerprint-selected shards, each with its
//!   own lock, so warm hits from many threads proceed without contending
//!   (see the sharded store). A repeated request returns the cached [`Variant`]
//!   without tracing a single guest instruction.
//! - **Single-flight rewriting** — concurrent misses on the same key
//!   coalesce onto one in-progress trace instead of duplicating it: the
//!   first requester leads, the rest block on the flight and share its
//!   result (see the in-flight table). Each distinct fingerprint is traced
//!   exactly once no matter how many threads race for it.
//! - **Deferred mode** — inside [`run_deferred`](SpecializationManager::run_deferred),
//!   [`request`](SpecializationManager::request) answers a miss with the
//!   *original* entry immediately and queues the rewrite for a bounded
//!   scoped worker pool; the variant is published for subsequent calls —
//!   the paper's "delayed step" (§V.C) made literal (see the worker module).
//! - **Cost-aware LRU eviction** — the cache is bounded by a JIT-segment
//!   byte budget with *global* accounting across shards. When over
//!   budget, the entry with the highest `staleness x code bytes /
//!   (hits + 1)` score is dropped first: old, big, cold code goes; hot or
//!   cheap variants stay. (The JIT segment is a bump allocator, so
//!   evicted bytes are not reused — eviction bounds the *cache's resident
//!   set*, and re-specialization allocates fresh space, exactly like
//!   discarding a JIT code cache generation.)
//! - **Dispatch stubs** — [`build_dispatcher`](SpecializationManager::build_dispatcher)
//!   chains every cached, guardable variant of a function into one
//!   [`crate::guard::make_guard_chain`] stub falling through to the
//!   original. The stub is emitted fresh at a new address from a snapshot
//!   of the cache, so rebuilding while other threads publish variants is
//!   safe — callers swap the returned pointer in whole.
//! - **Observability** — hits/misses/evictions plus the concurrency
//!   counters (coalesced, deferred, published) and per-phase rewrite
//!   timings are aggregated in [`CacheStats`] and streamed to a pluggable
//!   [`EventSink`], which must be `Send + Sync` because events now come
//!   from many threads. Independently of any sink, every event is folded
//!   into a lock-free [`crate::telemetry::MetricsRegistry`] (shared via
//!   [`metrics`](SpecializationManager::metrics)), so counters, gauges
//!   and rewrite-phase histograms are *always* populated — an absent sink
//!   no longer means silent event loss.
//! - **Negative caching** — a failed rewrite is memoized per key (see
//!   [`negative`]): repeats of the same doomed request are *denied* at
//!   shard-lookup cost instead of re-tracing to rediscover the failure,
//!   with a decaying backoff that periodically lets one retry through
//!   (failures can be data-dependent) and a hard attempt cap after which
//!   the key is written off. [`request`](SpecializationManager::request)
//!   answers a denial with the original entry; the synchronous path
//!   returns the memoized error. Deferred jobs respect the same backoff
//!   because they run through the ordinary `obtain` path.
//! - **Staleness tracking & invalidation** — every rewrite records which
//!   known-memory bytes it folded into constants
//!   ([`crate::snapshot::KnownSnapshot`], carried by the [`Variant`]).
//!   One entry point,
//!   [`apply_invalidation`](SpecializationManager::apply_invalidation),
//!   takes an [`Invalidation`]: [`Invalidation::Func`] drops all variants
//!   of a function, [`Invalidation::Data`] drops variants whose folded
//!   ranges overlap a mutated range, and [`Invalidation::Revalidate`]
//!   re-hashes every snapshot against the image and drops (and, inside a
//!   deferred scope, re-enqueues) exactly the variants whose folded bytes
//!   changed. With tiering enabled the re-enqueue is *heat-gated*: only
//!   stale variants whose decayed heat clears the policy's bar are
//!   re-specialized; cold stale variants just die.
//! - **Adaptive tiering** — a manager built with
//!   [`ManagerBuilder::tiering`] closes the counter → specialization
//!   loop: [`tick`](SpecializationManager::tick) reads dispatch-stub
//!   [`CounterPage`]s and cache hit counts into decayed per-key heat
//!   scores and lets a [`TieringPolicy`] promote hot fingerprints
//!   (enqueue their rewrite), demote cold resident variants (reclaim
//!   budget ahead of LRU pressure) and gate re-specialization after
//!   invalidation. See the [`tiering`] module docs for the state machine.
//! - **Panic containment** — the trace/encode pipeline runs under
//!   `catch_unwind` on both the synchronous and worker paths; a panic
//!   becomes [`RewriteError::Internal`], is negatively cached like any
//!   other failure, and fails one request instead of killing the worker
//!   pool or poisoning the shared state. All manager locks recover from
//!   poisoning for the same reason.
//!
//! Construction goes through [`ManagerBuilder`] (one fluent chain, typed
//! config structs); the accreted `with_*`/`set_*` surface lives on as
//! deprecated shims in [`crate::compat`].

mod builder;
mod inflight;
pub mod negative;
mod shards;
pub mod tiering;
mod worker;

use crate::capture::RewriteStats;
use crate::error::RewriteError;
use crate::guard::{self, CounterPage, GuardCase};
use crate::persist::{self, PersistError, PersistedVariant};
use crate::request::SpecRequest;
use crate::snapshot::KnownSnapshot;
use crate::telemetry::flight::{milli, FlightKind};
use crate::telemetry::{
    metrics::Ctr, metrics::Gge, metrics::Hst, FlightRecorder, MetricsRegistry, SymbolTable,
};
use crate::Rewriter;
use brew_image::{Image, SegKind};
pub use builder::{DeferredConfig, ManagerBuilder};
use inflight::{InflightTable, Join};
pub use negative::NegativePolicy;
use negative::{NegativeCache, Verdict};
use shards::ShardedCache;
use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use tiering::Tiering;
pub use tiering::{DecayedThreshold, TickSummary, TierAction, TieringConfig, TieringPolicy};
use worker::{Enqueue, Job, JobQueue};

/// Recover the guard from a poisoned lock. Panics are contained at the
/// rewrite boundary, but a sink or hook can still panic while a manager
/// lock is held; all manager-internal state is consistent between
/// statements, so serving the next caller beats wedging everyone.
fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort text of a contained panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Key of the variant cache: which function, specialized how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Entry address of the original function.
    pub func: u64,
    /// [`SpecRequest::fingerprint`] of the request.
    pub fingerprint: u64,
}

/// A cached specialization: the rewrite result plus what the dispatcher
/// needs to guard it.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Entry address of the original function.
    pub func: u64,
    /// Entry address of the specialized code (drop-in replacement).
    pub entry: u64,
    /// Emitted code size in bytes.
    pub code_len: usize,
    /// Statistics of the producing rewrite.
    pub stats: RewriteStats,
    /// Dispatch conditions `(integer parameter index, expected value)`, or
    /// `None` when the variant can't be guarded by register compares.
    pub guards: Option<Vec<(usize, i64)>>,
    /// The known-memory bytes the rewrite folded into constants — what
    /// [`Invalidation::Revalidate`] re-checks and [`Invalidation::Data`]
    /// intersects against.
    pub snapshot: KnownSnapshot,
}

/// Aggregated manager counters; cheap to copy, comparable in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to rewrite (single-flight leaders only).
    pub misses: u64,
    /// Requests that subscribed to another thread's in-progress rewrite
    /// instead of duplicating it.
    pub coalesced: u64,
    /// Misses answered with the original entry while the rewrite was
    /// queued for a background worker.
    pub deferred: u64,
    /// Variants published by background workers.
    pub published: u64,
    /// Variants evicted under byte-budget pressure.
    pub evictions: u64,
    /// Code bytes currently resident in the cache.
    pub resident_bytes: usize,
    /// Cumulative guest instructions traced by actual rewrites. Stays
    /// flat across cache hits and coalesced requests — the "no duplicate
    /// trace" proof.
    pub traced_total: u64,
    /// Cumulative wall-clock nanoseconds spent inside actual rewrites.
    pub rewrite_ns_total: u64,
    /// Dispatch stubs built.
    pub dispatchers_built: u64,
    /// Requests denied from the negative cache — each one a full trace
    /// *not* repeated for a key already known to fail.
    pub denied: u64,
    /// Variants dropped by invalidation (explicit or via revalidate).
    pub invalidated: u64,
    /// Variants found stale by [`SpecializationManager::revalidate`]
    /// (their folded known-memory bytes had changed).
    pub stale: u64,
    /// Rewrite-pipeline panics converted into
    /// [`RewriteError::Internal`] instead of unwinding into the caller
    /// or worker pool.
    pub panics_contained: u64,
    /// Live entries in the negative cache.
    pub negative_entries: usize,
}

/// One manager event, streamed to the [`EventSink`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A request was answered from the cache.
    Hit {
        /// Original function.
        func: u64,
        /// Cached specialized entry.
        entry: u64,
    },
    /// A request missed; this thread leads the rewrite (or fails).
    Miss {
        /// Original function.
        func: u64,
    },
    /// A request found the same rewrite already in flight on another
    /// thread and subscribed to its result.
    Coalesced {
        /// Original function.
        func: u64,
    },
    /// A miss in deferred mode: the rewrite was queued and the caller was
    /// answered with the original entry.
    Deferred {
        /// Original function.
        func: u64,
    },
    /// A rewrite completed and its variant was inserted.
    Rewritten {
        /// Original function.
        func: u64,
        /// New specialized entry.
        entry: u64,
        /// Emitted code size in bytes.
        code_len: usize,
        /// Per-phase timings and counters of the rewrite.
        stats: RewriteStats,
    },
    /// A background worker completed a deferred rewrite; the variant is
    /// now visible to every subsequent request.
    Published {
        /// Original function.
        func: u64,
        /// New specialized entry.
        entry: u64,
    },
    /// A variant was evicted under byte-budget pressure.
    Evicted {
        /// Original function.
        func: u64,
        /// Evicted specialized entry.
        entry: u64,
        /// Its code size in bytes.
        code_len: usize,
    },
    /// A dispatch stub over cached variants was emitted.
    DispatcherBuilt {
        /// Original function (the fall-through target).
        func: u64,
        /// Stub entry address.
        entry: u64,
        /// Number of variants chained.
        variants: usize,
    },
    /// A request was denied from the negative cache: the same key already
    /// failed and is inside its backoff window (or past the attempt cap).
    Denied {
        /// Original function.
        func: u64,
        /// Failed attempts memoized for the key so far.
        attempts: u32,
    },
    /// [`SpecializationManager::revalidate`] found a variant whose folded
    /// known-memory bytes no longer match its snapshot. Always followed
    /// by an `Invalidated` event for the same variant.
    Stale {
        /// Original function.
        func: u64,
        /// The stale specialized entry.
        entry: u64,
    },
    /// A variant was dropped by invalidation; subsequent requests miss
    /// and re-specialize against current data.
    Invalidated {
        /// Original function.
        func: u64,
        /// The dropped specialized entry.
        entry: u64,
    },
    /// The tiering layer promoted a hot non-resident fingerprint: its
    /// rewrite was enqueued (or, outside a deferred scope, run inline).
    Promoted {
        /// Original function.
        func: u64,
        /// Request fingerprint being specialized.
        fingerprint: u64,
        /// The heat score that crossed the promote threshold.
        heat: f64,
    },
    /// The tiering layer demoted a cold resident variant: it was removed
    /// from the cache, reclaiming its byte-budget share.
    Demoted {
        /// Original function.
        func: u64,
        /// Request fingerprint of the demoted variant.
        fingerprint: u64,
        /// The heat score that fell below the demote threshold.
        heat: f64,
        /// Code bytes reclaimed from the resident set.
        code_len: usize,
    },
    /// Invalidation found a stale variant hot enough to re-specialize:
    /// its rewrite was re-enqueued without the original caller's help.
    Respecialized {
        /// Original function.
        func: u64,
        /// Request fingerprint being re-specialized.
        fingerprint: u64,
        /// The heat score that cleared the re-specialization bar.
        heat: f64,
    },
}

/// Receiver for manager [`Event`]s — plug in a logger, a metrics counter,
/// or the `tables` amortization report. Events may arrive concurrently
/// from many threads; per-thread the stream is ordered, globally it is
/// only as ordered as the underlying races.
pub trait EventSink: Send + Sync {
    /// Called once per event.
    fn event(&self, ev: &Event);
}

/// Buffering sink collecting every event; handy in tests and reports.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// Copy of everything received so far.
    pub fn snapshot(&self) -> Vec<Event> {
        unpoison(self.events.lock()).clone()
    }

    /// Drain and return everything received so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *unpoison(self.events.lock()))
    }
}

impl EventSink for RecordingSink {
    fn event(&self, ev: &Event) {
        unpoison(self.events.lock()).push(ev.clone());
    }
}

/// Why a publish gate refused a variant.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishRejection {
    /// Number of error-severity findings.
    pub findings: usize,
    /// The first finding, rendered for operators.
    pub summary: String,
}

/// Pre-publish inspection of a finished rewrite (the `verify_on_publish`
/// policy). The gate sees the finished-but-unpublished variant on both the
/// synchronous and deferred paths; returning `Err` means the variant is
/// *never* published — the manager converts the rejection into
/// [`RewriteError::VerifyRejected`], caches it negatively, and dispatch
/// falls back to the original function, exactly like any failed rewrite.
///
/// `brew-verify` provides the static translation validator implementing
/// this trait; closures with the matching signature implement it too, for
/// tests and custom policies.
pub trait PublishGate: Send + Sync {
    /// Inspect `res` (the rewrite of `func` under `req`, already emitted
    /// into `img`'s JIT segment but not yet published).
    fn inspect(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
        res: &crate::RewriteResult,
    ) -> Result<(), PublishRejection>;
}

impl<F> PublishGate for F
where
    F: Fn(&Image, u64, &SpecRequest, &crate::RewriteResult) -> Result<(), PublishRejection>
        + Send
        + Sync,
{
    fn inspect(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
        res: &crate::RewriteResult,
    ) -> Result<(), PublishRejection> {
        self(img, func, req, res)
    }
}

/// What to invalidate — the selector consumed by
/// [`SpecializationManager::apply_invalidation`]. One entry point, three
/// precisions:
///
/// - [`Func`](Invalidation::Func) — "this function changed": drop every
///   variant of it and every negative entry for it (its failures may have
///   been data-dependent too).
/// - [`Data`](Invalidation::Data) — "I just mutated these bytes": drop
///   exactly the variants whose folded known-memory ranges overlap the
///   mutated range; no image access, one pass over the cache.
/// - [`Revalidate`](Invalidation::Revalidate) — "something may have
///   changed, I don't know what": re-hash every variant's snapshot
///   against the image and drop exactly the stale ones, re-enqueueing
///   rewrites for those still worth having.
#[derive(Debug, Clone)]
pub enum Invalidation<'a> {
    /// Drop all variants of this function (entry address).
    Func(u64),
    /// Drop variants whose folded ranges overlap this address range.
    Data(Range<u64>),
    /// Re-hash every snapshot against this image; drop what changed.
    Revalidate(&'a Image),
}

/// What [`SpecializationManager::request`] answered with.
#[derive(Debug, Clone)]
pub enum Dispatch {
    /// A specialized variant is ready — call [`Variant::entry`].
    Specialized(Arc<Variant>),
    /// Call the original function. When `deferred`, the rewrite was queued
    /// for a background worker and a later request will be specialized.
    Original {
        /// Entry address to call now.
        func: u64,
        /// Whether a background rewrite is pending for this key.
        deferred: bool,
    },
}

impl Dispatch {
    /// The entry address the caller should invoke.
    pub fn entry(&self) -> u64 {
        match self {
            Dispatch::Specialized(v) => v.entry,
            Dispatch::Original { func, .. } => *func,
        }
    }

    /// Whether a specialized variant answered the request.
    pub fn is_specialized(&self) -> bool {
        matches!(self, Dispatch::Specialized(_))
    }
}

/// What [`SpecializationManager::save_variants`] wrote — and, just as
/// important, what it could *not* write. Per-entry problems never abort
/// the save (persistence is best-effort on save, strict on load), but
/// they are never silent either: every non-written entry is accounted
/// here, failures are counted in `brew_persist_save_failed_total`, and
/// each failure records a `SAVE_FAIL` flight event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveReport {
    /// Variants serialized into the checkpoint.
    pub written: usize,
    /// Variants skipped because their entry address is not in this
    /// image's JIT segment (a foreign image — legitimately not ours).
    pub skipped: usize,
    /// Variants whose code read-back failed even though their entry is
    /// in this image's JIT segment — a genuine per-entry I/O error.
    pub failed: usize,
    /// Total checkpoint size in bytes.
    pub bytes: usize,
}

/// What [`SpecializationManager::load_variants`] did with each persisted
/// entry: re-verified-and-published, or rejected with a typed reason.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Entries that survived every load check (including the publish
    /// gate) and are now resident.
    pub published: usize,
    /// Rejected entries as `(func, fingerprint, why)`; entries whose
    /// checksum failed decode as `(0, 0, why)` because nothing inside
    /// them can be trusted, not even the key.
    pub rejected: Vec<(u64, u64, PersistError)>,
}

/// How a request was ultimately satisfied (internal).
enum Outcome {
    Hit,
    Coalesced,
    Rewrote,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    deferred: AtomicU64,
    published: AtomicU64,
    evictions: AtomicU64,
    traced_total: AtomicU64,
    rewrite_ns_total: AtomicU64,
    dispatchers_built: AtomicU64,
    denied: AtomicU64,
    invalidated: AtomicU64,
    stale: AtomicU64,
    panics_contained: AtomicU64,
}

/// The memoizing, thread-safe specialization layer over [`Rewriter`]. All
/// methods take `&self`; share it across threads by reference (e.g. from
/// `std::thread::scope`) or in an `Arc`. See the module docs for the
/// design.
pub struct SpecializationManager {
    cache: ShardedCache,
    negative: NegativeCache,
    inflight: InflightTable,
    queue: JobQueue,
    budget_bytes: usize,
    deferred_cfg: DeferredConfig,
    tiering: Option<Tiering>,
    counters: Counters,
    metrics: Arc<MetricsRegistry>,
    flight: Arc<FlightRecorder>,
    symbols: Arc<SymbolTable>,
    /// Rendered flight dump captured by the most recent contained panic.
    last_panic: Mutex<Option<String>>,
    sink: RwLock<Option<Box<dyn EventSink>>>,
    gate: RwLock<Option<Box<dyn PublishGate>>>,
    persist_path: Option<std::path::PathBuf>,
}

impl Default for SpecializationManager {
    fn default() -> Self {
        Self::new()
    }
}

/// Heat entries below this score with no resident variant are pruned at
/// the end of a tick — after a few quiet ticks a dead key costs nothing.
const MIN_TRACKED_HEAT: f64 = 1e-3;

impl SpecializationManager {
    /// Manager with every knob at its default — shorthand for
    /// [`builder()`](Self::builder)`.build()`.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// The one construction surface: a [`ManagerBuilder`] with typed
    /// config structs for budget, shards, negative caching, deferred mode
    /// and adaptive tiering.
    pub fn builder() -> ManagerBuilder {
        ManagerBuilder::new()
    }

    /// The always-on metrics registry every manager event is folded into.
    /// Clone the `Arc` to export from another thread (e.g. a Prometheus
    /// scrape endpoint) while the manager keeps recording.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// The flight recorder journaling every manager decision. Clone the
    /// `Arc` to dump from another thread (e.g. a crash handler or the
    /// worker pool) while the manager keeps recording.
    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.flight)
    }

    /// The live JIT symbol table (perf-map / jitdump source), kept
    /// consistent with the variant cache across publish, unpublish and
    /// warm start.
    pub fn symbols(&self) -> Arc<SymbolTable> {
        Arc::clone(&self.symbols)
    }

    /// The flight-recorder dump captured when the most recent rewrite
    /// panic was contained — the events leading up to the blast, frozen
    /// at containment time. `None` until a panic has been contained.
    pub fn last_panic_dump(&self) -> Option<String> {
        unpoison(self.last_panic.lock()).clone()
    }

    /// Attach an event sink, replacing any previous one (the deprecated
    /// `set_sink` shim and [`ManagerBuilder::event_sink`] land here).
    pub(crate) fn install_sink(&self, sink: Box<dyn EventSink>) {
        *unpoison(self.sink.write()) = Some(sink);
    }

    /// Detach and return the current sink.
    pub fn take_sink(&self) -> Option<Box<dyn EventSink>> {
        unpoison(self.sink.write()).take()
    }

    /// Install a publish gate, replacing any previous one (the deprecated
    /// `set_publish_gate` shim lands here).
    pub(crate) fn install_gate(&self, gate: Box<dyn PublishGate>) {
        *unpoison(self.gate.write()) = Some(gate);
    }

    /// Replace the negative-cache policy, dropping existing entries (the
    /// deprecated `with_negative_policy` shim lands here).
    pub(crate) fn replace_negative_policy(&mut self, policy: NegativePolicy) {
        self.negative = NegativeCache::new(shards::DEFAULT_SHARDS, policy);
    }

    /// Detach and return the current publish gate.
    pub fn take_publish_gate(&self) -> Option<Box<dyn PublishGate>> {
        unpoison(self.gate.write()).take()
    }

    /// Aggregated counters (a consistent-enough snapshot: each field is
    /// individually exact, cross-field skew is bounded by in-flight
    /// requests).
    pub fn stats(&self) -> CacheStats {
        let c = &self.counters;
        CacheStats {
            hits: c.hits.load(Ordering::Acquire),
            misses: c.misses.load(Ordering::Acquire),
            coalesced: c.coalesced.load(Ordering::Acquire),
            deferred: c.deferred.load(Ordering::Acquire),
            published: c.published.load(Ordering::Acquire),
            evictions: c.evictions.load(Ordering::Acquire),
            resident_bytes: self.cache.resident_bytes(),
            traced_total: c.traced_total.load(Ordering::Acquire),
            rewrite_ns_total: c.rewrite_ns_total.load(Ordering::Acquire),
            dispatchers_built: c.dispatchers_built.load(Ordering::Acquire),
            denied: c.denied.load(Ordering::Acquire),
            invalidated: c.invalidated.load(Ordering::Acquire),
            stale: c.stale.load(Ordering::Acquire),
            panics_contained: c.panics_contained.load(Ordering::Acquire),
            negative_entries: self.negative.len(),
        }
    }

    /// The configured cache byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of cached variants.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.len() == 0
    }

    /// Drop every cached variant (counters are kept). Their JIT symbols
    /// are retired with them; dispatch-stub symbols survive (the stub
    /// placements do too).
    pub fn clear(&self) {
        for entry in self.cache.clear() {
            self.retire_symbol(entry);
        }
        self.sync_resident_gauges();
    }

    fn emit(&self, ev: Event) {
        // The registry comes first and unconditionally: metrics must not
        // depend on a sink being attached.
        self.metrics.record_event(&ev);
        let (kind, args) = self.flight_of(&ev);
        self.flight.record(kind, args);
        if let Some(sink) = unpoison(self.sink.read()).as_ref() {
            sink.event(&ev);
        }
    }

    /// Map a manager [`Event`] to its flight-recorder encoding. Tiering
    /// verdicts carry the threshold that justified them alongside the
    /// heat score, so a dump answers "why" without the config at hand.
    fn flight_of(&self, ev: &Event) -> (FlightKind, [u64; 4]) {
        let bar = |demote: bool| -> u64 {
            self.tiering
                .as_ref()
                .map(|t| {
                    milli(if demote {
                        t.cfg.demote_heat
                    } else {
                        t.cfg.promote_heat
                    })
                })
                .unwrap_or(0)
        };
        match ev {
            Event::Hit { func, entry } => (FlightKind::Hit, [*func, *entry, 0, 0]),
            Event::Miss { func } => (FlightKind::Miss, [*func, 0, 0, 0]),
            Event::Coalesced { func } => (FlightKind::Coalesced, [*func, 0, 0, 0]),
            Event::Deferred { func } => (FlightKind::Deferred, [*func, 0, 0, 0]),
            Event::Rewritten {
                func,
                entry,
                code_len,
                stats,
            } => (
                FlightKind::Rewritten,
                [*func, *entry, *code_len as u64, stats.total_ns()],
            ),
            Event::Published { func, entry } => (FlightKind::Published, [*func, *entry, 0, 0]),
            Event::Evicted {
                func,
                entry,
                code_len,
            } => (FlightKind::Evicted, [*func, *entry, *code_len as u64, 0]),
            Event::DispatcherBuilt {
                func,
                entry,
                variants,
            } => (
                FlightKind::DispatcherBuilt,
                [*func, *entry, *variants as u64, 0],
            ),
            Event::Denied { func, attempts } => {
                (FlightKind::Denied, [*func, *attempts as u64, 0, 0])
            }
            Event::Stale { func, entry } => (FlightKind::Stale, [*func, *entry, 0, 0]),
            Event::Invalidated { func, entry } => (FlightKind::Invalidated, [*func, *entry, 0, 0]),
            Event::Promoted {
                func,
                fingerprint,
                heat,
            } => (
                FlightKind::Promoted,
                [*func, *fingerprint, milli(*heat), bar(false)],
            ),
            Event::Demoted {
                func,
                fingerprint,
                heat,
                ..
            } => (
                FlightKind::Demoted,
                [*func, *fingerprint, milli(*heat), bar(true)],
            ),
            Event::Respecialized {
                func,
                fingerprint,
                heat,
            } => (
                FlightKind::Respecialized,
                [*func, *fingerprint, milli(*heat), 0],
            ),
        }
    }

    /// Register a freshly published variant's JIT placement in the
    /// symbol table (perf map / jitdump) and journal it.
    fn publish_symbol(&self, key: &CacheKey, v: &Variant) {
        let sym =
            self.symbols
                .publish_variant(key.func, key.fingerprint, v.entry, v.code_len as u64);
        self.flight.record(
            FlightKind::SymbolPublish,
            [sym.entry, sym.len, sym.generation, 0],
        );
    }

    /// Retire the symbol of an unpublished variant (eviction, demotion,
    /// invalidation, clear) and journal it.
    fn retire_symbol(&self, v: Arc<Variant>) {
        if self.symbols.retire(v.entry).is_some() {
            self.flight
                .record(FlightKind::SymbolRetire, [v.entry, 0, 0, 0]);
        }
    }

    /// Refresh the cache-residency gauges from the authoritative cache
    /// accounting (called after inserts and evictions).
    fn sync_resident_gauges(&self) {
        self.metrics
            .gauge_set(Gge::ResidentBytes, self.cache.resident_bytes() as i64);
        self.metrics
            .gauge_set(Gge::ResidentVariants, self.cache.len() as i64);
    }

    /// Refresh the negative-cache gauge from the authoritative count.
    fn sync_negative_gauge(&self) {
        self.metrics
            .gauge_set(Gge::NegativeEntries, self.negative.len() as i64);
    }

    fn note_hit(&self, func: u64, v: &Arc<Variant>) {
        self.counters.hits.fetch_add(1, Ordering::AcqRel);
        self.emit(Event::Hit {
            func,
            entry: v.entry,
        });
    }

    fn note_denied(&self, func: u64, key: &CacheKey) {
        self.counters.denied.fetch_add(1, Ordering::AcqRel);
        self.emit(Event::Denied {
            func,
            attempts: self.negative.attempts(key).unwrap_or(0),
        });
    }

    fn note_panic_contained(&self) {
        self.counters
            .panics_contained
            .fetch_add(1, Ordering::AcqRel);
        self.metrics.count(Ctr::PanicsContained, 1);
        // Freeze the flight recorder's view of the events leading up to
        // the blast: journal the containment, then capture the dump for
        // post-mortem retrieval via `last_panic_dump()`.
        self.flight.record(FlightKind::PanicContained, [0; 4]);
        let dump = self.flight.dump().render_text();
        *unpoison(self.last_panic.lock()) = Some(dump);
    }

    /// The synchronous memoized entry point: return the cached variant
    /// for `(func, req)` or rewrite, insert and return it. A cache hit
    /// costs one shard-lock hash lookup — no decoding, tracing, passes or
    /// encoding. Concurrent misses on the same key coalesce onto a single
    /// rewrite.
    pub fn get_or_rewrite(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
    ) -> Result<Arc<Variant>, RewriteError> {
        self.obtain(img, func, req).map(|(v, _)| v)
    }

    /// [`get_or_rewrite`](Self::get_or_rewrite) addressing the function by
    /// its image symbol.
    pub fn get_or_rewrite_named(
        &self,
        img: &Image,
        name: &str,
        req: &SpecRequest,
    ) -> Result<Arc<Variant>, RewriteError> {
        let func = img
            .lookup(name)
            .ok_or_else(|| RewriteError::BadConfig(format!("unknown symbol `{name}`")))?;
        self.get_or_rewrite(img, func, req)
    }

    /// The non-blocking entry point: a hit answers with the specialized
    /// variant; a miss inside [`run_deferred`](Self::run_deferred) queues
    /// the rewrite and answers with the *original* entry immediately;
    /// a miss outside any deferred scope falls back to the synchronous
    /// [`get_or_rewrite`](Self::get_or_rewrite) path.
    pub fn request(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
    ) -> Result<Dispatch, RewriteError> {
        let key = CacheKey {
            func,
            fingerprint: req.fingerprint(),
        };
        if let Some(v) = self.cache.lookup(&key) {
            self.note_hit(func, &v);
            return Ok(Dispatch::Specialized(v));
        }
        // With tiering enabled a miss is an *observation*, not an order:
        // the request is recorded as heat input and the caller runs the
        // original. Specialization happens when the policy promotes the
        // key in a later tick — the whole point is that the profile, not
        // the first unlucky caller, decides what is worth rewriting.
        if let Some(t) = &self.tiering {
            t.observe_miss(key, req);
            if let Verdict::Deny(_) = self.negative.consult(&key) {
                self.note_denied(func, &key);
            }
            return Ok(Dispatch::Original {
                func,
                deferred: false,
            });
        }
        // A key already known to fail is answered with the original entry
        // at shard-lookup cost: no queueing, no tracing, no error — the
        // caller asked "what should I call" and the answer is "the
        // original, same as when the rewrite first failed".
        if let Verdict::Deny(_) = self.negative.consult(&key) {
            self.note_denied(func, &key);
            return Ok(Dispatch::Original {
                func,
                deferred: false,
            });
        }
        match self.queue.push(Job {
            key,
            func,
            req: req.clone(),
        }) {
            Enqueue::Queued => {
                self.counters.deferred.fetch_add(1, Ordering::AcqRel);
                self.emit(Event::Deferred { func });
                Ok(Dispatch::Original {
                    func,
                    deferred: true,
                })
            }
            Enqueue::AlreadyQueued => Ok(Dispatch::Original {
                func,
                deferred: true,
            }),
            Enqueue::Closed => self
                .obtain(img, func, req)
                .map(|(v, _)| Dispatch::Specialized(v)),
        }
    }

    /// [`run_deferred`](Self::run_deferred) with the worker count taken
    /// from the builder's [`DeferredConfig`] — the configured way to open
    /// a deferred scope.
    pub fn deferred_scope<R>(&self, img: &Image, f: impl FnOnce() -> R) -> Result<R, RewriteError> {
        self.run_deferred(img, self.deferred_cfg.workers, f)
    }

    /// Deferred rewrite jobs currently queued and not yet picked up by a
    /// worker.
    pub fn queue_depth(&self) -> usize {
        self.queue.pending()
    }

    /// Run `f` with `workers` background rewrite threads attached (scoped,
    /// bounded; no detached threads survive this call). While active,
    /// [`request`](Self::request) defers misses to the pool. On a normal
    /// exit the queue closes and the workers drain it, so every rewrite
    /// queued inside `f` is published before `run_deferred` returns.
    ///
    /// Errors are the queue's history, reported *before* `f` runs: opening
    /// a scope inside a still-open scope returns
    /// [`RewriteError::DeferredScopeActive`], and the first call after a
    /// scope that was closed by an unwind (a panic escaped `f`) returns
    /// [`RewriteError::DeferredScopeUnwound`] with the number of queued
    /// jobs the unwind discarded — once acknowledged, the next call starts
    /// clean. Without this, a panicking scope would silently drop its
    /// queued jobs and the next scope would run as if nothing was lost.
    pub fn run_deferred<R>(
        &self,
        img: &Image,
        workers: usize,
        f: impl FnOnce() -> R,
    ) -> Result<R, RewriteError> {
        let workers = workers.max(1);
        self.queue.begin_scope()?;
        Ok(std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| self.drain_jobs(img));
            }
            // Close on unwind too: workers block in `pop` until the close,
            // so a panicking closure would otherwise deadlock the scope's
            // join and turn the caller's panic into a hang. An unwinding
            // close cannot wait for a drain (the scope is dying), so it
            // discards queued jobs and records the count for the next
            // `begin_scope` to report.
            struct CloseOnDrop<'a>(&'a JobQueue);
            impl Drop for CloseOnDrop<'_> {
                fn drop(&mut self) {
                    if std::thread::panicking() {
                        self.0.close_unwound();
                    } else {
                        self.0.close();
                    }
                }
            }
            let _close = CloseOnDrop(&self.queue);
            f()
        }))
    }

    /// Serialize every resident variant to the on-disk format (see
    /// [`crate::persist`]): emitted code bytes read back from `img`, the
    /// producing request, the folded-memory snapshot and the rewrite
    /// stats. Entries are written sorted by ascending JIT entry address
    /// so a fresh process can re-reserve their regions in one monotone
    /// sweep of the bump allocator.
    pub fn save_variant_bytes(&self, img: &Image) -> Vec<u8> {
        self.save_variant_bytes_report(img).0
    }

    /// [`save_variant_bytes`](Self::save_variant_bytes) plus the save
    /// accounting: per-entry problems do not abort the save, but each
    /// one lands in the [`SaveReport`] as `skipped` (entry not in this
    /// image — a foreign image) or `failed` (read-back error, counted in
    /// `brew_persist_save_failed_total` with a `SAVE_FAIL` flight event)
    /// instead of disappearing.
    pub fn save_variant_bytes_report(&self, img: &Image) -> (Vec<u8>, SaveReport) {
        let mut entries = self.cache.snapshot_all();
        entries.sort_by_key(|(_, _, v)| v.entry);
        let mut vars = Vec::with_capacity(entries.len());
        let (mut skipped, mut failed) = (0usize, 0usize);
        for (key, req, v) in entries {
            if !matches!(img.segment_of(v.entry), Some(SegKind::Jit)) {
                // Not this image's code (a foreign image): legitimately
                // not ours to save.
                skipped += 1;
                continue;
            }
            let mut code = vec![0u8; v.code_len];
            if img.read_bytes(v.entry, &mut code).is_err() {
                // In our JIT segment but unreadable: a genuine per-entry
                // I/O failure. The save goes on, but loudly.
                failed += 1;
                self.metrics.count(Ctr::PersistSaveFailed, 1);
                self.flight
                    .record(FlightKind::PersistSaveFailed, [key.func, v.entry, 0, 0]);
                continue;
            }
            vars.push(PersistedVariant {
                func: key.func,
                fingerprint: key.fingerprint,
                entry: v.entry,
                code,
                snapshot: v.snapshot.clone(),
                stats: v.stats,
                req,
            });
        }
        self.metrics.count(Ctr::PersistSaved, vars.len() as u64);
        let bytes = persist::encode_variants(&vars);
        self.flight.record(
            FlightKind::PersistSave,
            [vars.len() as u64, bytes.len() as u64, 0, 0],
        );
        let report = SaveReport {
            written: vars.len(),
            skipped,
            failed,
            bytes: bytes.len(),
        };
        (bytes, report)
    }

    /// Test-support seam: insert a synthetic cache entry without going
    /// through publish. Lets the persistence tests exercise the
    /// save-path accounting (`skipped`/`failed`) for entries whose code
    /// cannot be read back — states a real publish can never produce
    /// against its own image, but a save against the wrong image can.
    #[doc(hidden)]
    pub fn insert_synthetic_variant_for_tests(
        &self,
        func: u64,
        fingerprint: u64,
        entry: u64,
        code_len: usize,
    ) {
        let key = CacheKey { func, fingerprint };
        let v = Arc::new(Variant {
            func,
            entry,
            code_len,
            stats: RewriteStats::default(),
            guards: None,
            snapshot: KnownSnapshot::default(),
        });
        self.cache.insert(key, v, SpecRequest::new());
    }

    /// [`save_variant_bytes`](Self::save_variant_bytes) written to
    /// `path`, with the full per-entry accounting in the returned
    /// [`SaveReport`].
    pub fn save_variants(
        &self,
        img: &Image,
        path: impl AsRef<std::path::Path>,
    ) -> Result<SaveReport, PersistError> {
        let (bytes, report) = self.save_variant_bytes_report(img);
        std::fs::write(path, &bytes).map_err(|e| PersistError::Io(e.to_string()))?;
        Ok(report)
    }

    /// Re-materialize persisted variants into `img` and this manager's
    /// cache. **Nothing in `bytes` is trusted**: beyond the codec's
    /// framing and checksum validation, every entry must (1) hash its
    /// decoded request back to the stored fingerprint, (2) re-reserve its
    /// exact JIT region from the image's bump allocator, (3) still match
    /// its [`KnownSnapshot`] against the live image, and (4) pass the
    /// configured publish gate over the re-written code — the same gate a
    /// fresh rewrite would face. A failed entry is rejected (counted in
    /// `brew_persist_rejected_total`), negatively cached so the key
    /// cold-starts through the ordinary backoff, and never published.
    ///
    /// File-level corruption (magic, version, framing) fails the whole
    /// call; per-entry failures are collected in the report. Note: with
    /// no publish gate configured only the structural checks (1)–(3) run;
    /// install one (e.g. `brew_verify::publish_gate()`) to get the full
    /// translation-validation story on load.
    pub fn load_variant_bytes(
        &self,
        img: &Image,
        bytes: &[u8],
    ) -> Result<LoadReport, PersistError> {
        let decoded = persist::decode_variants(bytes).inspect_err(|_| {
            // File-level corruption (magic, version, framing) rejects the
            // whole checkpoint — count it like any other load rejection.
            self.metrics.count(Ctr::PersistRejected, 1);
        })?;
        let mut report = LoadReport {
            published: 0,
            rejected: Vec::new(),
        };
        let mut entries = Vec::with_capacity(decoded.len());
        for item in decoded {
            match item {
                Ok(pv) => entries.push(pv),
                Err(e) => {
                    self.metrics.count(Ctr::PersistRejected, 1);
                    report.rejected.push((0, 0, e));
                }
            }
        }
        // Ascending entry order makes placement a single monotone sweep.
        entries.sort_by_key(|pv| pv.entry);
        for pv in entries {
            let key = CacheKey {
                func: pv.func,
                fingerprint: pv.fingerprint,
            };
            match self.load_one(img, &pv) {
                Ok(variant) => {
                    self.negative.forget(&key);
                    self.metrics.count(Ctr::PersistLoaded, 1);
                    self.emit(Event::Published {
                        func: pv.func,
                        entry: variant.entry,
                    });
                    // Warm-started variants get the same profiler-facing
                    // symbol a fresh publish would.
                    self.publish_symbol(&key, &variant);
                    self.cache.insert(key, variant, pv.req.clone());
                    self.evict_to_budget(key);
                    report.published += 1;
                }
                Err(e) => {
                    self.metrics.count(Ctr::PersistRejected, 1);
                    self.negative.record_failure(&key, &e.as_rewrite_error());
                    report.rejected.push((pv.func, pv.fingerprint, e));
                }
            }
        }
        self.sync_resident_gauges();
        self.sync_negative_gauge();
        self.flight.record(
            FlightKind::PersistLoad,
            [report.published as u64, report.rejected.len() as u64, 0, 0],
        );
        Ok(report)
    }

    /// [`load_variant_bytes`](Self::load_variant_bytes) read from `path`.
    pub fn load_variants(
        &self,
        img: &Image,
        path: impl AsRef<std::path::Path>,
    ) -> Result<LoadReport, PersistError> {
        let bytes = std::fs::read(path).map_err(|e| PersistError::Io(e.to_string()))?;
        self.load_variant_bytes(img, &bytes)
    }

    /// Validate one decoded entry against the live process and publish
    /// gate; on success the code is resident in `img` at its recorded
    /// entry and the returned [`Variant`] is ready to insert.
    fn load_one(&self, img: &Image, pv: &PersistedVariant) -> Result<Arc<Variant>, PersistError> {
        let computed = pv.req.fingerprint();
        if computed != pv.fingerprint {
            return Err(PersistError::Fingerprint {
                stored: pv.fingerprint,
                computed,
            });
        }
        if !pv.snapshot.matches(img) {
            return Err(PersistError::StaleSnapshot);
        }
        // Re-reserve the exact region `entry..entry+code_len` from the
        // JIT bump allocator: the next allocation starts at the 16-aligned
        // cursor, so claiming `end - align16(cursor)` bytes lands exactly
        // on `end`. Entries arrive sorted ascending, so a cursor already
        // past `entry` means a genuine conflict (earlier allocations or
        // overlapping entries), not ordering.
        use brew_image::layout;
        let end = pv.entry + pv.code.len() as u64;
        let cursor = layout::JIT_BASE + layout::JIT_SIZE - img.jit_remaining();
        let aligned = (cursor + 15) & !15;
        if aligned > pv.entry || end < aligned {
            return Err(PersistError::Placement { entry: pv.entry });
        }
        match img.try_alloc_jit(end - aligned) {
            Some(start) if start == aligned => {}
            _ => return Err(PersistError::Placement { entry: pv.entry }),
        }
        if img.write_bytes(pv.entry, &pv.code).is_err() {
            return Err(PersistError::Placement { entry: pv.entry });
        }
        // The gate sees exactly what a fresh rewrite would hand it.
        let res = crate::RewriteResult {
            entry: pv.entry,
            code_len: pv.code.len(),
            stats: pv.stats,
            snapshot: pv.snapshot.clone(),
        };
        self.gate_check(img, pv.func, &pv.req, &res)
            .map_err(|e| match e {
                RewriteError::VerifyRejected { first, .. } => PersistError::Gate { summary: first },
                other => PersistError::Gate {
                    summary: other.to_string(),
                },
            })?;
        Ok(Arc::new(Variant {
            func: pv.func,
            entry: pv.entry,
            code_len: pv.code.len(),
            stats: pv.stats,
            guards: pv.req.guard_conditions(),
            snapshot: pv.snapshot.clone(),
        }))
    }

    /// Warm-start from the builder-configured
    /// [`persist_path`](ManagerBuilder::persist_path): load the file if it
    /// exists, do nothing (`Ok(None)`) when no path is configured or no
    /// file is there yet — first boot is not an error.
    pub fn warm_start(&self, img: &Image) -> Result<Option<LoadReport>, PersistError> {
        let Some(path) = &self.persist_path else {
            return Ok(None);
        };
        if !path.exists() {
            return Ok(None);
        }
        self.load_variants(img, path).map(Some)
    }

    /// Checkpoint the resident variants to the builder-configured
    /// [`persist_path`](ManagerBuilder::persist_path); `Ok(None)` when no
    /// path is configured.
    pub fn checkpoint(&self, img: &Image) -> Result<Option<SaveReport>, PersistError> {
        let Some(path) = &self.persist_path else {
            return Ok(None);
        };
        self.save_variants(img, path).map(Some)
    }

    /// Worker loop: pop jobs until the queue is closed and drained. Jobs
    /// go through the ordinary single-flight path, so a synchronous
    /// caller racing a worker coalesces rather than double-tracing.
    /// Each job runs under `catch_unwind`: `obtain` already contains
    /// rewrite-pipeline panics, but a panicking *sink* (or any other
    /// manager hook) would otherwise unwind through `std::thread::scope`
    /// and abort the whole batch — here it fails one job and is counted.
    fn drain_jobs(&self, img: &Image) {
        while let Some(job) = self.queue.pop() {
            // A failed deferred rewrite is dropped silently here — the
            // Miss event already fired, the failure is negatively cached,
            // and later synchronous requests for the key surface the
            // error to a caller.
            let contained = catch_unwind(AssertUnwindSafe(|| {
                if let Ok((v, Outcome::Rewrote)) = self.obtain(img, job.func, &job.req) {
                    self.counters.published.fetch_add(1, Ordering::AcqRel);
                    self.emit(Event::Published {
                        func: job.func,
                        entry: v.entry,
                    });
                }
            }));
            if contained.is_err() {
                self.note_panic_contained();
            }
        }
    }

    /// Cache lookup, then single-flight rewrite: leader traces, followers
    /// subscribe.
    fn obtain(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
    ) -> Result<(Arc<Variant>, Outcome), RewriteError> {
        let key = CacheKey {
            func,
            fingerprint: req.fingerprint(),
        };
        if let Some(v) = self.cache.lookup(&key) {
            self.note_hit(func, &v);
            return Ok((v, Outcome::Hit));
        }
        // Denial path: a key already known to fail answers with the
        // memoized error at shard-lookup cost. `Retry` means the backoff
        // window elapsed; the request falls through to the single-flight
        // path, so concurrent retriers still trace at most once.
        if let Verdict::Deny(e) = self.negative.consult(&key) {
            self.note_denied(func, &key);
            return Err(e);
        }
        match self.inflight.join(key) {
            Join::Follower(flight) => {
                self.counters.coalesced.fetch_add(1, Ordering::AcqRel);
                self.emit(Event::Coalesced { func });
                flight.wait().map(|v| (v, Outcome::Coalesced))
            }
            Join::Leader(lease) => {
                // Double-check under the lease: a previous leader may have
                // published between our miss and winning the flight.
                if let Some(v) = self.cache.lookup(&key) {
                    self.note_hit(func, &v);
                    lease.resolve(Ok(Arc::clone(&v)));
                    return Ok((v, Outcome::Hit));
                }
                self.counters.misses.fetch_add(1, Ordering::AcqRel);
                self.emit(Event::Miss { func });
                self.metrics.gauge_add(Gge::InflightRewrites, 1);
                // Contain pipeline panics at this boundary: one
                // pathological function fails its own request (as
                // `Internal`, negatively cached like any other failure)
                // instead of unwinding into the caller or worker pool —
                // the lease would resolve via `Drop`, but every follower
                // and retrier would then re-trace the same panic.
                let rewritten =
                    catch_unwind(AssertUnwindSafe(|| Rewriter::new(img).rewrite(func, req)))
                        .unwrap_or_else(|p| {
                            self.note_panic_contained();
                            Err(RewriteError::Internal(panic_message(p.as_ref())))
                        });
                self.metrics.gauge_add(Gge::InflightRewrites, -1);
                // The publish gate inspects the finished-but-unpublished
                // variant; a rejection becomes a rewrite failure like any
                // other (negatively cached, followers see the error,
                // dispatch falls back to the original).
                let rewritten =
                    rewritten.and_then(|res| self.gate_check(img, func, req, &res).map(|()| res));
                // A variant whose code alone exceeds the global budget can
                // never be made resident by eviction — refuse it here so
                // `resident_bytes <= budget` is an invariant, not a
                // steady-state hope. The error flows into the failure arm
                // below: negatively cached, followers see it, dispatch
                // falls back to the original code.
                let rewritten = rewritten.and_then(|res| {
                    if res.code_len > self.budget_bytes {
                        self.metrics.count(Ctr::OverBudget, 1);
                        self.flight.record(
                            FlightKind::OverBudget,
                            [func, res.code_len as u64, self.budget_bytes as u64, 0],
                        );
                        Err(RewriteError::OverBudget {
                            code_len: res.code_len,
                            budget: self.budget_bytes,
                        })
                    } else {
                        Ok(res)
                    }
                });
                match rewritten {
                    Ok(res) => {
                        self.negative.forget(&key);
                        self.sync_negative_gauge();
                        self.counters
                            .traced_total
                            .fetch_add(res.stats.traced, Ordering::AcqRel);
                        self.counters
                            .rewrite_ns_total
                            .fetch_add(res.stats.total_ns(), Ordering::AcqRel);
                        self.emit(Event::Rewritten {
                            func,
                            entry: res.entry,
                            code_len: res.code_len,
                            stats: res.stats,
                        });
                        let variant = Arc::new(Variant {
                            func,
                            entry: res.entry,
                            code_len: res.code_len,
                            stats: res.stats,
                            guards: req.guard_conditions(),
                            snapshot: res.snapshot,
                        });
                        // Publish to the cache *before* resolving the
                        // flight: anyone past the flight sees the cache.
                        self.publish_symbol(&key, &variant);
                        self.cache.insert(key, Arc::clone(&variant), req.clone());
                        self.evict_to_budget(key);
                        self.sync_resident_gauges();
                        lease.resolve(Ok(Arc::clone(&variant)));
                        Ok((variant, Outcome::Rewrote))
                    }
                    Err(e) => {
                        self.metrics.count(Ctr::RewriteFailures, 1);
                        self.negative.record_failure(&key, &e);
                        self.sync_negative_gauge();
                        lease.resolve(Err(e.clone()));
                        Err(e)
                    }
                }
            }
        }
    }

    /// Run the configured publish gate (if any) over a finished rewrite.
    /// Gate panics are contained here like rewrite panics: the variant
    /// fails its own request instead of unwinding into the caller.
    fn gate_check(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
        res: &crate::RewriteResult,
    ) -> Result<(), RewriteError> {
        let gate = unpoison(self.gate.read());
        let Some(gate) = gate.as_ref() else {
            return Ok(());
        };
        let t0 = std::time::Instant::now();
        let verdict = catch_unwind(AssertUnwindSafe(|| gate.inspect(img, func, req, res)));
        self.metrics
            .observe(Hst::VerifyNs, t0.elapsed().as_nanos() as u64);
        match verdict {
            Ok(Ok(())) => {
                self.metrics.count(Ctr::VerifyPassed, 1);
                self.flight.record(
                    FlightKind::VerifyPass,
                    [func, t0.elapsed().as_nanos() as u64, 0, 0],
                );
                Ok(())
            }
            Ok(Err(r)) => {
                self.metrics.count(Ctr::VerifyRejected, 1);
                self.flight
                    .record(FlightKind::VerifyReject, [func, r.findings as u64, 0, 0]);
                Err(RewriteError::VerifyRejected {
                    findings: r.findings,
                    first: r.summary,
                })
            }
            Err(p) => {
                self.note_panic_contained();
                Err(RewriteError::Internal(format!(
                    "publish gate panicked: {}",
                    panic_message(p.as_ref())
                )))
            }
        }
    }

    /// Evict highest-score entries until the budget holds. `keep` (the
    /// entry just inserted) is never evicted — it always fits on its own,
    /// because publish refuses any variant whose code alone exceeds the
    /// budget ([`RewriteError::OverBudget`]), so `resident_bytes <=
    /// budget` holds unconditionally after every insert.
    fn evict_to_budget(&self, keep: CacheKey) {
        while self.cache.resident_bytes() > self.budget_bytes && self.cache.len() > 1 {
            let Some((key, req, v)) = self.cache.evict_victim(keep) else {
                break;
            };
            // Keep the producing request around: if the key heats back up
            // the tiering layer can re-promote it without a caller ever
            // reconstructing the original SpecRequest.
            if let Some(t) = &self.tiering {
                t.retain_request(key, req);
            }
            self.counters.evictions.fetch_add(1, Ordering::AcqRel);
            self.emit(Event::Evicted {
                func: v.func,
                entry: v.entry,
                code_len: v.code_len,
            });
            self.retire_symbol(v);
        }
    }

    /// One turn of the tiering loop: sample every registered counter page
    /// and the cache hit counters, fold the deltas (plus miss observations
    /// recorded since the last tick) into decayed per-key heat, and apply
    /// the [`TieringPolicy`] — demote cold resident variants, enqueue
    /// rewrites for hot absent fingerprints (inline when no deferred
    /// scope is open). Returns what happened; with tiering disabled this
    /// is a no-op returning the default (zero) summary.
    ///
    /// Call it from wherever the host already has a periodic hook — a
    /// scheduler tick, an iteration boundary, a maintenance thread. The
    /// critical section is one pass over small maps; sampling tolerates
    /// the stubs' relaxed counters by construction (see
    /// [`CounterPage`]'s read-back contract).
    pub fn tick(&self, img: &Image) -> TickSummary {
        let Some(t) = &self.tiering else {
            return TickSummary::default();
        };
        self.flight.record(
            FlightKind::TickBegin,
            [unpoison(t.state.lock()).tick + 1, 0, 0, 0],
        );
        // Sample resident hit counts *before* crediting page deltas into
        // the cache: the credit lands after this snapshot, so it is never
        // observed again as a hit delta (the `credited` bookkeeping below
        // subtracts it from the next tick's baseline instead).
        let resident: HashMap<CacheKey, u64> = self.cache.snapshot_hits().into_iter().collect();

        let mut st = unpoison(t.state.lock());
        // Every resident key gets a heat entry even if it never missed or
        // dispatched — otherwise a variant inserted synchronously could
        // not decay toward demotion.
        for key in resident.keys() {
            st.heat.entry(*key).or_default();
        }
        // Fold counter-page deltas into pending heat and back into the
        // cache's LRU accounting (stub traffic never touches `lookup`, so
        // without the credit byte-pressure eviction would see hot stub
        // targets as idle). The fall-through slot has no fingerprint to
        // attribute, so it is not folded here — fall-through callers reach
        // `request`, which records the miss with the request attached.
        let mut sources = std::mem::take(&mut st.sources);
        // Fall-through (original-body) cycle deltas have no fingerprint
        // to heat up, but they *are* drained from the bank — counted into
        // the summary so attribution totals reconcile with the banks.
        let mut unattributed_cycles = 0u64;
        for src in sources.values_mut() {
            let Ok((snap, deltas)) = src.page.delta_since(img, &src.last) else {
                continue;
            };
            // The cycle bank rides the same sampling pass: attributed
            // time per case (written host-side by a `DispatchProfiler`)
            // becomes pending cycle heat, weighed by `cycle_weight` in
            // the fold below. Sampled even at weight 0 so the baseline
            // stays fresh if the weight is raised later.
            let cycle_deltas = src
                .page
                .cycle_delta_since(img, &src.last_cycles)
                .map(|(snap, deltas)| {
                    src.last_cycles = snap;
                    deltas
                })
                .unwrap_or_default();
            unattributed_cycles += cycle_deltas.iter().skip(src.keys.len()).sum::<u64>();
            for (i, key) in src.keys.iter().enumerate() {
                let d = deltas[i];
                let cd = cycle_deltas.get(i).copied().unwrap_or(0);
                if d == 0 && cd == 0 {
                    continue;
                }
                let e = st.heat.entry(*key).or_default();
                e.pending_cycles += cd;
                if d == 0 {
                    continue;
                }
                let credited = self.cache.credit(key, d);
                e.pending += d;
                if credited {
                    e.credited += d;
                }
            }
            src.last = snap;
        }
        st.sources = sources;

        st.tick += 1;
        let tick = st.tick;
        let decay = t.cfg.decay;
        let cycle_weight = t.cfg.cycle_weight;
        let mut sampled = 0u64;
        let mut cycles_sampled = unattributed_cycles;
        let mut promote: Vec<(CacheKey, SpecRequest, f64)> = Vec::new();
        let mut demote: Vec<(CacheKey, f64, Arc<Variant>)> = Vec::new();
        for (key, e) in st.heat.iter_mut() {
            let is_resident = resident.contains_key(key);
            let hit_delta = match resident.get(key) {
                Some(&h) => {
                    let d = h.saturating_sub(e.last_hits);
                    // The baseline absorbs this tick's page credit so it
                    // is not re-counted as a hit next tick.
                    e.last_hits = h + e.credited;
                    e.credited = 0;
                    d
                }
                None => {
                    e.last_hits = 0;
                    e.credited = 0;
                    0
                }
            };
            let input = e.pending + hit_delta;
            e.pending = 0;
            let cyc = e.pending_cycles;
            e.pending_cycles = 0;
            sampled += input;
            cycles_sampled += cyc;
            // Calls and (weighted) attributed time both feed heat: at
            // the default `cycle_weight` of 0 this reduces exactly to
            // the PR 6 call-weighted fold.
            e.heat = e.heat * decay + input as f64 + cyc as f64 * cycle_weight;
            let since = tick.saturating_sub(e.last_action_tick);
            match t.policy.decide(e.heat, is_resident, since) {
                TierAction::Promote if !is_resident => {
                    // No request retained means the key was only ever seen
                    // through a counter page — nothing to replay yet.
                    let Some(req) = e.req.clone() else {
                        continue;
                    };
                    // A key inside its negative backoff window is not
                    // promoted: the probe does not spend the window, so
                    // real requests still govern the retry schedule.
                    if self.negative.would_deny(key) {
                        continue;
                    }
                    e.last_action_tick = tick;
                    promote.push((*key, req, e.heat));
                }
                TierAction::Demote if is_resident => {
                    if let Some((req, v)) = self.cache.remove_key(key) {
                        e.req = Some(req);
                        e.last_hits = 0;
                        e.credited = 0;
                        e.last_action_tick = tick;
                        demote.push((*key, e.heat, v));
                    }
                }
                _ => {}
            }
        }
        // Dead keys cost nothing after a few quiet ticks.
        st.heat
            .retain(|key, e| resident.contains_key(key) || e.heat >= MIN_TRACKED_HEAT);
        let tracked = st.heat.len();
        let (mut heat_max, mut heat_sum) = (0.0f64, 0.0f64);
        for e in st.heat.values() {
            heat_max = heat_max.max(e.heat);
            heat_sum += e.heat;
        }
        drop(st);

        self.metrics.gauge_set(Gge::HeatTracked, tracked as i64);
        self.metrics
            .gauge_set(Gge::HeatMax, (heat_max * 1000.0) as i64);
        let heat_mean = if tracked == 0 {
            0
        } else {
            (heat_sum / tracked as f64 * 1000.0) as i64
        };
        self.metrics.gauge_set(Gge::HeatMean, heat_mean);

        // Effects run outside the tiering lock: event sinks are arbitrary
        // user code, and an inline promotion re-enters `obtain`.
        if !demote.is_empty() {
            self.sync_resident_gauges();
        }
        for (key, heat, v) in &demote {
            self.emit(Event::Demoted {
                func: key.func,
                fingerprint: key.fingerprint,
                heat: *heat,
                code_len: v.code_len,
            });
            self.retire_symbol(Arc::clone(v));
        }
        let promoted = promote.len();
        for (key, req, heat) in promote {
            self.emit(Event::Promoted {
                func: key.func,
                fingerprint: key.fingerprint,
                heat,
            });
            if let Enqueue::Closed = self.queue.push(Job {
                key,
                func: key.func,
                req: req.clone(),
            }) {
                // No deferred scope open: pay the rewrite on the tick
                // thread — the dispatch path stays non-blocking either
                // way, and a failure is negatively cached as usual.
                let _ = self.obtain(img, key.func, &req);
            }
        }
        let summary = TickSummary {
            tick,
            sampled,
            cycles_sampled,
            tracked,
            promoted,
            demoted: demote.len(),
        };
        self.flight.record(
            FlightKind::TickEnd,
            [
                tick,
                sampled,
                summary.promoted as u64,
                summary.demoted as u64,
            ],
        );
        summary
    }

    /// Whether a variant for `(func, fingerprint)` is resident, without
    /// touching its LRU/hit accounting — observing the resident set (as
    /// the C4 convergence experiment does every round) must not perturb
    /// the heat the tiering loop samples.
    pub fn is_resident(&self, func: u64, fingerprint: u64) -> bool {
        self.cache.peek(&CacheKey { func, fingerprint }).is_some()
    }

    /// Current decayed heat of `(func, fingerprint)`; `None` when tiering
    /// is disabled.
    pub fn heat_of(&self, func: u64, fingerprint: u64) -> Option<f64> {
        self.tiering
            .as_ref()
            .map(|t| t.heat_of(&CacheKey { func, fingerprint }))
    }

    /// The one invalidation entry point: drop exactly the cached variants
    /// `inv` names and return how many were dropped. See [`Invalidation`]
    /// for the three selectors; the deprecated `invalidate`,
    /// `invalidate_data` and `revalidate` methods in [`crate::compat`]
    /// delegate here.
    pub fn apply_invalidation(&self, inv: Invalidation<'_>) -> usize {
        match inv {
            Invalidation::Func(func) => {
                let dropped = self.cache.remove_matching(|v| v.func == func);
                self.negative.forget_func(func);
                self.tier_retain(&dropped);
                self.note_invalidated(&dropped);
                dropped.len()
            }
            Invalidation::Data(range) => {
                let dropped = self.cache.remove_matching(|v| v.snapshot.overlaps(&range));
                self.tier_retain(&dropped);
                self.note_invalidated(&dropped);
                dropped.len()
            }
            Invalidation::Revalidate(img) => self.revalidate_sweep(img),
        }
    }

    /// Keep dropped variants' producing requests in the tiering layer so
    /// a key that stays hot after invalidation can be re-promoted without
    /// any caller reconstructing its request.
    fn tier_retain(&self, dropped: &[(CacheKey, SpecRequest, Arc<Variant>)]) {
        if let Some(t) = &self.tiering {
            for (key, req, _) in dropped {
                t.retain_request(*key, req.clone());
            }
        }
    }

    /// The [`Invalidation::Revalidate`] sweep: re-hash every variant's
    /// snapshot against the current image and drop exactly the variants
    /// whose folded bytes changed. Each stale variant fires
    /// [`Event::Stale`] then [`Event::Invalidated`]; its rewrite is
    /// re-enqueued (from the retained producing request) so the fresh
    /// variant is published without the original caller's help — with
    /// tiering enabled the re-enqueue is heat-gated by
    /// [`TieringPolicy::respecialize`], so cold stale variants just die.
    fn revalidate_sweep(&self, img: &Image) -> usize {
        let dropped = self.cache.remove_matching(|v| !v.snapshot.matches(img));
        for (_, _, v) in &dropped {
            self.counters.stale.fetch_add(1, Ordering::AcqRel);
            self.emit(Event::Stale {
                func: v.func,
                entry: v.entry,
            });
        }
        self.note_invalidated(&dropped);
        for (key, req, v) in &dropped {
            if let Some(t) = &self.tiering {
                // The request is retained either way — a cold key may heat
                // back up and earn a promotion later — but only a variant
                // still hot *now* gets its rewrite paid immediately.
                t.retain_request(*key, req.clone());
                let heat = t.heat_of(key);
                if !t.policy.respecialize(heat) {
                    continue;
                }
                self.emit(Event::Respecialized {
                    func: v.func,
                    fingerprint: key.fingerprint,
                    heat,
                });
            }
            // `Closed` outside a deferred scope — then the next request
            // for the key simply re-specializes synchronously.
            self.queue.push(Job {
                key: *key,
                func: v.func,
                req: req.clone(),
            });
        }
        dropped.len()
    }

    /// Shared invalidation bookkeeping: count, emit, retire symbols,
    /// resync gauges.
    fn note_invalidated(&self, dropped: &[(CacheKey, SpecRequest, Arc<Variant>)]) {
        for (_, _, v) in dropped {
            self.counters.invalidated.fetch_add(1, Ordering::AcqRel);
            self.emit(Event::Invalidated {
                func: v.func,
                entry: v.entry,
            });
            self.retire_symbol(Arc::clone(v));
        }
        if !dropped.is_empty() {
            self.sync_resident_gauges();
        }
        self.sync_negative_gauge();
    }

    /// The memoized failure for `(func, req)`, if the negative cache
    /// holds one.
    pub fn failure_of(&self, func: u64, req: &SpecRequest) -> Option<RewriteError> {
        self.negative.failure_of(&CacheKey {
            func,
            fingerprint: req.fingerprint(),
        })
    }

    /// Live entries in the negative cache.
    pub fn negative_len(&self) -> usize {
        self.negative.len()
    }

    /// Cached variants of `func`, hottest (most hits, then most recent)
    /// first — the order the dispatcher tests them in.
    pub fn variants_of(&self, func: u64) -> Vec<Arc<Variant>> {
        let mut entries = self.cache.snapshot_func(func);
        entries.sort_by(|(ah, al, af, _), (bh, bl, bf, _)| (bh, bl, af).cmp(&(ah, al, bf)));
        entries.into_iter().map(|(_, _, _, v)| v).collect()
    }

    /// Emit a guarded dispatch stub over every cached *guardable* variant
    /// of `func` (§III.D, generalized to N variants and multi-parameter
    /// conjunctions). The stub tail-jumps to the first variant whose
    /// guarded parameters all match and falls through to `original`
    /// otherwise — callers use it as a drop-in replacement. Variants whose
    /// known parameters can't be register-compared (known doubles) are
    /// skipped; with no eligible variant the stub degenerates to a
    /// trampoline onto the original.
    ///
    /// The chain is built from a snapshot of the cache and emitted at a
    /// fresh JIT address, so concurrent publication of new variants never
    /// corrupts an existing stub — rebuild and swap the pointer to pick
    /// them up.
    pub fn build_dispatcher(
        &self,
        img: &Image,
        func: u64,
        original: u64,
    ) -> Result<u64, RewriteError> {
        let cases = self.dispatch_cases(func);
        let before = img.jit_remaining();
        let entry = guard::make_guard_chain(img, &cases, original)?;
        let len = before.saturating_sub(img.jit_remaining());
        self.note_dispatcher(func, entry, cases.len(), len);
        Ok(entry)
    }

    /// [`build_dispatcher`](Self::build_dispatcher) emitting a
    /// *self-counting* stub: each case — and the fall-through to the
    /// original — increments its slot of the returned [`CounterPage`] on
    /// every call. Dispatch behavior is bit-identical to the plain stub.
    /// With tiering enabled the page is also registered as a heat source:
    /// subsequent [`tick`](Self::tick)s sample its slots, so traffic that
    /// only ever flows through the stub still drives promote/demote
    /// decisions.
    pub fn build_dispatcher_counting(
        &self,
        img: &Image,
        func: u64,
        original: u64,
    ) -> Result<(u64, CounterPage), RewriteError> {
        let (cases, keys) = self.dispatch_cases_keyed(func);
        let before = img.jit_remaining();
        let (entry, page) = guard::make_guard_chain_counting(img, &cases, original)?;
        let len = before.saturating_sub(img.jit_remaining());
        if let Some(t) = &self.tiering {
            t.register_source(img, func, page, keys);
        }
        self.note_dispatcher(func, entry, cases.len(), len);
        Ok((entry, page))
    }

    /// A [`DispatchProfiler`](crate::telemetry::DispatchProfiler) over
    /// `func`'s counting dispatcher `page`, wired to this manager's
    /// metrics registry: every observed call feeds the page's cycle bank
    /// *and* the per-(func, fingerprint) self-time histograms. The case
    /// order is the stub's (hottest first), captured at call time — build
    /// the profiler right after the dispatcher from the same snapshot.
    pub fn profile_dispatcher(
        &self,
        func: u64,
        page: CounterPage,
    ) -> crate::telemetry::DispatchProfiler {
        let (_, keys) = self.dispatch_cases_keyed(func);
        crate::telemetry::DispatchProfiler::new(
            func,
            page,
            keys.into_iter().map(|k| k.fingerprint).collect(),
            Some(Arc::clone(&self.metrics)),
        )
    }

    /// Guardable cached variants of `func` as dispatch cases, hottest
    /// first.
    fn dispatch_cases(&self, func: u64) -> Vec<GuardCase> {
        self.dispatch_cases_keyed(func).0
    }

    /// Like [`dispatch_cases`](Self::dispatch_cases), also returning each
    /// case's [`CacheKey`] in slot order — what the tiering layer needs to
    /// attribute a [`CounterPage`] slot back to a fingerprint.
    fn dispatch_cases_keyed(&self, func: u64) -> (Vec<GuardCase>, Vec<CacheKey>) {
        let mut entries = self.cache.snapshot_func(func);
        entries.sort_by(|(ah, al, af, _), (bh, bl, bf, _)| (bh, bl, af).cmp(&(ah, al, bf)));
        let mut cases = Vec::new();
        let mut keys = Vec::new();
        for (_, _, fingerprint, v) in entries {
            let Some(g) = v.guards.as_ref() else {
                continue;
            };
            cases.push(GuardCase {
                conds: g.clone(),
                target: v.entry,
            });
            keys.push(CacheKey { func, fingerprint });
        }
        (cases, keys)
    }

    fn note_dispatcher(&self, func: u64, entry: u64, variants: usize, len: u64) {
        self.counters
            .dispatchers_built
            .fetch_add(1, Ordering::AcqRel);
        self.emit(Event::DispatcherBuilt {
            func,
            entry,
            variants,
        });
        // Stubs are live JIT placements too — symbolize them so profiler
        // samples inside the dispatch chain don't read as bare hex.
        let sym = self.symbols.publish_stub(func, entry, len);
        self.flight.record(
            FlightKind::SymbolPublish,
            [sym.entry, sym.len, sym.generation, 0],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert_dummy(m: &SpecializationManager, func: u64, entry: u64, hits: u64) {
        let key = CacheKey {
            func,
            fingerprint: entry,
        };
        m.cache.insert(
            key,
            Arc::new(Variant {
                func,
                entry,
                code_len: 16,
                stats: RewriteStats::default(),
                guards: None,
                snapshot: KnownSnapshot::default(),
            }),
            SpecRequest::new(),
        );
        for _ in 0..hits {
            m.cache.lookup(&key);
        }
    }

    #[test]
    fn variants_of_orders_hot_first() {
        let m = SpecializationManager::new();
        for (entry, hits) in [(100u64, 1u64), (200, 5), (300, 3)] {
            insert_dummy(&m, 7, entry, hits);
        }
        let order: Vec<u64> = m.variants_of(7).iter().map(|v| v.entry).collect();
        assert_eq!(order, vec![200, 300, 100]);
        assert!(m.variants_of(8).is_empty());
    }

    #[test]
    fn manager_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<SpecializationManager>();
    }

    #[test]
    fn eviction_never_picks_the_kept_key() {
        let m = SpecializationManager::builder().budget(16).build();
        insert_dummy(&m, 1, 100, 0);
        insert_dummy(&m, 1, 200, 0);
        let keep = CacheKey {
            func: 1,
            fingerprint: 200,
        };
        m.evict_to_budget(keep);
        let left: Vec<u64> = m.variants_of(1).iter().map(|v| v.entry).collect();
        assert_eq!(left, vec![200]);
        assert_eq!(m.stats().evictions, 1);
    }
}
