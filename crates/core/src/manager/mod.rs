//! `SpecializationManager` — a shared, thread-safe specialization service:
//! memoized, budgeted, single-flight, observable.
//!
//! The paper's cost argument (§V, A6) is that a rewrite is *paid once and
//! amortized*; its dispatch sketch (§III.D) is that many specialized
//! variants coexist and are selected at call time. The bare
//! [`crate::Rewriter`] supports neither: every call re-traces from
//! scratch, and a guard stub dispatches between exactly two targets. The
//! manager adds the missing layer:
//!
//! - **Sharded variant cache** — rewrites are memoized under
//!   `(function, request fingerprint)` (see [`SpecRequest::fingerprint`]);
//!   the cache is split into fingerprint-selected shards, each with its
//!   own lock, so warm hits from many threads proceed without contending
//!   (see the sharded store). A repeated request returns the cached [`Variant`]
//!   without tracing a single guest instruction.
//! - **Single-flight rewriting** — concurrent misses on the same key
//!   coalesce onto one in-progress trace instead of duplicating it: the
//!   first requester leads, the rest block on the flight and share its
//!   result (see the in-flight table). Each distinct fingerprint is traced
//!   exactly once no matter how many threads race for it.
//! - **Deferred mode** — inside [`run_deferred`](SpecializationManager::run_deferred),
//!   [`request`](SpecializationManager::request) answers a miss with the
//!   *original* entry immediately and queues the rewrite for a bounded
//!   scoped worker pool; the variant is published for subsequent calls —
//!   the paper's "delayed step" (§V.C) made literal (see the worker module).
//! - **Cost-aware LRU eviction** — the cache is bounded by a JIT-segment
//!   byte budget with *global* accounting across shards. When over
//!   budget, the entry with the highest `staleness x code bytes /
//!   (hits + 1)` score is dropped first: old, big, cold code goes; hot or
//!   cheap variants stay. (The JIT segment is a bump allocator, so
//!   evicted bytes are not reused — eviction bounds the *cache's resident
//!   set*, and re-specialization allocates fresh space, exactly like
//!   discarding a JIT code cache generation.)
//! - **Dispatch stubs** — [`build_dispatcher`](SpecializationManager::build_dispatcher)
//!   chains every cached, guardable variant of a function into one
//!   [`crate::guard::make_guard_chain`] stub falling through to the
//!   original. The stub is emitted fresh at a new address from a snapshot
//!   of the cache, so rebuilding while other threads publish variants is
//!   safe — callers swap the returned pointer in whole.
//! - **Observability** — hits/misses/evictions plus the concurrency
//!   counters (coalesced, deferred, published) and per-phase rewrite
//!   timings are aggregated in [`CacheStats`] and streamed to a pluggable
//!   [`EventSink`], which must be `Send + Sync` because events now come
//!   from many threads. Independently of any sink, every event is folded
//!   into a lock-free [`crate::telemetry::MetricsRegistry`] (shared via
//!   [`metrics`](SpecializationManager::metrics)), so counters, gauges
//!   and rewrite-phase histograms are *always* populated — an absent sink
//!   no longer means silent event loss.
//! - **Negative caching** — a failed rewrite is memoized per key (see
//!   [`negative`]): repeats of the same doomed request are *denied* at
//!   shard-lookup cost instead of re-tracing to rediscover the failure,
//!   with a decaying backoff that periodically lets one retry through
//!   (failures can be data-dependent) and a hard attempt cap after which
//!   the key is written off. [`request`](SpecializationManager::request)
//!   answers a denial with the original entry; the synchronous path
//!   returns the memoized error. Deferred jobs respect the same backoff
//!   because they run through the ordinary `obtain` path.
//! - **Staleness tracking & invalidation** — every rewrite records which
//!   known-memory bytes it folded into constants
//!   ([`crate::snapshot::KnownSnapshot`], carried by the [`Variant`]).
//!   [`invalidate`](SpecializationManager::invalidate) drops all variants
//!   of a function, [`invalidate_data`](SpecializationManager::invalidate_data)
//!   drops variants whose folded ranges overlap a mutated range, and
//!   [`revalidate`](SpecializationManager::revalidate) re-hashes every
//!   snapshot against the image and drops (and, inside a deferred scope,
//!   re-enqueues) exactly the variants whose folded bytes changed.
//! - **Panic containment** — the trace/encode pipeline runs under
//!   `catch_unwind` on both the synchronous and worker paths; a panic
//!   becomes [`RewriteError::Internal`], is negatively cached like any
//!   other failure, and fails one request instead of killing the worker
//!   pool or poisoning the shared state. All manager locks recover from
//!   poisoning for the same reason.

mod inflight;
pub mod negative;
mod shards;
mod worker;

use crate::capture::RewriteStats;
use crate::error::RewriteError;
use crate::guard::{self, CounterPage, GuardCase};
use crate::request::SpecRequest;
use crate::snapshot::KnownSnapshot;
use crate::telemetry::{metrics::Ctr, metrics::Gge, metrics::Hst, MetricsRegistry};
use crate::Rewriter;
use brew_image::{layout, Image};
use inflight::{InflightTable, Join};
pub use negative::NegativePolicy;
use negative::{NegativeCache, Verdict};
use shards::ShardedCache;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use worker::{Enqueue, Job, JobQueue};

/// Recover the guard from a poisoned lock. Panics are contained at the
/// rewrite boundary, but a sink or hook can still panic while a manager
/// lock is held; all manager-internal state is consistent between
/// statements, so serving the next caller beats wedging everyone.
fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort text of a contained panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Key of the variant cache: which function, specialized how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Entry address of the original function.
    pub func: u64,
    /// [`SpecRequest::fingerprint`] of the request.
    pub fingerprint: u64,
}

/// A cached specialization: the rewrite result plus what the dispatcher
/// needs to guard it.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Entry address of the original function.
    pub func: u64,
    /// Entry address of the specialized code (drop-in replacement).
    pub entry: u64,
    /// Emitted code size in bytes.
    pub code_len: usize,
    /// Statistics of the producing rewrite.
    pub stats: RewriteStats,
    /// Dispatch conditions `(integer parameter index, expected value)`, or
    /// `None` when the variant can't be guarded by register compares.
    pub guards: Option<Vec<(usize, i64)>>,
    /// The known-memory bytes the rewrite folded into constants — what
    /// [`SpecializationManager::revalidate`] re-checks and
    /// [`SpecializationManager::invalidate_data`] intersects against.
    pub snapshot: KnownSnapshot,
}

/// Aggregated manager counters; cheap to copy, comparable in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to rewrite (single-flight leaders only).
    pub misses: u64,
    /// Requests that subscribed to another thread's in-progress rewrite
    /// instead of duplicating it.
    pub coalesced: u64,
    /// Misses answered with the original entry while the rewrite was
    /// queued for a background worker.
    pub deferred: u64,
    /// Variants published by background workers.
    pub published: u64,
    /// Variants evicted under byte-budget pressure.
    pub evictions: u64,
    /// Code bytes currently resident in the cache.
    pub resident_bytes: usize,
    /// Cumulative guest instructions traced by actual rewrites. Stays
    /// flat across cache hits and coalesced requests — the "no duplicate
    /// trace" proof.
    pub traced_total: u64,
    /// Cumulative wall-clock nanoseconds spent inside actual rewrites.
    pub rewrite_ns_total: u64,
    /// Dispatch stubs built.
    pub dispatchers_built: u64,
    /// Requests denied from the negative cache — each one a full trace
    /// *not* repeated for a key already known to fail.
    pub denied: u64,
    /// Variants dropped by invalidation (explicit or via revalidate).
    pub invalidated: u64,
    /// Variants found stale by [`SpecializationManager::revalidate`]
    /// (their folded known-memory bytes had changed).
    pub stale: u64,
    /// Rewrite-pipeline panics converted into
    /// [`RewriteError::Internal`] instead of unwinding into the caller
    /// or worker pool.
    pub panics_contained: u64,
    /// Live entries in the negative cache.
    pub negative_entries: usize,
}

/// One manager event, streamed to the [`EventSink`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A request was answered from the cache.
    Hit {
        /// Original function.
        func: u64,
        /// Cached specialized entry.
        entry: u64,
    },
    /// A request missed; this thread leads the rewrite (or fails).
    Miss {
        /// Original function.
        func: u64,
    },
    /// A request found the same rewrite already in flight on another
    /// thread and subscribed to its result.
    Coalesced {
        /// Original function.
        func: u64,
    },
    /// A miss in deferred mode: the rewrite was queued and the caller was
    /// answered with the original entry.
    Deferred {
        /// Original function.
        func: u64,
    },
    /// A rewrite completed and its variant was inserted.
    Rewritten {
        /// Original function.
        func: u64,
        /// New specialized entry.
        entry: u64,
        /// Emitted code size in bytes.
        code_len: usize,
        /// Per-phase timings and counters of the rewrite.
        stats: RewriteStats,
    },
    /// A background worker completed a deferred rewrite; the variant is
    /// now visible to every subsequent request.
    Published {
        /// Original function.
        func: u64,
        /// New specialized entry.
        entry: u64,
    },
    /// A variant was evicted under byte-budget pressure.
    Evicted {
        /// Original function.
        func: u64,
        /// Evicted specialized entry.
        entry: u64,
        /// Its code size in bytes.
        code_len: usize,
    },
    /// A dispatch stub over cached variants was emitted.
    DispatcherBuilt {
        /// Original function (the fall-through target).
        func: u64,
        /// Stub entry address.
        entry: u64,
        /// Number of variants chained.
        variants: usize,
    },
    /// A request was denied from the negative cache: the same key already
    /// failed and is inside its backoff window (or past the attempt cap).
    Denied {
        /// Original function.
        func: u64,
        /// Failed attempts memoized for the key so far.
        attempts: u32,
    },
    /// [`SpecializationManager::revalidate`] found a variant whose folded
    /// known-memory bytes no longer match its snapshot. Always followed
    /// by an `Invalidated` event for the same variant.
    Stale {
        /// Original function.
        func: u64,
        /// The stale specialized entry.
        entry: u64,
    },
    /// A variant was dropped by invalidation; subsequent requests miss
    /// and re-specialize against current data.
    Invalidated {
        /// Original function.
        func: u64,
        /// The dropped specialized entry.
        entry: u64,
    },
}

/// Receiver for manager [`Event`]s — plug in a logger, a metrics counter,
/// or the `tables` amortization report. Events may arrive concurrently
/// from many threads; per-thread the stream is ordered, globally it is
/// only as ordered as the underlying races.
pub trait EventSink: Send + Sync {
    /// Called once per event.
    fn event(&self, ev: &Event);
}

/// Buffering sink collecting every event; handy in tests and reports.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// Copy of everything received so far.
    pub fn snapshot(&self) -> Vec<Event> {
        unpoison(self.events.lock()).clone()
    }

    /// Drain and return everything received so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *unpoison(self.events.lock()))
    }
}

impl EventSink for RecordingSink {
    fn event(&self, ev: &Event) {
        unpoison(self.events.lock()).push(ev.clone());
    }
}

/// Why a publish gate refused a variant.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishRejection {
    /// Number of error-severity findings.
    pub findings: usize,
    /// The first finding, rendered for operators.
    pub summary: String,
}

/// Pre-publish inspection of a finished rewrite (the `verify_on_publish`
/// policy). The gate sees the finished-but-unpublished variant on both the
/// synchronous and deferred paths; returning `Err` means the variant is
/// *never* published — the manager converts the rejection into
/// [`RewriteError::VerifyRejected`], caches it negatively, and dispatch
/// falls back to the original function, exactly like any failed rewrite.
///
/// `brew-verify` provides the static translation validator implementing
/// this trait; closures with the matching signature implement it too, for
/// tests and custom policies.
pub trait PublishGate: Send + Sync {
    /// Inspect `res` (the rewrite of `func` under `req`, already emitted
    /// into `img`'s JIT segment but not yet published).
    fn inspect(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
        res: &crate::RewriteResult,
    ) -> Result<(), PublishRejection>;
}

impl<F> PublishGate for F
where
    F: Fn(&Image, u64, &SpecRequest, &crate::RewriteResult) -> Result<(), PublishRejection>
        + Send
        + Sync,
{
    fn inspect(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
        res: &crate::RewriteResult,
    ) -> Result<(), PublishRejection> {
        self(img, func, req, res)
    }
}

/// What [`SpecializationManager::request`] answered with.
#[derive(Debug, Clone)]
pub enum Dispatch {
    /// A specialized variant is ready — call [`Variant::entry`].
    Specialized(Arc<Variant>),
    /// Call the original function. When `deferred`, the rewrite was queued
    /// for a background worker and a later request will be specialized.
    Original {
        /// Entry address to call now.
        func: u64,
        /// Whether a background rewrite is pending for this key.
        deferred: bool,
    },
}

impl Dispatch {
    /// The entry address the caller should invoke.
    pub fn entry(&self) -> u64 {
        match self {
            Dispatch::Specialized(v) => v.entry,
            Dispatch::Original { func, .. } => *func,
        }
    }

    /// Whether a specialized variant answered the request.
    pub fn is_specialized(&self) -> bool {
        matches!(self, Dispatch::Specialized(_))
    }
}

/// How a request was ultimately satisfied (internal).
enum Outcome {
    Hit,
    Coalesced,
    Rewrote,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    deferred: AtomicU64,
    published: AtomicU64,
    evictions: AtomicU64,
    traced_total: AtomicU64,
    rewrite_ns_total: AtomicU64,
    dispatchers_built: AtomicU64,
    denied: AtomicU64,
    invalidated: AtomicU64,
    stale: AtomicU64,
    panics_contained: AtomicU64,
}

/// The memoizing, thread-safe specialization layer over [`Rewriter`]. All
/// methods take `&self`; share it across threads by reference (e.g. from
/// `std::thread::scope`) or in an `Arc`. See the module docs for the
/// design.
pub struct SpecializationManager {
    cache: ShardedCache,
    negative: NegativeCache,
    inflight: InflightTable,
    queue: JobQueue,
    budget_bytes: usize,
    counters: Counters,
    metrics: Arc<MetricsRegistry>,
    sink: RwLock<Option<Box<dyn EventSink>>>,
    gate: RwLock<Option<Box<dyn PublishGate>>>,
}

impl Default for SpecializationManager {
    fn default() -> Self {
        Self::new()
    }
}

impl SpecializationManager {
    /// Manager with the default budget (a quarter of the JIT segment) and
    /// shard count.
    pub fn new() -> Self {
        Self::with_budget((layout::JIT_SIZE / 4) as usize)
    }

    /// Manager bounded by `budget_bytes` of cached code.
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self::with_budget_and_shards(budget_bytes, shards::DEFAULT_SHARDS)
    }

    /// Manager bounded by `budget_bytes`, with `shards` cache shards
    /// (rounded up to a power of two).
    pub fn with_budget_and_shards(budget_bytes: usize, shards: usize) -> Self {
        SpecializationManager {
            cache: ShardedCache::new(shards),
            negative: NegativeCache::new(shards, NegativePolicy::default()),
            inflight: InflightTable::default(),
            queue: JobQueue::new(),
            budget_bytes,
            counters: Counters::default(),
            metrics: Arc::new(MetricsRegistry::new()),
            sink: RwLock::new(None),
            gate: RwLock::new(None),
        }
    }

    /// Replace the negative-cache policy (backoff base, attempt cap).
    /// Existing negative entries are dropped — the new policy starts from
    /// a clean slate.
    pub fn with_negative_policy(mut self, policy: NegativePolicy) -> Self {
        self.negative = NegativeCache::new(shards::DEFAULT_SHARDS, policy);
        self
    }

    /// The always-on metrics registry every manager event is folded into.
    /// Clone the `Arc` to export from another thread (e.g. a Prometheus
    /// scrape endpoint) while the manager keeps recording.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Attach an event sink (replacing any previous one).
    pub fn set_sink(&self, sink: Box<dyn EventSink>) {
        *unpoison(self.sink.write()) = Some(sink);
    }

    /// Detach and return the current sink.
    pub fn take_sink(&self) -> Option<Box<dyn EventSink>> {
        unpoison(self.sink.write()).take()
    }

    /// Enable `verify_on_publish`: every finished rewrite (synchronous or
    /// deferred) must pass `gate` before it becomes visible. Replaces any
    /// previous gate.
    pub fn set_publish_gate(&self, gate: Box<dyn PublishGate>) {
        *unpoison(self.gate.write()) = Some(gate);
    }

    /// Detach and return the current publish gate.
    pub fn take_publish_gate(&self) -> Option<Box<dyn PublishGate>> {
        unpoison(self.gate.write()).take()
    }

    /// Aggregated counters (a consistent-enough snapshot: each field is
    /// individually exact, cross-field skew is bounded by in-flight
    /// requests).
    pub fn stats(&self) -> CacheStats {
        let c = &self.counters;
        CacheStats {
            hits: c.hits.load(Ordering::Acquire),
            misses: c.misses.load(Ordering::Acquire),
            coalesced: c.coalesced.load(Ordering::Acquire),
            deferred: c.deferred.load(Ordering::Acquire),
            published: c.published.load(Ordering::Acquire),
            evictions: c.evictions.load(Ordering::Acquire),
            resident_bytes: self.cache.resident_bytes(),
            traced_total: c.traced_total.load(Ordering::Acquire),
            rewrite_ns_total: c.rewrite_ns_total.load(Ordering::Acquire),
            dispatchers_built: c.dispatchers_built.load(Ordering::Acquire),
            denied: c.denied.load(Ordering::Acquire),
            invalidated: c.invalidated.load(Ordering::Acquire),
            stale: c.stale.load(Ordering::Acquire),
            panics_contained: c.panics_contained.load(Ordering::Acquire),
            negative_entries: self.negative.len(),
        }
    }

    /// The configured cache byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of cached variants.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.len() == 0
    }

    /// Drop every cached variant (counters are kept).
    pub fn clear(&self) {
        self.cache.clear();
        self.sync_resident_gauges();
    }

    fn emit(&self, ev: Event) {
        // The registry comes first and unconditionally: metrics must not
        // depend on a sink being attached.
        self.metrics.record_event(&ev);
        if let Some(sink) = unpoison(self.sink.read()).as_ref() {
            sink.event(&ev);
        }
    }

    /// Refresh the cache-residency gauges from the authoritative cache
    /// accounting (called after inserts and evictions).
    fn sync_resident_gauges(&self) {
        self.metrics
            .gauge_set(Gge::ResidentBytes, self.cache.resident_bytes() as i64);
        self.metrics
            .gauge_set(Gge::ResidentVariants, self.cache.len() as i64);
    }

    /// Refresh the negative-cache gauge from the authoritative count.
    fn sync_negative_gauge(&self) {
        self.metrics
            .gauge_set(Gge::NegativeEntries, self.negative.len() as i64);
    }

    fn note_hit(&self, func: u64, v: &Arc<Variant>) {
        self.counters.hits.fetch_add(1, Ordering::AcqRel);
        self.emit(Event::Hit {
            func,
            entry: v.entry,
        });
    }

    fn note_denied(&self, func: u64, key: &CacheKey) {
        self.counters.denied.fetch_add(1, Ordering::AcqRel);
        self.emit(Event::Denied {
            func,
            attempts: self.negative.attempts(key).unwrap_or(0),
        });
    }

    fn note_panic_contained(&self) {
        self.counters
            .panics_contained
            .fetch_add(1, Ordering::AcqRel);
        self.metrics.count(Ctr::PanicsContained, 1);
    }

    /// The synchronous memoized entry point: return the cached variant
    /// for `(func, req)` or rewrite, insert and return it. A cache hit
    /// costs one shard-lock hash lookup — no decoding, tracing, passes or
    /// encoding. Concurrent misses on the same key coalesce onto a single
    /// rewrite.
    pub fn get_or_rewrite(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
    ) -> Result<Arc<Variant>, RewriteError> {
        self.obtain(img, func, req).map(|(v, _)| v)
    }

    /// [`get_or_rewrite`](Self::get_or_rewrite) addressing the function by
    /// its image symbol.
    pub fn get_or_rewrite_named(
        &self,
        img: &Image,
        name: &str,
        req: &SpecRequest,
    ) -> Result<Arc<Variant>, RewriteError> {
        let func = img
            .lookup(name)
            .ok_or_else(|| RewriteError::BadConfig(format!("unknown symbol `{name}`")))?;
        self.get_or_rewrite(img, func, req)
    }

    /// The non-blocking entry point: a hit answers with the specialized
    /// variant; a miss inside [`run_deferred`](Self::run_deferred) queues
    /// the rewrite and answers with the *original* entry immediately;
    /// a miss outside any deferred scope falls back to the synchronous
    /// [`get_or_rewrite`](Self::get_or_rewrite) path.
    pub fn request(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
    ) -> Result<Dispatch, RewriteError> {
        let key = CacheKey {
            func,
            fingerprint: req.fingerprint(),
        };
        if let Some(v) = self.cache.lookup(&key) {
            self.note_hit(func, &v);
            return Ok(Dispatch::Specialized(v));
        }
        // A key already known to fail is answered with the original entry
        // at shard-lookup cost: no queueing, no tracing, no error — the
        // caller asked "what should I call" and the answer is "the
        // original, same as when the rewrite first failed".
        if let Verdict::Deny(_) = self.negative.consult(&key) {
            self.note_denied(func, &key);
            return Ok(Dispatch::Original {
                func,
                deferred: false,
            });
        }
        match self.queue.push(Job {
            key,
            func,
            req: req.clone(),
        }) {
            Enqueue::Queued => {
                self.counters.deferred.fetch_add(1, Ordering::AcqRel);
                self.emit(Event::Deferred { func });
                Ok(Dispatch::Original {
                    func,
                    deferred: true,
                })
            }
            Enqueue::AlreadyQueued => Ok(Dispatch::Original {
                func,
                deferred: true,
            }),
            Enqueue::Closed => self
                .obtain(img, func, req)
                .map(|(v, _)| Dispatch::Specialized(v)),
        }
    }

    /// Run `f` with `workers` background rewrite threads attached (scoped,
    /// bounded; no detached threads survive this call). While active,
    /// [`request`](Self::request) defers misses to the pool. On exit the
    /// queue closes and the workers drain it, so every rewrite queued
    /// inside `f` is published before `run_deferred` returns.
    pub fn run_deferred<R>(&self, img: &Image, workers: usize, f: impl FnOnce() -> R) -> R {
        let workers = workers.max(1);
        self.queue.open();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| self.drain_jobs(img));
            }
            let r = f();
            self.queue.close();
            r
        })
    }

    /// Worker loop: pop jobs until the queue is closed and drained. Jobs
    /// go through the ordinary single-flight path, so a synchronous
    /// caller racing a worker coalesces rather than double-tracing.
    /// Each job runs under `catch_unwind`: `obtain` already contains
    /// rewrite-pipeline panics, but a panicking *sink* (or any other
    /// manager hook) would otherwise unwind through `std::thread::scope`
    /// and abort the whole batch — here it fails one job and is counted.
    fn drain_jobs(&self, img: &Image) {
        while let Some(job) = self.queue.pop() {
            // A failed deferred rewrite is dropped silently here — the
            // Miss event already fired, the failure is negatively cached,
            // and later synchronous requests for the key surface the
            // error to a caller.
            let contained = catch_unwind(AssertUnwindSafe(|| {
                if let Ok((v, Outcome::Rewrote)) = self.obtain(img, job.func, &job.req) {
                    self.counters.published.fetch_add(1, Ordering::AcqRel);
                    self.emit(Event::Published {
                        func: job.func,
                        entry: v.entry,
                    });
                }
            }));
            if contained.is_err() {
                self.note_panic_contained();
            }
        }
    }

    /// Cache lookup, then single-flight rewrite: leader traces, followers
    /// subscribe.
    fn obtain(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
    ) -> Result<(Arc<Variant>, Outcome), RewriteError> {
        let key = CacheKey {
            func,
            fingerprint: req.fingerprint(),
        };
        if let Some(v) = self.cache.lookup(&key) {
            self.note_hit(func, &v);
            return Ok((v, Outcome::Hit));
        }
        // Denial path: a key already known to fail answers with the
        // memoized error at shard-lookup cost. `Retry` means the backoff
        // window elapsed; the request falls through to the single-flight
        // path, so concurrent retriers still trace at most once.
        if let Verdict::Deny(e) = self.negative.consult(&key) {
            self.note_denied(func, &key);
            return Err(e);
        }
        match self.inflight.join(key) {
            Join::Follower(flight) => {
                self.counters.coalesced.fetch_add(1, Ordering::AcqRel);
                self.emit(Event::Coalesced { func });
                flight.wait().map(|v| (v, Outcome::Coalesced))
            }
            Join::Leader(lease) => {
                // Double-check under the lease: a previous leader may have
                // published between our miss and winning the flight.
                if let Some(v) = self.cache.lookup(&key) {
                    self.note_hit(func, &v);
                    lease.resolve(Ok(Arc::clone(&v)));
                    return Ok((v, Outcome::Hit));
                }
                self.counters.misses.fetch_add(1, Ordering::AcqRel);
                self.emit(Event::Miss { func });
                self.metrics.gauge_add(Gge::InflightRewrites, 1);
                // Contain pipeline panics at this boundary: one
                // pathological function fails its own request (as
                // `Internal`, negatively cached like any other failure)
                // instead of unwinding into the caller or worker pool —
                // the lease would resolve via `Drop`, but every follower
                // and retrier would then re-trace the same panic.
                let rewritten =
                    catch_unwind(AssertUnwindSafe(|| Rewriter::new(img).rewrite(func, req)))
                        .unwrap_or_else(|p| {
                            self.note_panic_contained();
                            Err(RewriteError::Internal(panic_message(p.as_ref())))
                        });
                self.metrics.gauge_add(Gge::InflightRewrites, -1);
                // The publish gate inspects the finished-but-unpublished
                // variant; a rejection becomes a rewrite failure like any
                // other (negatively cached, followers see the error,
                // dispatch falls back to the original).
                let rewritten =
                    rewritten.and_then(|res| self.gate_check(img, func, req, &res).map(|()| res));
                match rewritten {
                    Ok(res) => {
                        self.negative.forget(&key);
                        self.sync_negative_gauge();
                        self.counters
                            .traced_total
                            .fetch_add(res.stats.traced, Ordering::AcqRel);
                        self.counters
                            .rewrite_ns_total
                            .fetch_add(res.stats.total_ns(), Ordering::AcqRel);
                        self.emit(Event::Rewritten {
                            func,
                            entry: res.entry,
                            code_len: res.code_len,
                            stats: res.stats,
                        });
                        let variant = Arc::new(Variant {
                            func,
                            entry: res.entry,
                            code_len: res.code_len,
                            stats: res.stats,
                            guards: req.guard_conditions(),
                            snapshot: res.snapshot,
                        });
                        // Publish to the cache *before* resolving the
                        // flight: anyone past the flight sees the cache.
                        self.cache.insert(key, Arc::clone(&variant), req.clone());
                        self.evict_to_budget(key);
                        self.sync_resident_gauges();
                        lease.resolve(Ok(Arc::clone(&variant)));
                        Ok((variant, Outcome::Rewrote))
                    }
                    Err(e) => {
                        self.metrics.count(Ctr::RewriteFailures, 1);
                        self.negative.record_failure(&key, &e);
                        self.sync_negative_gauge();
                        lease.resolve(Err(e.clone()));
                        Err(e)
                    }
                }
            }
        }
    }

    /// Run the configured publish gate (if any) over a finished rewrite.
    /// Gate panics are contained here like rewrite panics: the variant
    /// fails its own request instead of unwinding into the caller.
    fn gate_check(
        &self,
        img: &Image,
        func: u64,
        req: &SpecRequest,
        res: &crate::RewriteResult,
    ) -> Result<(), RewriteError> {
        let gate = unpoison(self.gate.read());
        let Some(gate) = gate.as_ref() else {
            return Ok(());
        };
        let t0 = std::time::Instant::now();
        let verdict = catch_unwind(AssertUnwindSafe(|| gate.inspect(img, func, req, res)));
        self.metrics
            .observe(Hst::VerifyNs, t0.elapsed().as_nanos() as u64);
        match verdict {
            Ok(Ok(())) => {
                self.metrics.count(Ctr::VerifyPassed, 1);
                Ok(())
            }
            Ok(Err(r)) => {
                self.metrics.count(Ctr::VerifyRejected, 1);
                Err(RewriteError::VerifyRejected {
                    findings: r.findings,
                    first: r.summary,
                })
            }
            Err(p) => {
                self.note_panic_contained();
                Err(RewriteError::Internal(format!(
                    "publish gate panicked: {}",
                    panic_message(p.as_ref())
                )))
            }
        }
    }

    /// Evict highest-score entries until the budget holds. `keep` (the
    /// entry just inserted) is never evicted: a single oversized variant
    /// may transiently exceed the budget rather than thrash.
    fn evict_to_budget(&self, keep: CacheKey) {
        while self.cache.resident_bytes() > self.budget_bytes && self.cache.len() > 1 {
            let Some(v) = self.cache.evict_victim(keep) else {
                break;
            };
            self.counters.evictions.fetch_add(1, Ordering::AcqRel);
            self.emit(Event::Evicted {
                func: v.func,
                entry: v.entry,
                code_len: v.code_len,
            });
        }
    }

    /// Drop every cached variant of `func` and every negative entry for
    /// it (its failures may have been data-dependent too). Returns the
    /// number of variants dropped. Subsequent requests miss and
    /// re-specialize against current data.
    pub fn invalidate(&self, func: u64) -> usize {
        let dropped = self.cache.remove_matching(|v| v.func == func);
        self.negative.forget_func(func);
        self.note_invalidated(&dropped);
        dropped.len()
    }

    /// Drop every cached variant whose folded known-memory ranges overlap
    /// `range` — the precise invalidation for "I just mutated these
    /// bytes". Variants that never folded the range are untouched, no
    /// image access happens, and the cost is one pass over the cache.
    /// Returns the number of variants dropped.
    pub fn invalidate_data(&self, range: Range<u64>) -> usize {
        let dropped = self.cache.remove_matching(|v| v.snapshot.overlaps(&range));
        self.note_invalidated(&dropped);
        dropped.len()
    }

    /// Re-hash every variant's snapshot against the current image and
    /// drop exactly the variants whose folded bytes changed — the
    /// conservative sweep for "something may have been mutated, I don't
    /// know what". Each stale variant fires a [`Event::Stale`] followed by
    /// [`Event::Invalidated`]; inside a deferred scope its rewrite is
    /// re-enqueued (from the retained producing request), so the fresh
    /// variant is published without the original caller's help. Returns
    /// the number of variants dropped.
    pub fn revalidate(&self, img: &Image) -> usize {
        let dropped = self.cache.remove_matching(|v| !v.snapshot.matches(img));
        for (_, _, v) in &dropped {
            self.counters.stale.fetch_add(1, Ordering::AcqRel);
            self.emit(Event::Stale {
                func: v.func,
                entry: v.entry,
            });
        }
        self.note_invalidated(&dropped);
        for (key, req, v) in &dropped {
            // `Closed` outside a deferred scope — then the next request
            // for the key simply re-specializes synchronously.
            self.queue.push(Job {
                key: *key,
                func: v.func,
                req: req.clone(),
            });
        }
        dropped.len()
    }

    /// Shared invalidation bookkeeping: count, emit, resync gauges.
    fn note_invalidated(&self, dropped: &[(CacheKey, SpecRequest, Arc<Variant>)]) {
        for (_, _, v) in dropped {
            self.counters.invalidated.fetch_add(1, Ordering::AcqRel);
            self.emit(Event::Invalidated {
                func: v.func,
                entry: v.entry,
            });
        }
        if !dropped.is_empty() {
            self.sync_resident_gauges();
        }
        self.sync_negative_gauge();
    }

    /// The memoized failure for `(func, req)`, if the negative cache
    /// holds one.
    pub fn failure_of(&self, func: u64, req: &SpecRequest) -> Option<RewriteError> {
        self.negative.failure_of(&CacheKey {
            func,
            fingerprint: req.fingerprint(),
        })
    }

    /// Live entries in the negative cache.
    pub fn negative_len(&self) -> usize {
        self.negative.len()
    }

    /// Cached variants of `func`, hottest (most hits, then most recent)
    /// first — the order the dispatcher tests them in.
    pub fn variants_of(&self, func: u64) -> Vec<Arc<Variant>> {
        let mut entries = self.cache.snapshot_func(func);
        entries.sort_by(|(ah, al, af, _), (bh, bl, bf, _)| (bh, bl, af).cmp(&(ah, al, bf)));
        entries.into_iter().map(|(_, _, _, v)| v).collect()
    }

    /// Emit a guarded dispatch stub over every cached *guardable* variant
    /// of `func` (§III.D, generalized to N variants and multi-parameter
    /// conjunctions). The stub tail-jumps to the first variant whose
    /// guarded parameters all match and falls through to `original`
    /// otherwise — callers use it as a drop-in replacement. Variants whose
    /// known parameters can't be register-compared (known doubles) are
    /// skipped; with no eligible variant the stub degenerates to a
    /// trampoline onto the original.
    ///
    /// The chain is built from a snapshot of the cache and emitted at a
    /// fresh JIT address, so concurrent publication of new variants never
    /// corrupts an existing stub — rebuild and swap the pointer to pick
    /// them up.
    pub fn build_dispatcher(
        &self,
        img: &Image,
        func: u64,
        original: u64,
    ) -> Result<u64, RewriteError> {
        let cases = self.dispatch_cases(func);
        let entry = guard::make_guard_chain(img, &cases, original)?;
        self.note_dispatcher(func, entry, cases.len());
        Ok(entry)
    }

    /// [`build_dispatcher`](Self::build_dispatcher) emitting a
    /// *self-counting* stub: each case — and the fall-through to the
    /// original — increments its slot of the returned [`CounterPage`] on
    /// every call, so predicted hot values can be validated against the
    /// dispatch rates the stub actually sees. Dispatch behavior is
    /// bit-identical to the plain stub.
    pub fn build_dispatcher_counting(
        &self,
        img: &Image,
        func: u64,
        original: u64,
    ) -> Result<(u64, CounterPage), RewriteError> {
        let cases = self.dispatch_cases(func);
        let (entry, page) = guard::make_guard_chain_counting(img, &cases, original)?;
        self.note_dispatcher(func, entry, cases.len());
        Ok((entry, page))
    }

    /// Guardable cached variants of `func` as dispatch cases, hottest
    /// first.
    fn dispatch_cases(&self, func: u64) -> Vec<GuardCase> {
        self.variants_of(func)
            .iter()
            .filter_map(|v| {
                v.guards.as_ref().map(|g| GuardCase {
                    conds: g.clone(),
                    target: v.entry,
                })
            })
            .collect()
    }

    fn note_dispatcher(&self, func: u64, entry: u64, variants: usize) {
        self.counters
            .dispatchers_built
            .fetch_add(1, Ordering::AcqRel);
        self.emit(Event::DispatcherBuilt {
            func,
            entry,
            variants,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert_dummy(m: &SpecializationManager, func: u64, entry: u64, hits: u64) {
        let key = CacheKey {
            func,
            fingerprint: entry,
        };
        m.cache.insert(
            key,
            Arc::new(Variant {
                func,
                entry,
                code_len: 16,
                stats: RewriteStats::default(),
                guards: None,
                snapshot: KnownSnapshot::default(),
            }),
            SpecRequest::new(),
        );
        for _ in 0..hits {
            m.cache.lookup(&key);
        }
    }

    #[test]
    fn variants_of_orders_hot_first() {
        let m = SpecializationManager::new();
        for (entry, hits) in [(100u64, 1u64), (200, 5), (300, 3)] {
            insert_dummy(&m, 7, entry, hits);
        }
        let order: Vec<u64> = m.variants_of(7).iter().map(|v| v.entry).collect();
        assert_eq!(order, vec![200, 300, 100]);
        assert!(m.variants_of(8).is_empty());
    }

    #[test]
    fn manager_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<SpecializationManager>();
    }

    #[test]
    fn eviction_never_picks_the_kept_key() {
        let m = SpecializationManager::with_budget(16);
        insert_dummy(&m, 1, 100, 0);
        insert_dummy(&m, 1, 200, 0);
        let keep = CacheKey {
            func: 1,
            fingerprint: 200,
        };
        m.evict_to_budget(keep);
        let left: Vec<u64> = m.variants_of(1).iter().map(|v| v.entry).collect();
        assert_eq!(left, vec![200]);
        assert_eq!(m.stats().evictions, 1);
    }
}
