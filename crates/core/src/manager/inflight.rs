//! Single-flight table: at most one rewrite per `(func, fingerprint)`.
//!
//! The first requester of a missing key becomes the *leader* and holds a
//! [`FlightLease`]; everyone else arriving while the flight is open
//! becomes a *follower* and blocks on the flight's condvar until the
//! leader publishes a result. This is what makes "each distinct
//! fingerprint is traced exactly once" hold under concurrency: the trace
//! happens inside the lease, and the lease is handed out once.
//!
//! Ordering: the leader inserts the variant into the cache *before*
//! resolving the lease, so by the time a follower (or any later
//! requester) observes completion, the cache lookup succeeds and the
//! emitted code bytes are visible (the shard mutex release/acquire pair
//! provides the happens-before edge).

use super::{CacheKey, Variant};
use crate::error::RewriteError;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Recover the guard from a poisoned lock: flight state transitions are
/// single-statement, so another thread's panic cannot leave them torn —
/// and a wedged flight table would hang every follower forever.
fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

pub(super) type FlightResult = Result<Arc<Variant>, RewriteError>;

/// One in-progress rewrite; followers park on `cv` until `done` is set.
pub(super) struct Flight {
    done: Mutex<Option<FlightResult>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, res: FlightResult) {
        *unpoison(self.done.lock()) = Some(res);
        self.cv.notify_all();
    }

    /// Block until the leader resolves, then clone its result.
    pub fn wait(&self) -> FlightResult {
        let mut g = unpoison(self.done.lock());
        while g.is_none() {
            g = unpoison(self.cv.wait(g));
        }
        g.as_ref().unwrap().clone()
    }
}

/// What `join` handed out: the exclusive right to rewrite, or a ticket to
/// wait for whoever holds it.
pub(super) enum Join<'a> {
    Leader(FlightLease<'a>),
    Follower(Arc<Flight>),
}

/// Leader-side handle. Dropping it unresolved (e.g. a panicking rewrite
/// pass) resolves with an error so followers never hang.
pub(super) struct FlightLease<'a> {
    table: &'a InflightTable,
    key: CacheKey,
    flight: Arc<Flight>,
    resolved: bool,
}

impl FlightLease<'_> {
    /// Publish the outcome: unregister the flight, then wake followers.
    /// Callers must have inserted a successful variant into the cache
    /// *before* this, so post-removal requesters hit the cache.
    pub fn resolve(mut self, res: FlightResult) {
        self.finish(res);
    }

    fn finish(&mut self, res: FlightResult) {
        unpoison(self.table.flights.lock()).remove(&self.key);
        self.flight.resolve(res);
        self.resolved = true;
    }
}

impl Drop for FlightLease<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            self.finish(Err(RewriteError::Internal(
                "specialization leader abandoned its flight".into(),
            )));
        }
    }
}

#[derive(Default)]
pub(super) struct InflightTable {
    flights: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

impl InflightTable {
    /// Join the flight for `key`, creating it (and becoming leader) if
    /// none is open.
    pub fn join(&self, key: CacheKey) -> Join<'_> {
        let mut m = unpoison(self.flights.lock());
        if let Some(f) = m.get(&key) {
            Join::Follower(Arc::clone(f))
        } else {
            let f = Arc::new(Flight::new());
            m.insert(key, Arc::clone(&f));
            Join::Leader(FlightLease {
                table: self,
                key,
                flight: f,
                resolved: false,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u64) -> CacheKey {
        CacheKey {
            func: 1,
            fingerprint: fp,
        }
    }

    #[test]
    fn second_joiner_is_follower_until_resolution() {
        let t = InflightTable::default();
        let Join::Leader(lease) = t.join(key(7)) else {
            panic!("first joiner must lead");
        };
        assert!(matches!(t.join(key(7)), Join::Follower(_)));
        // A different key gets its own flight.
        assert!(matches!(t.join(key(8)), Join::Leader(_)));

        lease.resolve(Err(RewriteError::OutOfCodeSpace));
        // Flight is gone: the next joiner leads again.
        assert!(matches!(t.join(key(7)), Join::Leader(_)));
    }

    #[test]
    fn abandoned_lease_resolves_with_error() {
        let t = InflightTable::default();
        let Join::Leader(lease) = t.join(key(9)) else {
            panic!()
        };
        let Join::Follower(f) = t.join(key(9)) else {
            panic!()
        };
        drop(lease); // simulated leader panic
        assert!(matches!(f.wait(), Err(RewriteError::Internal(_))));
        assert!(matches!(t.join(key(9)), Join::Leader(_)));
    }

    #[test]
    fn followers_across_threads_get_the_leaders_result() {
        let t = InflightTable::default();
        let Join::Leader(lease) = t.join(key(3)) else {
            panic!()
        };
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for _ in 0..4 {
                let Join::Follower(f) = t.join(key(3)) else {
                    panic!("leader already seated")
                };
                joins.push(s.spawn(move || f.wait()));
            }
            lease.resolve(Err(RewriteError::OutOfCodeSpace));
            for j in joins {
                assert!(matches!(
                    j.join().unwrap(),
                    Err(RewriteError::OutOfCodeSpace)
                ));
            }
        });
    }
}
