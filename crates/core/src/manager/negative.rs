//! Negative caching of failed specialization attempts.
//!
//! A request that fails to specialize — undecodable instruction, trace
//! budget blown, division fault on known operands — fails again the next
//! time the *same* request arrives, because the rewrite is deterministic
//! in the request and the image. Without memoization every such request
//! pays the full trace cost just to rediscover the failure, which turns a
//! single pathological hot function into a standing tax on the whole
//! manager. The negative cache remembers the failure per
//! [`CacheKey`] and answers repeats with the memoized error at
//! shard-lookup cost.
//!
//! Failures are not always permanent (the user may fix the data the trace
//! faulted on, or raise a budget via a new config — though that changes
//! the fingerprint), so entries *decay*: after a failure the cache denies
//! the next `backoff(attempts)` requests, then lets exactly one through to
//! retry (single-flight coalesces concurrent retriers). Each repeated
//! failure doubles the backoff window until `attempt_cap`, after which the
//! entry denies forever — the failure is treated as structural.

use super::CacheKey;
use crate::error::RewriteError;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// Tuning knobs for the negative cache.
#[derive(Debug, Clone, Copy)]
pub struct NegativePolicy {
    /// Denials before the first retry; doubles per failed attempt.
    pub base_backoff: u64,
    /// Failed attempts after which the entry denies permanently.
    pub attempt_cap: u32,
}

impl Default for NegativePolicy {
    fn default() -> Self {
        NegativePolicy {
            base_backoff: 8,
            attempt_cap: 10,
        }
    }
}

/// One memoized failure.
#[derive(Debug)]
struct NegEntry {
    err: RewriteError,
    /// Failed rewrite attempts so far (>= 1 once an entry exists).
    attempts: u32,
    /// Denials since the last failed attempt.
    denials: u64,
}

/// What the cache says about an incoming request.
#[derive(Debug)]
pub enum Verdict {
    /// No memoized failure; proceed normally.
    Miss,
    /// Known-bad and inside the backoff window (or permanently capped):
    /// answer with the memoized error without tracing anything.
    Deny(RewriteError),
    /// Known-bad but the backoff window has elapsed: let this request
    /// re-attempt the rewrite.
    Retry,
}

/// Sharded `(func, fingerprint) -> NegEntry` map. Sharding mirrors the
/// positive cache so a hot failure path contends no worse than a hot hit
/// path.
pub struct NegativeCache {
    shards: Vec<Mutex<HashMap<CacheKey, NegEntry>>>,
    policy: NegativePolicy,
}

fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl NegativeCache {
    /// A negative cache with `shards` shards under `policy`.
    pub fn new(shards: usize, policy: NegativePolicy) -> Self {
        let shards = shards.max(1);
        NegativeCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            policy,
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, NegEntry>> {
        let mix = key.fingerprint ^ key.func.rotate_left(17);
        &self.shards[(mix as usize) % self.shards.len()]
    }

    /// Denials the entry serves before its next retry: `base << (attempts-1)`,
    /// saturating. Attempts at or beyond the cap never retry.
    fn backoff(&self, attempts: u32) -> u64 {
        self.policy
            .base_backoff
            .saturating_mul(1u64 << (attempts - 1).min(62))
    }

    /// Look up `key`. `Deny` counts itself against the backoff window;
    /// `Miss` and `Retry` do not mutate the entry, so consulting twice on
    /// one request path (e.g. `request` falling through to `obtain`) is
    /// harmless.
    pub fn consult(&self, key: &CacheKey) -> Verdict {
        let mut map = unpoison(self.shard(key).lock());
        let Some(e) = map.get_mut(key) else {
            return Verdict::Miss;
        };
        if e.attempts >= self.policy.attempt_cap {
            return Verdict::Deny(e.err.clone());
        }
        if e.denials < self.backoff(e.attempts) {
            e.denials += 1;
            return Verdict::Deny(e.err.clone());
        }
        Verdict::Retry
    }

    /// Non-mutating probe: would [`consult`](Self::consult) deny `key`
    /// right now? Unlike `consult`, a `true` answer does *not* count
    /// against the backoff window — for policy layers (tiering promotion)
    /// that need to know whether enqueueing is futile without spending
    /// the denial budget real requests decay on.
    pub fn would_deny(&self, key: &CacheKey) -> bool {
        let map = unpoison(self.shard(key).lock());
        map.get(key).is_some_and(|e| {
            e.attempts >= self.policy.attempt_cap || e.denials < self.backoff(e.attempts)
        })
    }

    /// Memoize a failed attempt for `key`: bump the attempt count, reset
    /// the denial window, remember the newest error.
    pub fn record_failure(&self, key: &CacheKey, err: &RewriteError) {
        let mut map = unpoison(self.shard(key).lock());
        let e = map.entry(*key).or_insert(NegEntry {
            err: err.clone(),
            attempts: 0,
            denials: 0,
        });
        e.err = err.clone();
        e.attempts = e.attempts.saturating_add(1);
        e.denials = 0;
    }

    /// Number of failed attempts memoized for `key`, if any.
    pub fn attempts(&self, key: &CacheKey) -> Option<u32> {
        unpoison(self.shard(key).lock())
            .get(key)
            .map(|e| e.attempts)
    }

    /// The memoized error for `key`, if any.
    pub fn failure_of(&self, key: &CacheKey) -> Option<RewriteError> {
        unpoison(self.shard(key).lock())
            .get(key)
            .map(|e| e.err.clone())
    }

    /// Drop the entry for `key` (a retry succeeded).
    pub fn forget(&self, key: &CacheKey) {
        unpoison(self.shard(key).lock()).remove(key);
    }

    /// Drop every entry for `func` (the function was invalidated — its
    /// failure may have been data-dependent).
    pub fn forget_func(&self, func: u64) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let mut map = unpoison(s.lock());
                let before = map.len();
                map.retain(|k, _| k.func != func);
                before - map.len()
            })
            .sum()
    }

    /// Drop everything.
    pub fn clear(&self) {
        for s in &self.shards {
            unpoison(s.lock()).clear();
        }
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| unpoison(s.lock()).len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(func: u64, fp: u64) -> CacheKey {
        CacheKey {
            func,
            fingerprint: fp,
        }
    }

    #[test]
    fn miss_then_deny_then_retry() {
        let neg = NegativeCache::new(
            4,
            NegativePolicy {
                base_backoff: 2,
                attempt_cap: 10,
            },
        );
        let k = key(0x1000, 42);
        assert!(matches!(neg.consult(&k), Verdict::Miss));
        neg.record_failure(&k, &RewriteError::TraceBudget);
        // Two denials, then a retry slot opens.
        assert!(matches!(neg.consult(&k), Verdict::Deny(_)));
        assert!(matches!(neg.consult(&k), Verdict::Deny(_)));
        assert!(matches!(neg.consult(&k), Verdict::Retry));
        // Retry is not consumed until the attempt fails again.
        assert!(matches!(neg.consult(&k), Verdict::Retry));
        // Second failure doubles the window.
        neg.record_failure(&k, &RewriteError::TraceBudget);
        for _ in 0..4 {
            assert!(matches!(neg.consult(&k), Verdict::Deny(_)));
        }
        assert!(matches!(neg.consult(&k), Verdict::Retry));
    }

    #[test]
    fn capped_attempts_deny_forever() {
        let neg = NegativeCache::new(
            1,
            NegativePolicy {
                base_backoff: 1,
                attempt_cap: 2,
            },
        );
        let k = key(0x2000, 7);
        neg.record_failure(&k, &RewriteError::TraceBudget);
        neg.record_failure(&k, &RewriteError::TraceBudget);
        for _ in 0..100 {
            assert!(matches!(neg.consult(&k), Verdict::Deny(_)));
        }
        assert_eq!(neg.attempts(&k), Some(2));
    }

    #[test]
    fn would_deny_probes_without_spending_the_window() {
        let neg = NegativeCache::new(
            1,
            NegativePolicy {
                base_backoff: 2,
                attempt_cap: 10,
            },
        );
        let k = key(0x1000, 42);
        assert!(!neg.would_deny(&k));
        neg.record_failure(&k, &RewriteError::TraceBudget);
        // Probing any number of times never advances the denial count...
        for _ in 0..50 {
            assert!(neg.would_deny(&k));
        }
        // ...so real requests still get the full window: two denials,
        // then the retry slot opens and the probe agrees.
        assert!(matches!(neg.consult(&k), Verdict::Deny(_)));
        assert!(matches!(neg.consult(&k), Verdict::Deny(_)));
        assert!(!neg.would_deny(&k));
        assert!(matches!(neg.consult(&k), Verdict::Retry));
    }

    #[test]
    fn forget_and_forget_func() {
        let neg = NegativeCache::new(4, NegativePolicy::default());
        let ka = key(0x1000, 1);
        let kb = key(0x1000, 2);
        let kc = key(0x3000, 3);
        for k in [&ka, &kb, &kc] {
            neg.record_failure(k, &RewriteError::TraceBudget);
        }
        assert_eq!(neg.len(), 3);
        neg.forget(&kc);
        assert!(matches!(neg.consult(&kc), Verdict::Miss));
        assert_eq!(neg.forget_func(0x1000), 2);
        assert!(neg.is_empty());
    }

    #[test]
    fn newest_error_wins() {
        let neg = NegativeCache::new(1, NegativePolicy::default());
        let k = key(0x1000, 1);
        neg.record_failure(&k, &RewriteError::TraceBudget);
        neg.record_failure(&k, &RewriteError::BlockBudget);
        assert!(matches!(
            neg.failure_of(&k),
            Some(RewriteError::BlockBudget)
        ));
    }
}
