//! Deferred-mode job queue for the background rewrite workers.
//!
//! In deferred mode a cache miss does not rewrite on the caller's thread:
//! [`super::SpecializationManager::request`] pushes a [`Job`] here and
//! returns the original entry immediately — the paper's "delayed step"
//! (§V.C) made literal. A bounded pool of scoped worker threads pops jobs
//! and performs the rewrite through the ordinary single-flight path, so a
//! synchronous caller racing a worker still coalesces instead of tracing
//! twice.
//!
//! The queue dedupes at enqueue time (`queued` set): a hot fingerprint
//! requested from eight threads costs one job, not eight. Closing the
//! queue wakes every worker; workers drain whatever is left before
//! exiting, which is why `run_deferred` guarantees every queued variant is
//! published by the time it returns.

use super::CacheKey;
use crate::error::RewriteError;
use crate::request::SpecRequest;
use std::collections::{HashSet, VecDeque};
use std::sync::{Condvar, Mutex, PoisonError};

/// Recover the guard from a poisoned lock. The queue invariants (dedupe
/// set mirrors the deque) are re-established before every unlock, and a
/// queue wedged by one panicking worker would deadlock `run_deferred`'s
/// close-and-drain protocol for the rest.
fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// A queued rewrite: everything a worker needs to reproduce the request.
pub(super) struct Job {
    pub key: CacheKey,
    pub func: u64,
    pub req: SpecRequest,
}

/// Outcome of an enqueue attempt.
pub(super) enum Enqueue {
    /// Freshly queued; a worker will pick it up.
    Queued,
    /// Identical job already waiting — deduped.
    AlreadyQueued,
    /// Queue closed (no deferred scope active); caller must rewrite
    /// synchronously.
    Closed,
}

struct QState {
    jobs: VecDeque<Job>,
    queued: HashSet<CacheKey>,
    open: bool,
    /// Jobs discarded by an unwind-close ([`JobQueue::close_unwound`]);
    /// reported (then cleared) by the next [`JobQueue::begin_scope`] so
    /// lost work surfaces as a typed error instead of vanishing.
    lost: Option<usize>,
}

pub(super) struct JobQueue {
    state: Mutex<QState>,
    cv: Condvar,
}

impl JobQueue {
    pub fn new() -> Self {
        JobQueue {
            state: Mutex::new(QState {
                jobs: VecDeque::new(),
                queued: HashSet::new(),
                open: false,
                lost: None,
            }),
            cv: Condvar::new(),
        }
    }

    #[cfg(test)]
    pub fn open(&self) {
        unpoison(self.state.lock()).open = true;
    }

    /// Open the queue for a new deferred scope, surfacing queue history as
    /// typed errors: a still-open scope means nesting (which would let the
    /// inner scope's close drop the outer scope's jobs), and a pending
    /// unwind record means the previous scope discarded jobs. The unwind
    /// record is acknowledge-and-clear — returned once, then the next
    /// `begin_scope` starts clean.
    pub fn begin_scope(&self) -> Result<(), RewriteError> {
        let mut s = unpoison(self.state.lock());
        if s.open {
            return Err(RewriteError::DeferredScopeActive);
        }
        if let Some(lost) = s.lost.take() {
            return Err(RewriteError::DeferredScopeUnwound { lost });
        }
        s.open = true;
        Ok(())
    }

    /// Stop accepting jobs and wake every worker so it can drain and exit.
    pub fn close(&self) {
        unpoison(self.state.lock()).open = false;
        self.cv.notify_all();
    }

    /// Close during an unwind: the scope's workers are being torn down by
    /// a panic, so jobs still waiting will never run. Discard them, but
    /// *count* them into the `lost` record so the next [`Self::begin_scope`]
    /// reports the loss instead of silently proceeding.
    pub fn close_unwound(&self) {
        let mut s = unpoison(self.state.lock());
        s.open = false;
        let lost = s.jobs.len();
        s.jobs.clear();
        s.queued.clear();
        if lost > 0 {
            *s.lost.get_or_insert(0) += lost;
        }
        drop(s);
        self.cv.notify_all();
    }

    pub fn push(&self, job: Job) -> Enqueue {
        let mut s = unpoison(self.state.lock());
        if !s.open {
            return Enqueue::Closed;
        }
        if !s.queued.insert(job.key) {
            return Enqueue::AlreadyQueued;
        }
        s.jobs.push_back(job);
        drop(s);
        self.cv.notify_one();
        Enqueue::Queued
    }

    /// Jobs currently waiting (not yet popped by a worker).
    pub fn pending(&self) -> usize {
        unpoison(self.state.lock()).jobs.len()
    }

    /// Blocking pop: waits while the queue is open and empty; returns
    /// `None` once it is closed *and* drained.
    pub fn pop(&self) -> Option<Job> {
        let mut s = unpoison(self.state.lock());
        loop {
            if let Some(job) = s.jobs.pop_front() {
                s.queued.remove(&job.key);
                return Some(job);
            }
            if !s.open {
                return None;
            }
            s = unpoison(self.cv.wait(s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SpecRequest;

    fn job(fp: u64) -> Job {
        Job {
            key: CacheKey {
                func: 1,
                fingerprint: fp,
            },
            func: 1,
            req: SpecRequest::new(),
        }
    }

    #[test]
    fn closed_queue_rejects_and_open_dedupes() {
        let q = JobQueue::new();
        assert!(matches!(q.push(job(1)), Enqueue::Closed));
        q.open();
        assert!(matches!(q.push(job(1)), Enqueue::Queued));
        assert!(matches!(q.push(job(1)), Enqueue::AlreadyQueued));
        assert!(matches!(q.push(job(2)), Enqueue::Queued));
        // Popping releases the dedupe slot.
        assert_eq!(q.pop().unwrap().key.fingerprint, 1);
        assert!(matches!(q.push(job(1)), Enqueue::Queued));
    }

    #[test]
    fn workers_drain_after_close() {
        let q = JobQueue::new();
        q.open();
        q.push(job(1));
        q.push(job(2));
        q.close();
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none(), "closed and drained");
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = JobQueue::new();
        q.open();
        std::thread::scope(|s| {
            let h = s.spawn(|| q.pop());
            q.push(job(5));
            assert_eq!(h.join().unwrap().unwrap().key.fingerprint, 5);
            q.close();
        });
    }

    #[test]
    fn unwound_close_records_and_begin_scope_reports_once() {
        let q = JobQueue::new();
        q.begin_scope().unwrap();
        q.push(job(1));
        q.push(job(2));
        q.push(job(3));
        q.close_unwound();
        assert_eq!(q.pending(), 0, "unwind discards queued jobs");
        let err = q.begin_scope().unwrap_err();
        assert!(
            matches!(err, RewriteError::DeferredScopeUnwound { lost: 3 }),
            "got {err:?}"
        );
        // Acknowledge-and-clear: the next scope opens clean.
        q.begin_scope().unwrap();
        assert!(matches!(
            q.begin_scope().unwrap_err(),
            RewriteError::DeferredScopeActive
        ));
        q.close();
    }
}
