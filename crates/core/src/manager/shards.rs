//! Fingerprint-sharded variant cache with global byte accounting.
//!
//! The cache is split into `N` shards (a power of two), each guarding its
//! own `HashMap` with its own mutex; a key lives in the shard selected by
//! the low bits of its request fingerprint (FNV-1a output, so the bits are
//! well mixed). Hot warm-hit traffic on distinct fingerprints therefore
//! never contends on a common lock — the property `tables --exp conc`
//! measures. Resident bytes, entry count and the logical clock are global
//! atomics so the byte budget stays a single whole-cache bound rather than
//! `N` independent ones.

use super::{CacheKey, Variant};
use crate::request::SpecRequest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Recover the guard from a poisoned lock. Every shard mutex protects a
/// plain map whose invariants hold between statements, so a panic on
/// another thread (contained at the manager boundary anyway) must not
/// wedge the cache for everyone else.
fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Default shard count; enough that 8-16 threads rarely collide.
pub(super) const DEFAULT_SHARDS: usize = 8;

pub(super) struct CacheEntry {
    pub variant: Arc<Variant>,
    pub key: CacheKey,
    /// The request that produced the variant — kept so invalidation can
    /// re-enqueue the rewrite without the original caller's help.
    pub req: SpecRequest,
    pub last_used: u64,
    pub hits: u64,
}

impl CacheEntry {
    /// Eviction score at `now`: bigger means more evictable. Stale, large,
    /// rarely-hit variants score high; the just-used entry scores 0.
    pub fn score(&self, now: u64) -> u128 {
        let staleness = now.saturating_sub(self.last_used) as u128;
        staleness * self.variant.code_len as u128 / (self.hits as u128 + 1)
    }
}

pub(super) struct ShardedCache {
    shards: Vec<Mutex<HashMap<CacheKey, CacheEntry>>>,
    /// Power-of-two mask selecting a shard from a fingerprint.
    mask: usize,
    /// Code bytes resident across all shards.
    resident: AtomicUsize,
    /// Entries across all shards.
    count: AtomicUsize,
    /// Logical clock; every lookup/insert advances it.
    tick: AtomicU64,
}

impl ShardedCache {
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n - 1,
            resident: AtomicUsize::new(0),
            count: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, CacheEntry>> {
        &self.shards[key.fingerprint as usize & self.mask]
    }

    fn now(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Acquire)
    }

    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Fetch a variant, bumping its recency and hit count.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<Variant>> {
        let now = self.now();
        let mut s = unpoison(self.shard(key).lock());
        let e = s.get_mut(key)?;
        e.last_used = now;
        e.hits += 1;
        Some(Arc::clone(&e.variant))
    }

    /// Fetch a variant *without* touching recency or hit accounting —
    /// for observers (the tiering layer) that must not distort the very
    /// signal they read.
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<Variant>> {
        let s = unpoison(self.shard(key).lock());
        s.get(key).map(|e| Arc::clone(&e.variant))
    }

    /// Remove one entry by key, returning its producing request and
    /// variant — the demotion primitive. Byte accounting is adjusted
    /// globally; a concurrent dispatch holding the `Arc` keeps the code
    /// itself alive and callable (the JIT segment is a bump allocator, so
    /// the bytes are never reused).
    pub fn remove_key(&self, key: &CacheKey) -> Option<(SpecRequest, Arc<Variant>)> {
        let e = unpoison(self.shard(key).lock()).remove(key)?;
        self.resident
            .fetch_sub(e.variant.code_len, Ordering::AcqRel);
        self.count.fetch_sub(1, Ordering::AcqRel);
        Some((e.req, e.variant))
    }

    /// Snapshot every entry's `(key, hits)` pair, unordered — the tiering
    /// layer diffs consecutive snapshots into per-tick hit deltas. Shards
    /// are locked one at a time, so the snapshot is per-entry exact but
    /// only cross-entry consistent up to in-flight lookups (which land in
    /// the next delta).
    pub fn snapshot_hits(&self) -> Vec<(CacheKey, u64)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let s = unpoison(shard.lock());
            out.extend(s.values().map(|e| (e.key, e.hits)));
        }
        out
    }

    /// Credit `n` external hits (dispatch-stub counter deltas) to an
    /// entry: bumps recency and hit count as if `n` lookups had occurred,
    /// so LRU eviction sees stub traffic too. Returns whether the key was
    /// resident.
    pub fn credit(&self, key: &CacheKey, n: u64) -> bool {
        let now = self.now();
        let mut s = unpoison(self.shard(key).lock());
        let Some(e) = s.get_mut(key) else {
            return false;
        };
        e.last_used = now;
        e.hits += n;
        true
    }

    /// Insert (or replace) a variant; byte accounting is adjusted globally.
    pub fn insert(&self, key: CacheKey, variant: Arc<Variant>, req: SpecRequest) {
        let now = self.now();
        let code_len = variant.code_len;
        let prev = unpoison(self.shard(&key).lock()).insert(
            key,
            CacheEntry {
                variant,
                key,
                req,
                last_used: now,
                hits: 0,
            },
        );
        self.resident.fetch_add(code_len, Ordering::AcqRel);
        match prev {
            Some(p) => {
                self.resident
                    .fetch_sub(p.variant.code_len, Ordering::AcqRel);
            }
            None => {
                self.count.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Remove and return the globally highest-score entry other than
    /// `keep` as a `(key, producing request, variant)` triple, so the
    /// caller can hand the request to the tiering layer for possible
    /// re-promotion. Shards are scanned and locked one at a time (never
    /// nested), so a concurrent hit may rescue a candidate between scoring
    /// and removal — in that case the next round picks a new victim.
    pub fn evict_victim(&self, keep: CacheKey) -> Option<(CacheKey, SpecRequest, Arc<Variant>)> {
        let now = self.tick.load(Ordering::Relaxed);
        let mut best: Option<(u128, std::cmp::Reverse<u64>, CacheKey)> = None;
        for shard in &self.shards {
            let s = unpoison(shard.lock());
            for e in s.values() {
                if e.key == keep {
                    continue;
                }
                let cand = (e.score(now), std::cmp::Reverse(e.key.fingerprint), e.key);
                if best.as_ref().is_none_or(|b| (cand.0, cand.1) > (b.0, b.1)) {
                    best = Some(cand);
                }
            }
        }
        let (_, _, victim) = best?;
        let e = unpoison(self.shard(&victim).lock()).remove(&victim)?;
        self.resident
            .fetch_sub(e.variant.code_len, Ordering::AcqRel);
        self.count.fetch_sub(1, Ordering::AcqRel);
        Some((victim, e.req, e.variant))
    }

    /// Remove every entry whose variant satisfies `pred`; returns the
    /// removed `(key, producing request, variant)` triples so the caller
    /// can emit events and optionally re-enqueue the rewrites. Shards are
    /// locked one at a time (never nested).
    pub fn remove_matching(
        &self,
        pred: impl Fn(&Variant) -> bool,
    ) -> Vec<(CacheKey, SpecRequest, Arc<Variant>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut s = unpoison(shard.lock());
            let doomed: Vec<CacheKey> = s
                .values()
                .filter(|e| pred(&e.variant))
                .map(|e| e.key)
                .collect();
            for key in doomed {
                if let Some(e) = s.remove(&key) {
                    self.resident
                        .fetch_sub(e.variant.code_len, Ordering::AcqRel);
                    self.count.fetch_sub(1, Ordering::AcqRel);
                    out.push((key, e.req, e.variant));
                }
            }
        }
        out
    }

    /// Drop every entry and reset byte accounting.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = unpoison(shard.lock());
            for (_, e) in s.drain() {
                self.resident
                    .fetch_sub(e.variant.code_len, Ordering::AcqRel);
                self.count.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    /// Snapshot `(hits, last_used, fingerprint, variant)` of every cached
    /// variant of `func`, unordered — the manager sorts.
    pub fn snapshot_func(&self, func: u64) -> Vec<(u64, u64, u64, Arc<Variant>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let s = unpoison(shard.lock());
            for e in s.values() {
                if e.variant.func == func {
                    out.push((
                        e.hits,
                        e.last_used,
                        e.key.fingerprint,
                        Arc::clone(&e.variant),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::RewriteStats;

    fn dummy_entry(func: u64, entry: u64, code_len: usize) -> CacheEntry {
        CacheEntry {
            variant: Arc::new(Variant {
                func,
                entry,
                code_len,
                stats: RewriteStats::default(),
                guards: None,
                snapshot: crate::snapshot::KnownSnapshot::default(),
            }),
            key: CacheKey {
                func,
                fingerprint: entry,
            },
            req: SpecRequest::new(),
            last_used: 0,
            hits: 0,
        }
    }

    #[test]
    fn score_prefers_stale_large_cold() {
        let mut hot = dummy_entry(1, 10, 100);
        hot.last_used = 9;
        hot.hits = 9;
        let mut cold = dummy_entry(1, 20, 100);
        cold.last_used = 1;
        cold.hits = 0;
        assert!(cold.score(10) > hot.score(10));

        let small = dummy_entry(1, 30, 10);
        let big = dummy_entry(1, 40, 10_000);
        assert!(big.score(5) > small.score(5));
    }

    #[test]
    fn accounting_tracks_insert_evict_clear() {
        let c = ShardedCache::new(4);
        for e in [10u64, 20, 30] {
            let d = dummy_entry(1, e, 100);
            c.insert(d.key, d.variant, d.req);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.resident_bytes(), 300);

        let keep = CacheKey {
            func: 1,
            fingerprint: 30,
        };
        let (vk, _, v) = c.evict_victim(keep).unwrap();
        assert_ne!(v.entry, 30, "`keep` is never the victim");
        assert_eq!(vk.fingerprint, v.entry);
        assert_eq!(c.resident_bytes(), 200);

        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn reinsert_same_key_replaces_bytes() {
        let c = ShardedCache::new(4);
        let d = dummy_entry(1, 10, 100);
        let key = d.key;
        c.insert(key, d.variant, d.req);
        let d2 = dummy_entry(1, 10, 40);
        c.insert(key, d2.variant, d2.req);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 40);
    }

    #[test]
    fn peek_does_not_bump_credit_does() {
        let c = ShardedCache::new(4);
        let d = dummy_entry(1, 10, 100);
        let key = d.key;
        c.insert(key, d.variant, d.req);
        c.peek(&key).unwrap();
        assert_eq!(c.snapshot_hits(), vec![(key, 0)], "peek left hits alone");
        assert!(c.credit(&key, 5));
        assert_eq!(c.snapshot_hits(), vec![(key, 5)]);
        assert!(!c.credit(
            &CacheKey {
                func: 1,
                fingerprint: 99
            },
            1
        ));
    }

    #[test]
    fn remove_key_returns_request_and_accounts() {
        let c = ShardedCache::new(4);
        let d = dummy_entry(1, 10, 100);
        let key = d.key;
        c.insert(key, d.variant, d.req);
        let (_, v) = c.remove_key(&key).unwrap();
        assert_eq!(v.entry, 10);
        assert_eq!(c.len(), 0);
        assert_eq!(c.resident_bytes(), 0);
        assert!(c.remove_key(&key).is_none());
    }

    #[test]
    fn remove_matching_filters_and_accounts() {
        let c = ShardedCache::new(4);
        for (func, entry) in [(1u64, 10u64), (1, 20), (2, 30)] {
            let d = dummy_entry(func, entry, 100);
            c.insert(d.key, d.variant, d.req);
        }
        let removed = c.remove_matching(|v| v.func == 1);
        assert_eq!(removed.len(), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 100);
        assert!(c.remove_matching(|v| v.func == 1).is_empty());
    }
}
