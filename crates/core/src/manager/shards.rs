//! Fingerprint-sharded variant cache with a wait-free read path and
//! global byte accounting.
//!
//! The cache is split into `N` shards (a power of two); a key lives in the
//! shard selected by the low bits of its request fingerprint (FNV-1a
//! output, so the bits are well mixed). Each shard maintains **two**
//! representations of its entries:
//!
//! - the *writer map* — the authoritative `HashMap`, guarded by the shard
//!   mutex; every mutation (publish, demote, evict, invalidate, clear)
//!   goes through it;
//! - the *published snapshot* — an immutable copy of that map behind an
//!   `AtomicPtr`, rebuilt and swapped by the writer after every mutation.
//!
//! Readers ([`ShardedCache::lookup`] and friends) never take the mutex:
//! they pin the shard's reclamation epoch, load the snapshot pointer,
//! probe the immutable map and unpin — one load plus a hash probe, zero
//! locks, which is what makes the serving hit path wait-free (C5 in
//! EXPERIMENTS.md). Recency/hit accounting moved into per-entry atomics
//! ([`CacheEntry::last_used`]/[`CacheEntry::hits`]) shared between the
//! writer map and every snapshot, so a hit bumps the *entry*, not a
//! lock-guarded map.
//!
//! # Epoch-deferred reclamation
//!
//! Swapping the snapshot pointer orphans the previous snapshot while a
//! racing reader may still be probing it, so retired snapshots are freed
//! via a two-epoch parity scheme instead of immediately:
//!
//! ```text
//!   reader                            writer (under shard mutex)
//!   e = epoch            (SeqCst)     build new snapshot from map
//!   active[e&1] += 1     (SeqCst)     old = snap.swap(new)     (SeqCst)
//!   p = snap.load        (SeqCst)     limbo[epoch&1].push(old)
//!   ... probe *p ...                  if active[(epoch+1)&1] == 0:
//!   active[e&1] -= 1     (SeqCst)         epoch += 1
//!                                         free limbo[epoch&1]
//! ```
//!
//! Safety argument (all operations on `epoch`, `active` and `snap` are
//! SeqCst, so they form one total order): a reader that dereferences a
//! snapshot `S` loaded `snap` *before* the swap that retired `S` —
//! otherwise it would have loaded the replacement — and incremented its
//! pinned parity counter before that load. Hence
//! `pin-increment ≺ snap-load(S) ≺ retire(S)` in the total order, and any
//! gate check (`active[..] == 0`) performed after the retire observes the
//! reader's pin. `S`, retired at epoch `z`, is freed only by an advance
//! whose gate reads `active[z&1]`; if the reader pinned parity `z&1`,
//! that very gate blocks, and if it pinned the other parity, the earlier
//! advance `z → z+1` (required before any freeing advance can run) is
//! gated on the reader's parity and blocks instead. Either way a pinned
//! reader keeps every snapshot it can possibly hold alive; at most two
//! generations of retired snapshots linger when no publish follows.
//!
//! Only the snapshot *index* needs this care: the variant code itself
//! lives in the JIT bump allocator (never reused) and the [`Variant`]
//! metadata is `Arc`-shared, so an evicted variant a concurrent dispatch
//! still holds stays alive and callable.
//!
//! Resident bytes, entry count and the logical clock remain global
//! atomics so the byte budget stays a single whole-cache bound rather
//! than `N` independent ones.

use super::{CacheKey, Variant};
use crate::request::SpecRequest;
use crate::telemetry::flight::FlightKind;
use crate::telemetry::metrics::{Ctr, Gge};
use crate::telemetry::{FlightRecorder, MetricsRegistry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Recover the guard from a poisoned lock. Every shard mutex protects a
/// plain map whose invariants hold between statements, so a panic on
/// another thread (contained at the manager boundary anyway) must not
/// wedge the cache for everyone else.
fn unpoison<G>(r: Result<G, PoisonError<G>>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Default shard count; enough that 8-16 threads rarely collide.
pub(super) const DEFAULT_SHARDS: usize = 8;

/// One cached variant plus its lock-free accounting. Shared (`Arc`)
/// between the writer map and every published snapshot, so a hit recorded
/// through a snapshot is visible to the writer-side eviction scoring
/// without any copying or locking.
pub(super) struct CacheEntry {
    pub variant: Arc<Variant>,
    pub key: CacheKey,
    /// The request that produced the variant — kept so invalidation can
    /// re-enqueue the rewrite without the original caller's help.
    pub req: SpecRequest,
    /// Logical-clock timestamp of the last hit/credit (atomic: bumped by
    /// lock-free readers, read by writer-side eviction scoring).
    pub last_used: AtomicU64,
    /// Lifetime hits (atomic, same contract as `last_used`).
    pub hits: AtomicU64,
}

impl CacheEntry {
    /// Eviction score at `now`: bigger means more evictable. Stale, large,
    /// rarely-hit variants score high; the just-used entry scores 0.
    pub fn score(&self, now: u64) -> u128 {
        let staleness = now.saturating_sub(self.last_used.load(Ordering::Relaxed)) as u128;
        staleness * self.variant.code_len as u128 / (self.hits.load(Ordering::Relaxed) as u128 + 1)
    }
}

/// An immutable published snapshot of one shard's entries. Never mutated
/// after the pointer swap that publishes it; freed via the epoch scheme.
#[derive(Default)]
struct Snap {
    entries: HashMap<CacheKey, Arc<CacheEntry>>,
}

/// A retired snapshot awaiting reclamation. Raw pointers are `!Send`, but
/// limbo bins only move between writer critical sections of the same
/// shard mutex, which serializes all access to them.
struct Retired(*mut Snap);
// SAFETY: a `Retired` pointer is owned exclusively by the limbo bin it
// sits in; the shard mutex serializes every push/drain, and readers only
// ever see the pointer through `snap` *before* it is retired.
unsafe impl Send for Retired {}

/// Writer-side shard state, guarded by the shard mutex.
struct WriterState {
    /// The authoritative map every mutation goes through.
    map: HashMap<CacheKey, Arc<CacheEntry>>,
    /// Retired snapshots by retire-epoch parity, freed by epoch advances.
    limbo: [Vec<Retired>; 2],
}

struct Shard {
    /// Shard index, stamped into flight-recorder epoch events.
    id: usize,
    write: Mutex<WriterState>,
    /// The published immutable snapshot readers probe.
    snap: AtomicPtr<Snap>,
    /// Reclamation epoch; advanced by writers when the gate parity is
    /// unpinned.
    epoch: AtomicU64,
    /// Reader pin counts by epoch parity.
    active: [AtomicUsize; 2],
}

impl Shard {
    fn new(id: usize) -> Self {
        Shard {
            id,
            write: Mutex::new(WriterState {
                map: HashMap::new(),
                limbo: [Vec::new(), Vec::new()],
            }),
            snap: AtomicPtr::new(Box::into_raw(Box::default())),
            epoch: AtomicU64::new(0),
            active: [AtomicUsize::new(0), AtomicUsize::new(0)],
        }
    }
}

pub(super) struct ShardedCache {
    shards: Vec<Shard>,
    /// Power-of-two mask selecting a shard from a fingerprint.
    mask: usize,
    /// Code bytes resident across all shards.
    resident: AtomicUsize,
    /// Entries across all shards.
    count: AtomicUsize,
    /// Logical clock; every lookup/insert advances it.
    tick: AtomicU64,
    /// Epoch/publication telemetry (`brew_read_epoch_*`).
    metrics: Arc<MetricsRegistry>,
    /// Flight journal for epoch publish/reclaim events.
    flight: Arc<FlightRecorder>,
}

impl ShardedCache {
    pub fn new(shards: usize, metrics: Arc<MetricsRegistry>, flight: Arc<FlightRecorder>) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedCache {
            shards: (0..n).map(Shard::new).collect(),
            mask: n - 1,
            resident: AtomicUsize::new(0),
            count: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
            metrics,
            flight,
        }
    }

    fn shard(&self, key: &CacheKey) -> &Shard {
        &self.shards[key.fingerprint as usize & self.mask]
    }

    fn now(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Acquire)
    }

    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Run `f` over the shard's published snapshot under an epoch pin.
    /// This is the entire read path: no mutex, one pointer load, one
    /// probe — see the module docs for why the dereference is safe.
    fn read<R>(&self, shard: &Shard, f: impl FnOnce(&Snap) -> R) -> R {
        let e = shard.epoch.load(Ordering::SeqCst);
        let pin = &shard.active[(e & 1) as usize];
        pin.fetch_add(1, Ordering::SeqCst);
        let p = shard.snap.load(Ordering::SeqCst);
        // SAFETY: `p` was published by a writer and cannot have been freed:
        // freeing requires an epoch-advance gate check that follows this
        // pin in the SeqCst total order (module docs, "Epoch-deferred
        // reclamation"), so it observes the pin and blocks until unpin.
        let out = f(unsafe { &*p });
        pin.fetch_sub(1, Ordering::SeqCst);
        out
    }

    /// Rebuild the shard's published snapshot from the writer map and
    /// swap it in, retiring the old snapshot into the current epoch's
    /// limbo bin; then try to advance the epoch and free the bin the
    /// advance proves unreachable. Must be called with `w` locked from
    /// `shard.write` (the mutex serializes retire/advance per shard).
    fn publish(&self, shard: &Shard, w: &mut WriterState) {
        let new = Box::into_raw(Box::new(Snap {
            entries: w.map.clone(),
        }));
        let old = shard.snap.swap(new, Ordering::SeqCst);
        let e = shard.epoch.load(Ordering::SeqCst);
        w.limbo[(e & 1) as usize].push(Retired(old));
        self.metrics.count(Ctr::EpochPublished, 1);
        self.metrics.gauge_add(Gge::EpochLimbo, 1);
        self.flight
            .record(FlightKind::EpochPublish, [shard.id as u64, e, 0, 0]);
        // Advance gate: parity (e+1)&1 holds only snapshots retired at
        // epochs <= e-1; with no reader pinned there, nothing can still
        // hold them (module docs) and the bin is freed.
        let gate = ((e + 1) & 1) as usize;
        if shard.active[gate].load(Ordering::SeqCst) == 0 {
            shard.epoch.store(e + 1, Ordering::SeqCst);
            self.metrics.gauge_add(Gge::ReadEpoch, 1);
            let freed = w.limbo[gate].len();
            for r in w.limbo[gate].drain(..) {
                // SAFETY: `r.0` came out of `snap.swap` exactly once (sole
                // ownership) and the gate check proved no reader can still
                // hold it.
                drop(unsafe { Box::from_raw(r.0) });
            }
            if freed > 0 {
                self.metrics.count(Ctr::EpochReclaimed, freed as u64);
                self.metrics.gauge_add(Gge::EpochLimbo, -(freed as i64));
                self.flight.record(
                    FlightKind::EpochReclaim,
                    [shard.id as u64, freed as u64, 0, 0],
                );
            }
        }
    }

    /// Fetch a variant, bumping its recency and hit count — the wait-free
    /// serving hit path: epoch pin, snapshot probe, two relaxed atomic
    /// bumps, unpin. No mutex is ever acquired on a hit.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<Variant>> {
        let now = self.now();
        self.read(self.shard(key), |snap| {
            let e = snap.entries.get(key)?;
            e.last_used.store(now, Ordering::Relaxed);
            e.hits.fetch_add(1, Ordering::Relaxed);
            Some(Arc::clone(&e.variant))
        })
    }

    /// Fetch a variant *without* touching recency or hit accounting —
    /// for observers (the tiering layer) that must not distort the very
    /// signal they read.
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<Variant>> {
        self.read(self.shard(key), |snap| {
            snap.entries.get(key).map(|e| Arc::clone(&e.variant))
        })
    }

    /// Remove one entry by key, returning its producing request and
    /// variant — the demotion primitive. Byte accounting is adjusted
    /// globally; a concurrent dispatch holding the `Arc` keeps the code
    /// itself alive and callable (the JIT segment is a bump allocator, so
    /// the bytes are never reused).
    pub fn remove_key(&self, key: &CacheKey) -> Option<(SpecRequest, Arc<Variant>)> {
        let shard = self.shard(key);
        let mut w = unpoison(shard.write.lock());
        let e = w.map.remove(key)?;
        self.publish(shard, &mut w);
        drop(w);
        self.resident
            .fetch_sub(e.variant.code_len, Ordering::AcqRel);
        self.count.fetch_sub(1, Ordering::AcqRel);
        Some((e.req.clone(), Arc::clone(&e.variant)))
    }

    /// Snapshot every entry's `(key, hits)` pair, unordered — the tiering
    /// layer diffs consecutive snapshots into per-tick hit deltas. Reads
    /// the published snapshots (no locks), so the view is per-entry exact
    /// but only cross-entry consistent up to in-flight lookups (which
    /// land in the next delta).
    pub fn snapshot_hits(&self) -> Vec<(CacheKey, u64)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            self.read(shard, |snap| {
                out.extend(
                    snap.entries
                        .values()
                        .map(|e| (e.key, e.hits.load(Ordering::Relaxed))),
                );
            });
        }
        out
    }

    /// Credit `n` external hits (dispatch-stub counter deltas) to an
    /// entry: bumps recency and hit count as if `n` lookups had occurred,
    /// so LRU eviction sees stub traffic too. Returns whether the key was
    /// resident. Lock-free like `lookup` — the tiering tick no longer
    /// contends with the serving path.
    pub fn credit(&self, key: &CacheKey, n: u64) -> bool {
        let now = self.now();
        self.read(self.shard(key), |snap| {
            let Some(e) = snap.entries.get(key) else {
                return false;
            };
            e.last_used.store(now, Ordering::Relaxed);
            e.hits.fetch_add(n, Ordering::Relaxed);
            true
        })
    }

    /// Insert (or replace) a variant; byte accounting is adjusted
    /// globally. The entry becomes visible to readers when the rebuilt
    /// snapshot is swapped in — publication is the pointer swap.
    pub fn insert(&self, key: CacheKey, variant: Arc<Variant>, req: SpecRequest) {
        let now = self.now();
        let code_len = variant.code_len;
        let entry = Arc::new(CacheEntry {
            variant,
            key,
            req,
            last_used: AtomicU64::new(now),
            hits: AtomicU64::new(0),
        });
        let shard = self.shard(&key);
        let mut w = unpoison(shard.write.lock());
        let prev = w.map.insert(key, entry);
        self.publish(shard, &mut w);
        drop(w);
        self.resident.fetch_add(code_len, Ordering::AcqRel);
        match prev {
            Some(p) => {
                self.resident
                    .fetch_sub(p.variant.code_len, Ordering::AcqRel);
            }
            None => {
                self.count.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Remove and return the globally highest-score entry other than
    /// `keep` as a `(key, producing request, variant)` triple, so the
    /// caller can hand the request to the tiering layer for possible
    /// re-promotion. Shards are scanned and locked one at a time (never
    /// nested), so a concurrent eviction may remove a candidate between
    /// scoring and removal — the scan then retries with a fresh victim
    /// (terminates: each lost race means the entry set shrank), so `None`
    /// reliably means "nothing but `keep` is left".
    pub fn evict_victim(&self, keep: CacheKey) -> Option<(CacheKey, SpecRequest, Arc<Variant>)> {
        loop {
            let now = self.tick.load(Ordering::Relaxed);
            let mut best: Option<(u128, std::cmp::Reverse<u64>, CacheKey)> = None;
            for shard in &self.shards {
                let w = unpoison(shard.write.lock());
                for e in w.map.values() {
                    if e.key == keep {
                        continue;
                    }
                    let cand = (e.score(now), std::cmp::Reverse(e.key.fingerprint), e.key);
                    if best.as_ref().is_none_or(|b| (cand.0, cand.1) > (b.0, b.1)) {
                        best = Some(cand);
                    }
                }
            }
            let (_, _, victim) = best?;
            if let Some((req, v)) = self.remove_key(&victim) {
                return Some((victim, req, v));
            }
        }
    }

    /// Remove every entry whose variant satisfies `pred`; returns the
    /// removed `(key, producing request, variant)` triples so the caller
    /// can emit events and optionally re-enqueue the rewrites. Shards are
    /// locked one at a time (never nested) and republished at most once
    /// each, so an invalidation sweep costs one snapshot swap per
    /// affected shard.
    pub fn remove_matching(
        &self,
        pred: impl Fn(&Variant) -> bool,
    ) -> Vec<(CacheKey, SpecRequest, Arc<Variant>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut w = unpoison(shard.write.lock());
            let doomed: Vec<CacheKey> = w
                .map
                .values()
                .filter(|e| pred(&e.variant))
                .map(|e| e.key)
                .collect();
            if doomed.is_empty() {
                continue;
            }
            for key in &doomed {
                if let Some(e) = w.map.remove(key) {
                    self.resident
                        .fetch_sub(e.variant.code_len, Ordering::AcqRel);
                    self.count.fetch_sub(1, Ordering::AcqRel);
                    out.push((*key, e.req.clone(), Arc::clone(&e.variant)));
                }
            }
            self.publish(shard, &mut w);
        }
        out
    }

    /// Drop every entry and reset byte accounting. Returns the drained
    /// variants so the caller can retire their symbol-table records.
    pub fn clear(&self) -> Vec<Arc<Variant>> {
        let mut dropped = Vec::new();
        for shard in &self.shards {
            let mut w = unpoison(shard.write.lock());
            if w.map.is_empty() {
                continue;
            }
            for (_, e) in w.map.drain() {
                self.resident
                    .fetch_sub(e.variant.code_len, Ordering::AcqRel);
                self.count.fetch_sub(1, Ordering::AcqRel);
                dropped.push(Arc::clone(&e.variant));
            }
            self.publish(shard, &mut w);
        }
        dropped
    }

    /// Snapshot `(hits, last_used, fingerprint, variant)` of every cached
    /// variant of `func`, unordered — the manager sorts. Lock-free.
    pub fn snapshot_func(&self, func: u64) -> Vec<(u64, u64, u64, Arc<Variant>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            self.read(shard, |snap| {
                for e in snap.entries.values() {
                    if e.variant.func == func {
                        out.push((
                            e.hits.load(Ordering::Relaxed),
                            e.last_used.load(Ordering::Relaxed),
                            e.key.fingerprint,
                            Arc::clone(&e.variant),
                        ));
                    }
                }
            });
        }
        out
    }

    /// Snapshot every entry as a `(key, producing request, variant)`
    /// triple, unordered — the persistence layer serializes from this.
    /// Lock-free.
    pub fn snapshot_all(&self) -> Vec<(CacheKey, SpecRequest, Arc<Variant>)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            self.read(shard, |snap| {
                for e in snap.entries.values() {
                    out.push((e.key, e.req.clone(), Arc::clone(&e.variant)));
                }
            });
        }
        out
    }
}

impl Drop for ShardedCache {
    fn drop(&mut self) {
        for shard in &self.shards {
            // SAFETY: `&mut self` proves no reader or writer is live; the
            // published pointer and every limbo pointer are uniquely owned
            // here and freed exactly once.
            unsafe {
                drop(Box::from_raw(shard.snap.load(Ordering::SeqCst)));
                let mut w = unpoison(shard.write.lock());
                for r in w.limbo.iter_mut().flat_map(|bin| bin.drain(..)) {
                    drop(Box::from_raw(r.0));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::RewriteStats;

    fn cache(shards: usize) -> ShardedCache {
        ShardedCache::new(
            shards,
            Arc::new(MetricsRegistry::new()),
            Arc::new(FlightRecorder::new(64)),
        )
    }

    fn dummy(func: u64, entry: u64, code_len: usize) -> (CacheKey, Arc<Variant>, SpecRequest) {
        (
            CacheKey {
                func,
                fingerprint: entry,
            },
            Arc::new(Variant {
                func,
                entry,
                code_len,
                stats: RewriteStats::default(),
                guards: None,
                snapshot: crate::snapshot::KnownSnapshot::default(),
            }),
            SpecRequest::new(),
        )
    }

    fn dummy_entry(func: u64, entry: u64, code_len: usize) -> CacheEntry {
        let (key, variant, req) = dummy(func, entry, code_len);
        CacheEntry {
            variant,
            key,
            req,
            last_used: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    #[test]
    fn score_prefers_stale_large_cold() {
        let hot = dummy_entry(1, 10, 100);
        hot.last_used.store(9, Ordering::Relaxed);
        hot.hits.store(9, Ordering::Relaxed);
        let cold = dummy_entry(1, 20, 100);
        cold.last_used.store(1, Ordering::Relaxed);
        assert!(cold.score(10) > hot.score(10));

        let small = dummy_entry(1, 30, 10);
        let big = dummy_entry(1, 40, 10_000);
        assert!(big.score(5) > small.score(5));
    }

    #[test]
    fn accounting_tracks_insert_evict_clear() {
        let c = cache(4);
        for e in [10u64, 20, 30] {
            let (key, v, req) = dummy(1, e, 100);
            c.insert(key, v, req);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.resident_bytes(), 300);

        let keep = CacheKey {
            func: 1,
            fingerprint: 30,
        };
        let (vk, _, v) = c.evict_victim(keep).unwrap();
        assert_ne!(v.entry, 30, "`keep` is never the victim");
        assert_eq!(vk.fingerprint, v.entry);
        assert_eq!(c.resident_bytes(), 200);

        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn reinsert_same_key_replaces_bytes() {
        let c = cache(4);
        let (key, v, req) = dummy(1, 10, 100);
        c.insert(key, v, req);
        let (_, v2, req2) = dummy(1, 10, 40);
        c.insert(key, v2, req2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 40);
    }

    #[test]
    fn peek_does_not_bump_credit_does() {
        let c = cache(4);
        let (key, v, req) = dummy(1, 10, 100);
        c.insert(key, v, req);
        c.peek(&key).unwrap();
        assert_eq!(c.snapshot_hits(), vec![(key, 0)], "peek left hits alone");
        assert!(c.credit(&key, 5));
        assert_eq!(c.snapshot_hits(), vec![(key, 5)]);
        assert!(!c.credit(
            &CacheKey {
                func: 1,
                fingerprint: 99
            },
            1
        ));
    }

    #[test]
    fn remove_key_returns_request_and_accounts() {
        let c = cache(4);
        let (key, v, req) = dummy(1, 10, 100);
        c.insert(key, v, req);
        let (_, v) = c.remove_key(&key).unwrap();
        assert_eq!(v.entry, 10);
        assert_eq!(c.len(), 0);
        assert_eq!(c.resident_bytes(), 0);
        assert!(c.remove_key(&key).is_none());
    }

    #[test]
    fn remove_matching_filters_and_accounts() {
        let c = cache(4);
        for (func, entry) in [(1u64, 10u64), (1, 20), (2, 30)] {
            let (key, v, req) = dummy(func, entry, 100);
            c.insert(key, v, req);
        }
        let removed = c.remove_matching(|v| v.func == 1);
        assert_eq!(removed.len(), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 100);
        assert!(c.remove_matching(|v| v.func == 1).is_empty());
    }

    #[test]
    fn hits_survive_republication() {
        // A hit recorded through one snapshot must be visible after the
        // writer rebuilds and swaps — the accounting lives in the shared
        // entry, not the snapshot.
        let c = cache(1);
        let (key, v, req) = dummy(1, 10, 100);
        c.insert(key, v, req);
        c.lookup(&key).unwrap();
        c.lookup(&key).unwrap();
        let (k2, v2, r2) = dummy(1, 20, 100);
        c.insert(k2, v2, r2); // republishes the shard
        assert!(c.snapshot_hits().contains(&(key, 2)));
    }

    #[test]
    fn epoch_reclamation_frees_limbo_under_quiescence() {
        // With no reader pinned, every publish advances the epoch, so the
        // limbo population stays bounded (<= 1 generation per shard here).
        let m = Arc::new(MetricsRegistry::new());
        let c = ShardedCache::new(1, Arc::clone(&m), Arc::new(FlightRecorder::new(64)));
        for e in 0..64u64 {
            let (key, v, req) = dummy(1, e, 8);
            c.insert(key, v, req);
        }
        let published = m.counter(Ctr::EpochPublished).get();
        let reclaimed = m.counter(Ctr::EpochReclaimed).get();
        assert_eq!(published, 64);
        // Every advance frees the *previous* generation; the newest
        // retired snapshot is still in limbo.
        assert_eq!(reclaimed, published - 1);
        assert_eq!(m.gauge(Gge::EpochLimbo).get(), 1);
    }

    #[test]
    fn concurrent_readers_and_writers_smoke() {
        // 4 reader threads spin on lookup while a writer churns the same
        // keys through insert/remove; every successful lookup must return
        // a coherent entry. Run under the release stress job for the real
        // torture (crates/core/tests/serving.rs); this is the in-crate
        // canary.
        let c = Arc::new(cache(2));
        let stop = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = Arc::clone(&c);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut n = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let key = CacheKey {
                            func: 1,
                            fingerprint: n % 8,
                        };
                        if let Some(v) = c.lookup(&key) {
                            assert_eq!(v.entry, key.fingerprint, "torn read on thread {t}");
                        }
                        n += 1;
                    }
                });
            }
            for round in 0..2_000u64 {
                let e = round % 8;
                let (key, v, req) = dummy(1, e, 16);
                c.insert(key, v, req);
                if round % 3 == 0 {
                    c.remove_key(&key);
                }
            }
            stop.store(1, Ordering::Relaxed);
        });
    }
}
