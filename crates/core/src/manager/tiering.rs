//! Adaptive tiering: the policy layer that closes the counter →
//! specialization loop.
//!
//! PR 3 gave dispatch stubs self-counting slots
//! ([`crate::guard::CounterPage`]); until now nothing read them back — the
//! profile-to-decision loop of "Profile-Guided, Multi-Version Binary
//! Rewriting" stayed open. This module maintains a *decayed heat score*
//! per `(function, request fingerprint)` and turns it into three actions,
//! all driven through machinery earlier PRs built:
//!
//! - **Promote** — a fingerprint seen hot at dispatch but not resident is
//!   enqueued for a deferred rewrite, so a later call dispatches into a
//!   specialized variant without any operator input.
//! - **Demote** — a resident variant whose heat decays below the demote
//!   threshold is removed from the cache ahead of LRU byte pressure,
//!   reclaiming its budget share for fingerprints that still earn it.
//! - **Re-specialize** — after invalidation, only variants whose heat
//!   clears the policy's bar are re-enqueued; cold stale variants just
//!   die instead of paying a rewrite nobody will call.
//!
//! ## Heat bookkeeping
//!
//! Heat for key `k` evolves per [`SpecializationManager::tick`]:
//!
//! ```text
//! heat(k) ← heat(k) * decay + input(k)
//! ```
//!
//! where `input(k)` sums, since the previous tick:
//!
//! 1. the key's dispatch-stub counter delta (its [`CounterPage`] slot),
//! 2. its variant-cache hit delta (requests answered from the cache), and
//! 3. miss observations recorded by
//!    [`SpecializationManager::request`] for non-resident keys.
//!
//! With a constant per-tick rate `r` the score converges to
//! `r / (1 - decay)` — twice the rate at the default `decay = 0.5` — so
//! thresholds read naturally as "sustained calls per tick". Between
//! samples heat only decays (the proptest in `tests/tiering.rs` pins
//! this), so one burst cannot hold a variant resident forever.
//!
//! Counter-page deltas are additionally *credited back* into the cache's
//! LRU accounting ([`SpecializationManager`]'s sharded store): traffic
//! that only ever flows through a stub still counts as recency/hits, so
//! byte-pressure eviction and tiering agree about what is hot.
//!
//! The decision itself is pluggable ([`TieringPolicy`]);
//! [`DecayedThreshold`] is the default: two thresholds forming a
//! hysteresis band (`demote_heat < promote_heat`, so a key oscillating
//! inside the band does nothing) plus a per-key cooldown of
//! [`TieringConfig::cooldown_ticks`] between actions, which prevents
//! promote/demote flapping even under an adversarial call stream.
//!
//! ## Interaction with the serving read path
//!
//! Every tiering action is an *index writer* in the epoch/RCU scheme of
//! the sharded store (DESIGN.md §11): promotion publishes, demotion
//! unpublishes, and both serialize on the shard's writer mutex, rebuild
//! the immutable index snapshot and swap it in. Dispatch-site readers
//! never see any of it as a wait — a lookup pins the current epoch,
//! probes the snapshot it loaded, and unpins; a demotion concurrent with
//! a reader retires the old snapshot to the epoch limbo list, where the
//! two-epoch grace period keeps it (and the bump-allocated code it
//! points at) alive until every pinned reader is gone. Tick-time heat
//! sampling therefore costs resident callers nothing but their ordinary
//! lock-free hit, no matter how aggressively the policy churns the
//! resident set — the C5 serving rows (EXPERIMENTS.md) measure exactly
//! this: flat p99 dispatch latency under concurrent writer churn.
//!
//! [`SpecializationManager`]: super::SpecializationManager
//! [`SpecializationManager::tick`]: super::SpecializationManager::tick
//! [`SpecializationManager::request`]: super::SpecializationManager::request
//! [`CounterPage`]: crate::guard::CounterPage

use super::{unpoison, CacheKey};
use crate::guard::CounterPage;
use crate::request::SpecRequest;
use brew_image::Image;
use std::collections::HashMap;
use std::sync::Mutex;

/// Tuning knobs for the tiering layer. `decay` and `cooldown_ticks` are
/// mechanics applied by the manager's tick; the two thresholds are
/// consumed by the default [`DecayedThreshold`] policy (a custom
/// [`TieringPolicy`] may ignore them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieringConfig {
    /// Heat at or above which a non-resident fingerprint is promoted
    /// (its rewrite enqueued).
    pub promote_heat: f64,
    /// Heat at or below which a resident variant is demoted (evicted).
    /// Must sit below `promote_heat`; the gap is the hysteresis band.
    pub demote_heat: f64,
    /// Multiplier applied to every heat score at each tick, in `(0, 1)`.
    pub decay: f64,
    /// Ticks a key must wait after a promote/demote before the policy may
    /// act on it again — the anti-flap guard.
    pub cooldown_ticks: u64,
    /// Heat contributed per measured model cycle attributed to a key by
    /// the counter page's cycle bank (see
    /// [`DispatchProfiler`](crate::telemetry::DispatchProfiler)). At the
    /// default `0.0` time attribution is journaled and exported but does
    /// not steer tiering; a small positive weight (e.g. `1e-4`) makes
    /// *expensive* callers promote faster than merely *frequent* ones.
    pub cycle_weight: f64,
}

impl Default for TieringConfig {
    fn default() -> Self {
        TieringConfig {
            promote_heat: 8.0,
            demote_heat: 1.0,
            decay: 0.5,
            cooldown_ticks: 2,
            cycle_weight: 0.0,
        }
    }
}

/// What the policy wants done with one key at one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierAction {
    /// Leave the key as it is.
    Stay,
    /// Enqueue a deferred rewrite for the (non-resident) key.
    Promote,
    /// Remove the (resident) key's variant from the cache.
    Demote,
}

/// The pluggable tiering decision. Implementations see one key at a time
/// with its current (already decayed and fed) heat, whether a variant is
/// resident, and how many ticks have passed since the layer last acted on
/// the key. They must be `Send + Sync`: decisions run under the manager's
/// tiering lock from whichever thread calls `tick`.
pub trait TieringPolicy: Send + Sync {
    /// Decide the key's fate this tick. The manager guards the obvious
    /// contradictions (promoting a resident key, demoting an absent one)
    /// regardless of what this returns.
    fn decide(&self, heat: f64, resident: bool, ticks_since_action: u64) -> TierAction;

    /// After invalidation found a variant stale: is its heat worth a
    /// re-specialization, or should the variant die cold?
    fn respecialize(&self, heat: f64) -> bool;
}

/// Default policy: decayed thresholds with a hysteresis band and cooldown.
///
/// - below `demote_heat` and resident → [`TierAction::Demote`]
/// - at or above `promote_heat` and not resident → [`TierAction::Promote`]
/// - inside the band, or within `cooldown_ticks` of the last action →
///   [`TierAction::Stay`]
///
/// Stale variants re-specialize when their heat is strictly above the
/// demote threshold — the same bar residency has to clear.
#[derive(Debug, Clone, Copy)]
pub struct DecayedThreshold {
    promote_heat: f64,
    demote_heat: f64,
    cooldown_ticks: u64,
}

impl DecayedThreshold {
    /// Policy reading its thresholds from `cfg`.
    pub fn new(cfg: TieringConfig) -> Self {
        DecayedThreshold {
            promote_heat: cfg.promote_heat,
            demote_heat: cfg.demote_heat,
            cooldown_ticks: cfg.cooldown_ticks,
        }
    }
}

impl From<TieringConfig> for DecayedThreshold {
    fn from(cfg: TieringConfig) -> Self {
        Self::new(cfg)
    }
}

impl TieringPolicy for DecayedThreshold {
    fn decide(&self, heat: f64, resident: bool, ticks_since_action: u64) -> TierAction {
        if ticks_since_action < self.cooldown_ticks {
            return TierAction::Stay;
        }
        if !resident && heat >= self.promote_heat {
            TierAction::Promote
        } else if resident && heat <= self.demote_heat {
            TierAction::Demote
        } else {
            TierAction::Stay
        }
    }

    fn respecialize(&self, heat: f64) -> bool {
        heat > self.demote_heat
    }
}

/// What one [`SpecializationManager::tick`] did — returned to the caller
/// so drivers (and the C4 experiment) can watch convergence.
///
/// [`SpecializationManager::tick`]: super::SpecializationManager::tick
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickSummary {
    /// The tick's sequence number (1-based; 0 means tiering is disabled).
    pub tick: u64,
    /// Heat inputs consumed this tick: counter-page deltas + cache-hit
    /// deltas + miss observations.
    pub sampled: u64,
    /// Keys with live heat entries after the tick.
    pub tracked: usize,
    /// Promotions issued this tick (rewrites enqueued or run inline).
    pub promoted: usize,
    /// Resident variants demoted (removed from the cache) this tick.
    pub demoted: usize,
    /// Model cycles drained from counter-page cycle banks this tick
    /// (summed across every registered source, before `cycle_weight`).
    pub cycles_sampled: u64,
}

/// Per-key tiering state.
#[derive(Default)]
pub(super) struct HeatEntry {
    /// The decayed score.
    pub heat: f64,
    /// Inputs accumulated since the last tick (miss observations and
    /// counter-page deltas folded in between ticks).
    pub pending: u64,
    /// The cache entry's hit counter as of the last tick — deltas against
    /// it feed heat without re-counting history.
    pub last_hits: u64,
    /// Hits credited into the cache from counter pages this tick; folded
    /// into `last_hits` so the credit is not re-observed as a hit delta.
    pub credited: u64,
    /// Model cycles attributed since the last tick (cycle-bank deltas);
    /// folded into heat scaled by [`TieringConfig::cycle_weight`].
    pub pending_cycles: u64,
    /// Tick of the last promote/demote for cooldown accounting.
    pub last_action_tick: u64,
    /// The request to replay on promotion. Captured from miss
    /// observations, demotions and evictions; `None` means the key was
    /// only ever seen through a counter page and cannot be promoted yet.
    pub req: Option<SpecRequest>,
}

/// One registered self-counting dispatch stub: the page, the cache key
/// behind each case slot, and the last-sampled slot values.
pub(super) struct CounterSource {
    pub page: CounterPage,
    pub keys: Vec<CacheKey>,
    pub last: Vec<u64>,
    /// Last-sampled cycle-bank values (same layout as `last`).
    pub last_cycles: Vec<u64>,
}

/// Mutable tiering state, all under one mutex — critical sections are a
/// single pass over small maps and never block on I/O or rewriting.
#[derive(Default)]
pub(super) struct TierState {
    pub tick: u64,
    pub heat: HashMap<CacheKey, HeatEntry>,
    pub sources: HashMap<u64, CounterSource>,
}

/// The tiering layer owned by a [`SpecializationManager`] built with
/// [`ManagerBuilder::tiering`].
///
/// [`SpecializationManager`]: super::SpecializationManager
/// [`ManagerBuilder::tiering`]: super::ManagerBuilder::tiering
pub(super) struct Tiering {
    pub cfg: TieringConfig,
    pub policy: Box<dyn TieringPolicy>,
    pub state: Mutex<TierState>,
}

impl Tiering {
    pub fn new(cfg: TieringConfig, policy: Box<dyn TieringPolicy>) -> Self {
        Tiering {
            cfg,
            policy,
            state: Mutex::new(TierState::default()),
        }
    }

    /// Record a request miss for `key`: one unit of pending heat plus the
    /// request itself, so a later promotion can replay it.
    pub fn observe_miss(&self, key: CacheKey, req: &SpecRequest) {
        let mut st = unpoison(self.state.lock());
        let e = st.heat.entry(key).or_default();
        e.pending += 1;
        if e.req.is_none() {
            e.req = Some(req.clone());
        }
    }

    /// Remember `req` for `key` (demotion/eviction path) so the key stays
    /// promotable, and reset its hit baseline — the cache entry is gone.
    pub fn retain_request(&self, key: CacheKey, req: SpecRequest) {
        let mut st = unpoison(self.state.lock());
        let e = st.heat.entry(key).or_default();
        e.req = Some(req);
        e.last_hits = 0;
        e.credited = 0;
    }

    /// Register (or replace) the counter page behind `func`'s dispatch
    /// stub. Residual deltas of a replaced page are folded into pending
    /// heat first, so calls between the last tick and a dispatcher rebuild
    /// are not lost.
    pub fn register_source(&self, img: &Image, func: u64, page: CounterPage, keys: Vec<CacheKey>) {
        let mut st = unpoison(self.state.lock());
        if let Some(old) = st.sources.remove(&func) {
            if let Ok((_, deltas)) = old.page.delta_since(img, &old.last) {
                for (i, key) in old.keys.iter().enumerate() {
                    if deltas[i] > 0 {
                        st.heat.entry(*key).or_default().pending += deltas[i];
                    }
                }
            }
            // Residual cycle deltas of the replaced page fold in too, so
            // time attributed between the last tick and a dispatcher
            // rebuild is not lost.
            if let Ok((_, cyc)) = old.page.cycle_delta_since(img, &old.last_cycles) {
                for (i, key) in old.keys.iter().enumerate() {
                    if cyc[i] > 0 {
                        st.heat.entry(*key).or_default().pending_cycles += cyc[i];
                    }
                }
            }
        }
        let last = vec![0; keys.len() + 1];
        let last_cycles = last.clone();
        st.sources.insert(
            func,
            CounterSource {
                page,
                keys,
                last,
                last_cycles,
            },
        );
    }

    /// Current heat of `key` (0.0 when untracked).
    pub fn heat_of(&self, key: &CacheKey) -> f64 {
        unpoison(self.state.lock())
            .heat
            .get(key)
            .map(|e| e.heat)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decayed_threshold_hysteresis_band() {
        let p = DecayedThreshold::new(TieringConfig {
            promote_heat: 8.0,
            demote_heat: 2.0,
            decay: 0.5,
            cooldown_ticks: 0,
            cycle_weight: 0.0,
        });
        // Below the band, resident → demote; non-resident → stay.
        assert_eq!(p.decide(1.0, true, 10), TierAction::Demote);
        assert_eq!(p.decide(1.0, false, 10), TierAction::Stay);
        // Inside the band nothing moves in either direction.
        assert_eq!(p.decide(5.0, true, 10), TierAction::Stay);
        assert_eq!(p.decide(5.0, false, 10), TierAction::Stay);
        // Above the band, non-resident → promote; resident → stay.
        assert_eq!(p.decide(9.0, false, 10), TierAction::Promote);
        assert_eq!(p.decide(9.0, true, 10), TierAction::Stay);
    }

    #[test]
    fn cooldown_blocks_actions() {
        let p = DecayedThreshold::new(TieringConfig {
            promote_heat: 8.0,
            demote_heat: 2.0,
            decay: 0.5,
            cooldown_ticks: 3,
            cycle_weight: 0.0,
        });
        assert_eq!(p.decide(9.0, false, 2), TierAction::Stay);
        assert_eq!(p.decide(9.0, false, 3), TierAction::Promote);
        assert_eq!(p.decide(0.0, true, 2), TierAction::Stay);
        assert_eq!(p.decide(0.0, true, 3), TierAction::Demote);
    }

    #[test]
    fn respecialize_uses_demote_bar() {
        let p = DecayedThreshold::from(TieringConfig::default());
        assert!(!p.respecialize(0.0));
        assert!(!p.respecialize(1.0)); // exactly at demote_heat: dies
        assert!(p.respecialize(1.5));
    }

    #[test]
    fn observe_miss_accumulates_and_keeps_first_request() {
        let t = Tiering::new(
            TieringConfig::default(),
            Box::new(DecayedThreshold::from(TieringConfig::default())),
        );
        let key = CacheKey {
            func: 0x40_0000,
            fingerprint: 7,
        };
        t.observe_miss(key, &SpecRequest::new());
        t.observe_miss(key, &SpecRequest::new());
        let st = unpoison(t.state.lock());
        let e = &st.heat[&key];
        assert_eq!(e.pending, 2);
        assert!(e.req.is_some());
        assert_eq!(e.heat, 0.0, "heat only moves at ticks");
    }
}
