//! The lock-free metrics registry.
//!
//! Every metric is a plain atomic — no locks anywhere on the update path,
//! so the registry is safe to hammer from the manager's sharded hit path
//! and the deferred worker pool alike. A disabled registry (see
//! [`MetricsRegistry::set_enabled`]) reduces every update to one relaxed
//! load-and-branch.

use crate::manager::Event;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (or be set outright).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive, in nanoseconds) of the fixed histogram
/// buckets: powers of four from 1µs to ~4s, the range a rewrite phase can
/// plausibly land in. One shared layout keeps exposition simple and the
/// observation path branch-free beyond the bucket scan.
pub const NS_BUCKET_BOUNDS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
];

/// A fixed-bucket histogram over [`NS_BUCKET_BOUNDS`] plus an overflow
/// bucket, with sum and count — the Prometheus histogram shape.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NS_BUCKET_BOUNDS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = NS_BUCKET_BOUNDS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(NS_BUCKET_BOUNDS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Upper bounds (inclusive, in model cycles) of the per-variant
/// self-time histogram buckets: powers of four from 4 to ~16M cycles.
pub const CYCLE_BUCKET_BOUNDS: [u64; 12] = [
    4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
];

/// Sentinel fingerprint labelling time spent in the *original* function
/// (dispatch fall-through) rather than any specialized variant.
pub const ORIGINAL_FP: u64 = u64::MAX;

/// Lock-free per-(func, fingerprint) self-time cell: a cycle histogram
/// over [`CYCLE_BUCKET_BOUNDS`] plus an exemplar (the costliest single
/// call seen, with its timestamp).
#[derive(Debug)]
struct SelfTimeCell {
    buckets: [AtomicU64; CYCLE_BUCKET_BOUNDS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
    exemplar_cycles: AtomicU64,
    exemplar_ts_ns: AtomicU64,
}

impl Default for SelfTimeCell {
    fn default() -> Self {
        SelfTimeCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            exemplar_cycles: AtomicU64::new(0),
            exemplar_ts_ns: AtomicU64::new(0),
        }
    }
}

impl SelfTimeCell {
    fn observe(&self, cycles: u64) {
        let idx = CYCLE_BUCKET_BOUNDS
            .iter()
            .position(|&b| cycles <= b)
            .unwrap_or(CYCLE_BUCKET_BOUNDS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(cycles, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if cycles > self.exemplar_cycles.fetch_max(cycles, Ordering::Relaxed) {
            self.exemplar_ts_ns
                .store(super::flight::now_ns(), Ordering::Relaxed);
        }
    }
}

/// A read-out of one variant's self-time cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTimeSnapshot {
    /// Original function address.
    pub func: u64,
    /// Argument fingerprint ([`ORIGINAL_FP`] = the original body).
    pub fingerprint: u64,
    /// Calls attributed.
    pub count: u64,
    /// Total attributed model cycles.
    pub sum_cycles: u64,
    /// Per-bucket counts over [`CYCLE_BUCKET_BOUNDS`], overflow last.
    pub buckets: Vec<u64>,
    /// Costliest single attributed call.
    pub exemplar_cycles: u64,
    /// Flight-epoch timestamp of the exemplar.
    pub exemplar_ts_ns: u64,
}

/// Counter identifiers. The order defines the exposition order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Ctr {
    CacheHits,
    CacheMisses,
    CacheCoalesced,
    CacheDeferred,
    CachePublished,
    CacheEvictions,
    CacheEvictedBytes,
    Rewrites,
    RewriteFailures,
    TracedInsts,
    JitCodeBytes,
    DispatchersBuilt,
    GuardHits,
    GuardFallthrough,
    NegativeHits,
    CacheStale,
    CacheInvalidated,
    PanicsContained,
    VerifyPassed,
    VerifyRejected,
    TierPromoted,
    TierDemoted,
    TierRespecialized,
    EpochPublished,
    EpochReclaimed,
    PersistSaved,
    PersistLoaded,
    PersistRejected,
    PersistSaveFailed,
    OverBudget,
}

impl Ctr {
    /// Every counter, in exposition order.
    pub const ALL: [Ctr; 30] = [
        Ctr::CacheHits,
        Ctr::CacheMisses,
        Ctr::CacheCoalesced,
        Ctr::CacheDeferred,
        Ctr::CachePublished,
        Ctr::CacheEvictions,
        Ctr::CacheEvictedBytes,
        Ctr::Rewrites,
        Ctr::RewriteFailures,
        Ctr::TracedInsts,
        Ctr::JitCodeBytes,
        Ctr::DispatchersBuilt,
        Ctr::GuardHits,
        Ctr::GuardFallthrough,
        Ctr::NegativeHits,
        Ctr::CacheStale,
        Ctr::CacheInvalidated,
        Ctr::PanicsContained,
        Ctr::VerifyPassed,
        Ctr::VerifyRejected,
        Ctr::TierPromoted,
        Ctr::TierDemoted,
        Ctr::TierRespecialized,
        Ctr::EpochPublished,
        Ctr::EpochReclaimed,
        Ctr::PersistSaved,
        Ctr::PersistLoaded,
        Ctr::PersistRejected,
        Ctr::PersistSaveFailed,
        Ctr::OverBudget,
    ];

    /// Prometheus metric name.
    pub fn name(self) -> &'static str {
        match self {
            Ctr::CacheHits => "brew_cache_hits_total",
            Ctr::CacheMisses => "brew_cache_misses_total",
            Ctr::CacheCoalesced => "brew_cache_coalesced_total",
            Ctr::CacheDeferred => "brew_cache_deferred_total",
            Ctr::CachePublished => "brew_cache_published_total",
            Ctr::CacheEvictions => "brew_cache_evictions_total",
            Ctr::CacheEvictedBytes => "brew_cache_evicted_bytes_total",
            Ctr::Rewrites => "brew_rewrites_total",
            Ctr::RewriteFailures => "brew_rewrite_failures_total",
            Ctr::TracedInsts => "brew_traced_insts_total",
            Ctr::JitCodeBytes => "brew_jit_code_bytes_total",
            Ctr::DispatchersBuilt => "brew_dispatchers_built_total",
            Ctr::GuardHits => "brew_guard_hits_total",
            Ctr::GuardFallthrough => "brew_guard_fallthrough_total",
            Ctr::NegativeHits => "brew_negative_hits_total",
            Ctr::CacheStale => "brew_cache_stale_total",
            Ctr::CacheInvalidated => "brew_cache_invalidated_total",
            Ctr::PanicsContained => "brew_rewrite_panics_total",
            Ctr::VerifyPassed => "brew_verify_passed_total",
            Ctr::VerifyRejected => "brew_verify_rejected_total",
            Ctr::TierPromoted => "brew_tier_promoted_total",
            Ctr::TierDemoted => "brew_tier_demoted_total",
            Ctr::TierRespecialized => "brew_tier_respecialized_total",
            Ctr::EpochPublished => "brew_read_epoch_published_total",
            Ctr::EpochReclaimed => "brew_read_epoch_reclaimed_total",
            Ctr::PersistSaved => "brew_persist_saved_total",
            Ctr::PersistLoaded => "brew_persist_loaded_total",
            Ctr::PersistRejected => "brew_persist_rejected_total",
            Ctr::PersistSaveFailed => "brew_persist_save_failed_total",
            Ctr::OverBudget => "brew_over_budget_total",
        }
    }

    /// One-line help string for the exposition.
    pub fn help(self) -> &'static str {
        match self {
            Ctr::CacheHits => "Specialization requests answered from the variant cache",
            Ctr::CacheMisses => "Requests that led a rewrite (single-flight leaders)",
            Ctr::CacheCoalesced => "Requests that subscribed to an in-flight rewrite",
            Ctr::CacheDeferred => "Misses answered with the original while a worker rewrites",
            Ctr::CachePublished => "Variants published by deferred workers",
            Ctr::CacheEvictions => "Variants evicted under byte-budget pressure",
            Ctr::CacheEvictedBytes => "Code bytes dropped by evictions",
            Ctr::Rewrites => "Completed rewrites",
            Ctr::RewriteFailures => "Rewrites that returned an error",
            Ctr::TracedInsts => "Guest instructions visited while tracing",
            Ctr::JitCodeBytes => "Code bytes emitted into the JIT segment by rewrites",
            Ctr::DispatchersBuilt => "Guarded dispatch stubs emitted",
            Ctr::GuardHits => "Dispatch-stub cases taken (from counting stubs)",
            Ctr::GuardFallthrough => "Dispatch-stub fall-throughs to the original",
            Ctr::NegativeHits => "Requests denied from the negative cache without re-tracing",
            Ctr::CacheStale => "Variants found stale by revalidate (folded bytes changed)",
            Ctr::CacheInvalidated => "Variants dropped by invalidation",
            Ctr::PanicsContained => "Rewrite-pipeline panics converted into errors",
            Ctr::VerifyPassed => "Variants that passed the publish gate's static verification",
            Ctr::VerifyRejected => "Variants rejected (and never published) by the publish gate",
            Ctr::TierPromoted => {
                "Hot fingerprints promoted (rewrite enqueued) by the tiering layer"
            }
            Ctr::TierDemoted => "Cold resident variants demoted (evicted) by the tiering layer",
            Ctr::TierRespecialized => {
                "Stale variants re-enqueued because their heat cleared the bar"
            }
            Ctr::EpochPublished => "Shard snapshots published (rebuild + pointer swap)",
            Ctr::EpochReclaimed => "Retired shard snapshots freed by epoch advances",
            Ctr::PersistSaved => "Variants serialized to the persistence file",
            Ctr::PersistLoaded => "Persisted variants re-verified and published on load",
            Ctr::PersistRejected => {
                "Persisted variants rejected on load (corrupt, stale, or gate-failed)"
            }
            Ctr::PersistSaveFailed => {
                "Variants that failed to serialize during a save (I/O or read error)"
            }
            Ctr::OverBudget => {
                "Finished variants refused at publish: code alone exceeds the global budget"
            }
        }
    }
}

/// Gauge identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Gge {
    InflightRewrites,
    ResidentBytes,
    ResidentVariants,
    NegativeEntries,
    HeatTracked,
    HeatMax,
    HeatMean,
    ReadEpoch,
    EpochLimbo,
}

impl Gge {
    /// Every gauge, in exposition order.
    pub const ALL: [Gge; 9] = [
        Gge::InflightRewrites,
        Gge::ResidentBytes,
        Gge::ResidentVariants,
        Gge::NegativeEntries,
        Gge::HeatTracked,
        Gge::HeatMax,
        Gge::HeatMean,
        Gge::ReadEpoch,
        Gge::EpochLimbo,
    ];

    /// Prometheus metric name.
    pub fn name(self) -> &'static str {
        match self {
            Gge::InflightRewrites => "brew_inflight_rewrites",
            Gge::ResidentBytes => "brew_cache_resident_bytes",
            Gge::ResidentVariants => "brew_cache_resident_variants",
            Gge::NegativeEntries => "brew_negative_entries",
            Gge::HeatTracked => "brew_tier_heat_tracked",
            Gge::HeatMax => "brew_tier_heat_max_milli",
            Gge::HeatMean => "brew_tier_heat_mean_milli",
            Gge::ReadEpoch => "brew_read_epoch",
            Gge::EpochLimbo => "brew_read_epoch_limbo",
        }
    }

    /// One-line help string for the exposition.
    pub fn help(self) -> &'static str {
        match self {
            Gge::InflightRewrites => "Rewrites currently being traced",
            Gge::ResidentBytes => "Code bytes currently resident in the variant cache",
            Gge::ResidentVariants => "Variants currently resident in the cache",
            Gge::NegativeEntries => "Keys currently memoized as failing in the negative cache",
            Gge::HeatTracked => "Keys with live tiering heat scores as of the last tick",
            Gge::HeatMax => "Hottest tiering heat score (x1000) as of the last tick",
            Gge::HeatMean => "Mean tiering heat score (x1000) as of the last tick",
            Gge::ReadEpoch => "Sum of per-shard reclamation epochs of the variant cache",
            Gge::EpochLimbo => "Retired shard snapshots awaiting epoch reclamation",
        }
    }
}

/// Histogram identifiers — the per-phase rewrite-time distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Hst {
    TraceNs,
    PassNs,
    EmitNs,
    TotalNs,
    VerifyNs,
}

impl Hst {
    /// Every histogram, in exposition order.
    pub const ALL: [Hst; 5] = [
        Hst::TraceNs,
        Hst::PassNs,
        Hst::EmitNs,
        Hst::TotalNs,
        Hst::VerifyNs,
    ];

    /// Prometheus metric name.
    pub fn name(self) -> &'static str {
        match self {
            Hst::TraceNs => "brew_rewrite_trace_ns",
            Hst::PassNs => "brew_rewrite_pass_ns",
            Hst::EmitNs => "brew_rewrite_emit_ns",
            Hst::TotalNs => "brew_rewrite_total_ns",
            Hst::VerifyNs => "brew_verify_ns",
        }
    }

    /// One-line help string for the exposition.
    pub fn help(self) -> &'static str {
        match self {
            Hst::TraceNs => "Nanoseconds per rewrite spent decoding and tracing",
            Hst::PassNs => "Nanoseconds per rewrite spent in optimization passes",
            Hst::EmitNs => "Nanoseconds per rewrite spent on layout, encoding, relocation",
            Hst::TotalNs => "Nanoseconds per rewrite across all instrumented phases",
            Hst::VerifyNs => "Nanoseconds per variant spent in publish-gate verification",
        }
    }
}

/// The registry: every metric the pipeline produces, behind atomics.
/// `Send + Sync` by construction; share it in an `Arc`.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: AtomicBool,
    counters: [Counter; Ctr::ALL.len()],
    gauges: [Gauge; Gge::ALL.len()],
    hists: [Histogram; Hst::ALL.len()],
    /// Per-(func, fingerprint) self-time cells. The write lock is taken
    /// only when a *new* variant first reports time; steady-state
    /// observation is a read-lock + atomics.
    self_times: RwLock<HashMap<(u64, u64), Arc<SelfTimeCell>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh, enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            counters: std::array::from_fn(|_| Counter::default()),
            gauges: std::array::from_fn(|_| Gauge::default()),
            hists: std::array::from_fn(|_| Histogram::default()),
            self_times: RwLock::new(HashMap::new()),
        }
    }

    /// Turn recording on or off. Off, every update path reduces to one
    /// relaxed load; existing values are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the registry records updates.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The counter for `c`.
    pub fn counter(&self, c: Ctr) -> &Counter {
        &self.counters[c as usize]
    }

    /// The gauge for `g`.
    pub fn gauge(&self, g: Gge) -> &Gauge {
        &self.gauges[g as usize]
    }

    /// The histogram for `h`.
    pub fn histogram(&self, h: Hst) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Increment counter `c` by `n`, if enabled.
    pub fn count(&self, c: Ctr, n: u64) {
        if self.enabled() {
            self.counter(c).add(n);
        }
    }

    /// Set gauge `g` to `v`, if enabled.
    pub fn gauge_set(&self, g: Gge, v: i64) {
        if self.enabled() {
            self.gauge(g).set(v);
        }
    }

    /// Add `d` to gauge `g`, if enabled.
    pub fn gauge_add(&self, g: Gge, d: i64) {
        if self.enabled() {
            self.gauge(g).add(d);
        }
    }

    /// Record `v` in histogram `h`, if enabled.
    pub fn observe(&self, h: Hst, v: u64) {
        if self.enabled() {
            self.histogram(h).observe(v);
        }
    }

    /// Attribute `cycles` of self-time to the variant `(func,
    /// fingerprint)` (use [`ORIGINAL_FP`] for the original body). Fed by
    /// [`DispatchProfiler`](super::DispatchProfiler); steady state is a
    /// read-lock plus relaxed atomics.
    pub fn observe_self_time(&self, func: u64, fingerprint: u64, cycles: u64) {
        if !self.enabled() {
            return;
        }
        let key = (func, fingerprint);
        let cell = {
            let map = self.self_times.read().unwrap_or_else(|e| e.into_inner());
            map.get(&key).cloned()
        };
        let cell = cell.unwrap_or_else(|| {
            let mut map = self.self_times.write().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key).or_default())
        });
        cell.observe(cycles);
    }

    /// Snapshot every self-time cell, sorted by (func, fingerprint) for
    /// deterministic output.
    pub fn self_times(&self) -> Vec<SelfTimeSnapshot> {
        let map = self.self_times.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<SelfTimeSnapshot> = map
            .iter()
            .map(|(&(func, fingerprint), cell)| SelfTimeSnapshot {
                func,
                fingerprint,
                count: cell.count.load(Ordering::Relaxed),
                sum_cycles: cell.sum.load(Ordering::Relaxed),
                buckets: cell
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                exemplar_cycles: cell.exemplar_cycles.load(Ordering::Relaxed),
                exemplar_ts_ns: cell.exemplar_ts_ns.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by_key(|s| (s.func, s.fingerprint));
        out
    }

    /// Fold one manager [`Event`] into the registry. Called by the
    /// manager on *every* event, sink or no sink — the counters here can
    /// never silently lose an event the way an absent sink drops it.
    pub fn record_event(&self, ev: &Event) {
        if !self.enabled() {
            return;
        }
        match ev {
            Event::Hit { .. } => self.counter(Ctr::CacheHits).inc(),
            Event::Miss { .. } => self.counter(Ctr::CacheMisses).inc(),
            Event::Coalesced { .. } => self.counter(Ctr::CacheCoalesced).inc(),
            Event::Deferred { .. } => self.counter(Ctr::CacheDeferred).inc(),
            Event::Published { .. } => self.counter(Ctr::CachePublished).inc(),
            Event::Evicted { code_len, .. } => {
                self.counter(Ctr::CacheEvictions).inc();
                self.counter(Ctr::CacheEvictedBytes).add(*code_len as u64);
            }
            Event::Rewritten {
                code_len, stats, ..
            } => {
                self.counter(Ctr::Rewrites).inc();
                self.counter(Ctr::TracedInsts).add(stats.traced);
                self.counter(Ctr::JitCodeBytes).add(*code_len as u64);
                self.histogram(Hst::TraceNs).observe(stats.trace_ns);
                self.histogram(Hst::PassNs).observe(stats.pass_ns);
                self.histogram(Hst::EmitNs).observe(stats.emit_ns);
                self.histogram(Hst::TotalNs).observe(stats.total_ns());
            }
            Event::DispatcherBuilt { .. } => self.counter(Ctr::DispatchersBuilt).inc(),
            Event::Denied { .. } => self.counter(Ctr::NegativeHits).inc(),
            Event::Stale { .. } => self.counter(Ctr::CacheStale).inc(),
            Event::Invalidated { .. } => self.counter(Ctr::CacheInvalidated).inc(),
            Event::Promoted { .. } => self.counter(Ctr::TierPromoted).inc(),
            Event::Demoted { .. } => self.counter(Ctr::TierDemoted).inc(),
            Event::Respecialized { .. } => self.counter(Ctr::TierRespecialized).inc(),
        }
    }

    /// Render the registry in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, cumulative `_bucket{le=...}` series
    /// plus `_sum` / `_count` for histograms).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for c in Ctr::ALL {
            out.push_str(&format!("# HELP {} {}\n", c.name(), c.help()));
            out.push_str(&format!("# TYPE {} counter\n", c.name()));
            out.push_str(&format!("{} {}\n", c.name(), self.counter(c).get()));
        }
        for g in Gge::ALL {
            out.push_str(&format!("# HELP {} {}\n", g.name(), g.help()));
            out.push_str(&format!("# TYPE {} gauge\n", g.name()));
            out.push_str(&format!("{} {}\n", g.name(), self.gauge(g).get()));
        }
        for h in Hst::ALL {
            let hist = self.histogram(h);
            out.push_str(&format!("# HELP {} {}\n", h.name(), h.help()));
            out.push_str(&format!("# TYPE {} histogram\n", h.name()));
            let mut cum = 0u64;
            for (i, n) in hist.bucket_counts().iter().enumerate() {
                cum += n;
                let le = NS_BUCKET_BOUNDS
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".into());
                out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cum}\n", h.name()));
            }
            out.push_str(&format!("{}_sum {}\n", h.name(), hist.sum()));
            out.push_str(&format!("{}_count {}\n", h.name(), hist.count()));
        }
        let st = self.self_times();
        if !st.is_empty() {
            let name = "brew_variant_self_cycles";
            out.push_str(&format!(
                "# HELP {name} Model cycles attributed per (func, fingerprint) variant\n"
            ));
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for s in &st {
                let fp = if s.fingerprint == ORIGINAL_FP {
                    "original".to_string()
                } else {
                    format!("{:#x}", s.fingerprint)
                };
                let labels = format!("func=\"{:#x}\",fp=\"{fp}\"", s.func);
                let mut cum = 0u64;
                for (i, n) in s.buckets.iter().enumerate() {
                    cum += n;
                    let le = CYCLE_BUCKET_BOUNDS
                        .get(i)
                        .map(|b| b.to_string())
                        .unwrap_or_else(|| "+Inf".into());
                    out.push_str(&format!("{name}_bucket{{{labels},le=\"{le}\"}} {cum}\n"));
                }
                out.push_str(&format!("{name}_sum{{{labels}}} {}\n", s.sum_cycles));
                out.push_str(&format!("{name}_count{{{labels}}} {}\n", s.count));
                out.push_str(&format!("{name}_max{{{labels}}} {}\n", s.exemplar_cycles));
            }
        }
        out
    }

    /// Render the registry as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
    /// "buckets":[...],"sum":n,"count":n}},"self_time":[...]}` — the
    /// `self_time` array carries one entry per (func, fingerprint)
    /// variant with attributed cycles, sorted for determinism.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, c) in Ctr::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name(), self.counter(*c).get()));
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in Gge::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", g.name(), self.gauge(*g).get()));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in Hst::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let hist = self.histogram(*h);
            let bounds: Vec<String> = NS_BUCKET_BOUNDS.iter().map(|b| b.to_string()).collect();
            let buckets: Vec<String> = hist.bucket_counts().iter().map(|n| n.to_string()).collect();
            out.push_str(&format!(
                "\"{}\":{{\"bounds\":[{}],\"buckets\":[{}],\"sum\":{},\"count\":{}}}",
                h.name(),
                bounds.join(","),
                buckets.join(","),
                hist.sum(),
                hist.count()
            ));
        }
        out.push_str("},\"self_time\":[");
        for (i, s) in self.self_times().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = s.buckets.iter().map(|n| n.to_string()).collect();
            out.push_str(&format!(
                "{{\"func\":{},\"fingerprint\":{},\"original\":{},\"count\":{},\"sum_cycles\":{},\"buckets\":[{}],\"exemplar_cycles\":{},\"exemplar_ts_ns\":{}}}",
                s.func,
                s.fingerprint,
                s.fingerprint == ORIGINAL_FP,
                s.count,
                s.sum_cycles,
                buckets.join(","),
                s.exemplar_cycles,
                s.exemplar_ts_ns
            ));
        }
        out.push_str("]}");
        super::json::checked_export("metrics JSON snapshot", out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let m = MetricsRegistry::new();
        m.count(Ctr::CacheHits, 3);
        m.counter(Ctr::CacheHits).inc();
        assert_eq!(m.counter(Ctr::CacheHits).get(), 4);
        m.gauge_set(Gge::ResidentBytes, 128);
        m.gauge_add(Gge::ResidentBytes, -28);
        assert_eq!(m.gauge(Gge::ResidentBytes).get(), 100);
    }

    #[test]
    fn disabled_registry_drops_updates() {
        let m = MetricsRegistry::new();
        m.set_enabled(false);
        m.count(Ctr::CacheHits, 5);
        m.observe(Hst::TraceNs, 1_000);
        m.record_event(&Event::Miss { func: 1 });
        assert_eq!(m.counter(Ctr::CacheHits).get(), 0);
        assert_eq!(m.counter(Ctr::CacheMisses).get(), 0);
        assert_eq!(m.histogram(Hst::TraceNs).count(), 0);
        m.set_enabled(true);
        m.record_event(&Event::Miss { func: 1 });
        assert_eq!(m.counter(Ctr::CacheMisses).get(), 1);
    }

    #[test]
    fn histogram_buckets_cover_range() {
        let h = Histogram::default();
        h.observe(0); // below the first bound
        h.observe(1_000); // exactly on a bound → that bucket
        h.observe(5_000_000_000); // beyond the last bound → overflow
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2);
        assert_eq!(*counts.last().unwrap(), 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 5_000_001_000);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let m = MetricsRegistry::new();
        m.count(Ctr::Rewrites, 1);
        m.observe(Hst::TotalNs, 2_000);
        let text = m.render_prometheus();
        for line in text.lines() {
            assert!(
                line.starts_with("# HELP ")
                    || line.starts_with("# TYPE ")
                    || line.split_once(' ').is_some_and(|(name, val)| {
                        name.starts_with("brew_") && val.parse::<i64>().is_ok()
                    }),
                "malformed exposition line: {line}"
            );
        }
        assert!(text.contains("brew_rewrites_total 1"));
        // Histogram buckets are cumulative and end with +Inf == count.
        assert!(text.contains("brew_rewrite_total_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("brew_rewrite_total_ns_count 1"));
    }

    #[test]
    fn json_snapshot_is_valid() {
        let m = MetricsRegistry::new();
        m.record_event(&Event::Hit { func: 1, entry: 2 });
        let s = m.snapshot_json();
        crate::telemetry::validate_json(&s).unwrap();
        assert!(s.contains("\"brew_cache_hits_total\":1"));
    }

    #[test]
    fn bucket_boundaries_exact_powers_and_neighbours() {
        // Every exact bound must land in its own bucket (inclusive upper
        // bound), and bound + 1 must land in the next one — scanned for
        // the whole power-of-4 ladder so any off-by-one in the selection
        // shows up at the exact boundary, not mid-range.
        for (i, &bound) in NS_BUCKET_BOUNDS.iter().enumerate() {
            let h = Histogram::default();
            h.observe(bound);
            let counts = h.bucket_counts();
            assert_eq!(counts[i], 1, "bound {bound} must fill bucket {i}");
            assert_eq!(counts.iter().sum::<u64>(), 1);

            let h2 = Histogram::default();
            h2.observe(bound + 1);
            let counts2 = h2.bucket_counts();
            assert_eq!(
                counts2[i + 1],
                1,
                "bound {bound} + 1 must spill into bucket {}",
                i + 1
            );
        }
    }

    #[test]
    fn bucket_extremes_zero_and_u64_max() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(u64::MAX);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1, "0 belongs in the first bucket");
        assert_eq!(
            *counts.last().unwrap(),
            1,
            "u64::MAX belongs in the overflow bucket"
        );
        assert_eq!(h.count(), 2);
        // Sum wraps per u64 arithmetic; count stays exact.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn cycle_bucket_boundaries_exact_powers() {
        // The self-time ladder gets the same boundary scan as the ns
        // ladder.
        for (i, &bound) in CYCLE_BUCKET_BOUNDS.iter().enumerate() {
            let m = MetricsRegistry::new();
            m.observe_self_time(0x40, 0x1, bound);
            m.observe_self_time(0x40, 0x1, bound + 1);
            let st = m.self_times();
            assert_eq!(st[0].buckets[i], 1, "bound {bound} in bucket {i}");
            assert_eq!(
                st[0].buckets[i + 1],
                1,
                "bound {bound}+1 in bucket {}",
                i + 1
            );
        }
        let m = MetricsRegistry::new();
        m.observe_self_time(0x40, 0x1, u64::MAX);
        let st = m.self_times();
        assert_eq!(*st[0].buckets.last().unwrap(), 1);
    }

    #[test]
    fn self_time_cells_track_exemplars_and_export() {
        let m = MetricsRegistry::new();
        m.observe_self_time(0x40_0000, 0x7, 100);
        m.observe_self_time(0x40_0000, 0x7, 900);
        m.observe_self_time(0x40_0000, 0x7, 50);
        m.observe_self_time(0x40_0000, ORIGINAL_FP, 5_000);
        let st = m.self_times();
        assert_eq!(st.len(), 2);
        let spec = &st[0];
        assert_eq!((spec.func, spec.fingerprint), (0x40_0000, 0x7));
        assert_eq!(spec.count, 3);
        assert_eq!(spec.sum_cycles, 1_050);
        assert_eq!(spec.exemplar_cycles, 900);
        let text = m.render_prometheus();
        assert!(text.contains("brew_variant_self_cycles_sum{func=\"0x400000\",fp=\"0x7\"} 1050"));
        assert!(text.contains("fp=\"original\""));
        assert!(text.contains("brew_variant_self_cycles_max{func=\"0x400000\",fp=\"0x7\"} 900"));
        let json = m.snapshot_json();
        crate::telemetry::validate_json(&json).unwrap();
        assert!(json.contains("\"sum_cycles\":1050"));
        assert!(json.contains("\"original\":true"));
    }

    #[test]
    fn disabled_registry_drops_self_time() {
        let m = MetricsRegistry::new();
        m.set_enabled(false);
        m.observe_self_time(1, 2, 300);
        assert!(m.self_times().is_empty());
    }
}
