//! Flight recorder: a lock-free, allocation-free MPSC ring journal of
//! manager activity.
//!
//! The metrics registry answers "how many"; the flight recorder answers
//! "what happened, in what order, and why" — a fixed-capacity ring of
//! seqlock-stamped event records that every manager path (dispatch
//! outcomes, tiering decisions with their heat score and threshold,
//! epoch publish/reclaim, persistence, panic containment) writes into
//! with monotonic nanosecond timestamps. Think of an aircraft flight
//! recorder: it is always on, it never blocks or allocates on the hot
//! path, and when something goes wrong the last `capacity` events are
//! right there to dump.
//!
//! # Record-path contract
//!
//! [`FlightRecorder::record`] is **lock-free and allocation-free**: one
//! `fetch_add` claims a ring ticket (slot = ticket mod capacity), one CAS
//! claims the slot's sequence word odd, the payload words are stored
//! *exclusively*, and the sequence word is stamped even — a per-slot
//! seqlock whose write side is owned, never shared. Two writers racing
//! for the same slot (a full lap apart) resolve at the claim CAS: the
//! later ticket wins the slot (drop-oldest); if the earlier writer is
//! already mid-payload, the later one abandons instead of interleaving
//! stores — so a slot's payload words always belong to exactly one
//! record. Overwritten events are *counted*, never blocked on:
//! `head - capacity` is exactly the number of records lost to
//! wraparound.
//!
//! Every payload word is an `AtomicU64`, so a torn read is impossible at
//! the language level; the seqlock stamps only decide whether a slot's
//! words belong to one consistent record — and, because writes are
//! exclusive, a consistent even stamp now *proves* it.
//! [`FlightRecorder::dump`] validates each slot's stamp before and after
//! reading the payload and classifies the failures: a slot caught
//! genuinely mid-write counts as `torn`; a slot that consistently holds
//! a different lap's record (overwritten during the dump, or its write
//! abandoned) counts as `lapped`. Dumping concurrently with writers is
//! safe and wait-free for both sides, and a quiesced ring always dumps
//! `torn == 0` — both properties are exercised by the `flight.rs`
//! eight-writer torture and forced-lap regression tests.
//!
//! # Timestamps
//!
//! All timestamps come from one process-global monotonic epoch
//! ([`now_ns`]), so events recorded by different threads sort onto a
//! single timeline and per-thread order is monotone by construction.
//! Thread ids are compact (first flight-recorder use on a thread assigns
//! the next integer), so dumps stay readable.
//!
//! # Exports
//!
//! - [`FlightDump::render_text`] — the line-oriented dump format
//!   (`ts=<ns> tid=<n> kind=<NAME> k=v ...`) that `brew-inspect` parses
//!   and panic dumps use;
//! - [`FlightDump::to_chrome_json`] — instant events in the
//!   chrome://tracing format;
//! - [`merged_chrome_json`] — one timeline merging a rewrite's
//!   [`SpanRecorder`] span tree with the flight
//!   events around it. Both exports pass the strict
//!   [`validate_json`](super::validate_json) gate.

use super::span::SpanKind;
use super::{json_escape, SpanRecorder};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-global monotonic epoch every flight timestamp is relative
/// to — first use pins it.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-global flight epoch. Monotonic across
/// threads (one shared clock), so per-thread event order is monotone and
/// cross-thread timestamps are directly comparable.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Compact id of the calling thread: the first flight-recorder use on a
/// thread assigns the next integer (starting at 1).
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// How one argument of a [`FlightKind`] renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgFmt {
    /// Hexadecimal (addresses, fingerprints).
    Hex,
    /// Plain decimal.
    Dec,
    /// A fixed-point milli value (`1234` renders `1.234`) — heat scores
    /// and thresholds survive the integer payload this way.
    Milli,
}

macro_rules! flight_kinds {
    ($( $name:ident = $disc:literal, $label:literal, [ $( ($arg:literal, $fmt:ident) ),* ] ;)*) => {
        /// Every event kind the flight recorder records. Discriminants are
        /// stable (they appear in dumps and the wire word), names match
        /// the manager [`Event`](crate::manager::Event) variants where one
        /// exists.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(u8)]
        pub enum FlightKind {
            $(
                #[allow(missing_docs)]
                $name = $disc,
            )*
        }

        impl FlightKind {
            /// Every kind, for iteration and decode.
            pub const ALL: &'static [FlightKind] = &[ $( FlightKind::$name, )* ];

            /// The dump-format label (`kind=<label>`).
            pub fn label(self) -> &'static str {
                match self { $( FlightKind::$name => $label, )* }
            }

            /// Names and formats of the meaningful payload words (up to 4).
            pub fn args(self) -> &'static [(&'static str, ArgFmt)] {
                match self { $( FlightKind::$name => &[ $( ($arg, ArgFmt::$fmt) ),* ], )* }
            }

            /// Decode a stored discriminant.
            pub fn from_u8(v: u8) -> Option<FlightKind> {
                match v {
                    $( $disc => Some(FlightKind::$name), )*
                    _ => None,
                }
            }
        }
    };
}

flight_kinds! {
    Hit            = 1,  "HIT",        [("func", Hex), ("entry", Hex)];
    Miss           = 2,  "MISS",       [("func", Hex)];
    Coalesced      = 3,  "COALESCED",  [("func", Hex)];
    Deferred       = 4,  "DEFERRED",   [("func", Hex)];
    Rewritten      = 5,  "REWRITTEN",  [("func", Hex), ("entry", Hex), ("len", Dec), ("ns", Dec)];
    Published      = 6,  "PUBLISHED",  [("func", Hex), ("entry", Hex)];
    Evicted        = 7,  "EVICTED",    [("func", Hex), ("entry", Hex), ("len", Dec)];
    DispatcherBuilt= 8,  "DISPATCHER", [("func", Hex), ("entry", Hex), ("variants", Dec)];
    Denied         = 9,  "DENIED",     [("func", Hex), ("attempts", Dec)];
    Stale          = 10, "STALE",      [("func", Hex), ("entry", Hex)];
    Invalidated    = 11, "INVALIDATED",[("func", Hex), ("entry", Hex)];
    Promoted       = 12, "PROMOTED",   [("func", Hex), ("fp", Hex), ("heat", Milli), ("bar", Milli)];
    Demoted        = 13, "DEMOTED",    [("func", Hex), ("fp", Hex), ("heat", Milli), ("bar", Milli)];
    Respecialized  = 14, "RESPEC",     [("func", Hex), ("fp", Hex), ("heat", Milli)];
    TickBegin      = 15, "TICK_BEGIN", [("tick", Dec)];
    TickEnd        = 16, "TICK_END",   [("tick", Dec), ("sampled", Dec), ("promoted", Dec), ("demoted", Dec)];
    EpochPublish   = 17, "EPOCH_PUB",  [("shard", Dec), ("epoch", Dec)];
    EpochReclaim   = 18, "EPOCH_FREE", [("shard", Dec), ("freed", Dec)];
    PersistSave    = 19, "SAVE",       [("variants", Dec), ("bytes", Dec)];
    PersistLoad    = 20, "LOAD",       [("published", Dec), ("rejected", Dec)];
    PanicContained = 21, "PANIC",      [];
    VerifyPass     = 22, "VERIFY_OK",  [("func", Hex), ("ns", Dec)];
    VerifyReject   = 23, "VERIFY_REJ", [("func", Hex), ("findings", Dec)];
    SymbolPublish  = 24, "SYM_PUB",    [("entry", Hex), ("len", Dec), ("gen", Dec)];
    SymbolRetire   = 25, "SYM_RET",    [("entry", Hex)];
    PersistSaveFailed = 26, "SAVE_FAIL", [("func", Hex), ("entry", Hex)];
    OverBudget     = 27, "OVER_BUDGET", [("func", Hex), ("len", Dec), ("budget", Dec)];
}

/// Convert a heat score to the milli fixed-point payload word.
pub fn milli(v: f64) -> u64 {
    (v.max(0.0) * 1000.0) as u64
}

/// One decoded flight-recorder entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Nanoseconds since the process flight epoch ([`now_ns`]).
    pub ts_ns: u64,
    /// Compact recorder thread id ([`thread_id`]).
    pub tid: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Raw payload words; `kind.args()` names the meaningful prefix.
    pub args: [u64; 4],
}

impl FlightEntry {
    /// Render as one dump line: `ts=<ns> tid=<n> kind=<NAME> k=v ...`.
    pub fn render_line(&self) -> String {
        let mut out = format!(
            "ts={} tid={} kind={}",
            self.ts_ns,
            self.tid,
            self.kind.label()
        );
        for (i, (name, fmt)) in self.kind.args().iter().enumerate() {
            let v = self.args[i];
            match fmt {
                ArgFmt::Hex => out.push_str(&format!(" {name}={v:#x}")),
                ArgFmt::Dec => out.push_str(&format!(" {name}={v}")),
                ArgFmt::Milli => out.push_str(&format!(" {name}={}.{:03}", v / 1000, v % 1000)),
            }
        }
        out
    }
}

/// Payload words per slot: packed kind+tid, timestamp, four arguments.
const SLOT_WORDS: usize = 6;

struct Slot {
    /// Seqlock stamp: `0` = never written, `2t+1` = ticket `t` writing,
    /// `2t+2` = ticket `t` complete.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

/// The ring journal. Construction allocates the slots once; recording
/// never allocates or locks again. Share it in an `Arc`.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    mask: u64,
    /// Ticket counter; slot = ticket & mask. `head - capacity` (when
    /// positive) is the number of overwritten (dropped-oldest) records.
    head: AtomicU64,
    enabled: AtomicBool,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .finish()
    }
}

/// Default ring capacity (slots) used by the manager builder.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder with `capacity` slots (rounded up to a power of two,
    /// minimum 64). This is the only allocation the recorder ever makes.
    pub fn new(capacity: usize) -> Self {
        let n = capacity.max(64).next_power_of_two();
        let slots = (0..n)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlightRecorder {
            slots,
            mask: (n - 1) as u64,
            head: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Ring capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Turn recording on or off; off reduces [`record`](Self::record) to
    /// one relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the recorder accepts events.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Total records accepted so far (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records lost to drop-oldest wraparound so far.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Record one event. Lock-free, allocation-free, never blocks: one
    /// ticket `fetch_add`, one clock read, one claim CAS, seven atomic
    /// stores. Unused argument positions should be 0.
    pub fn record(&self, kind: FlightKind, args: [u64; 4]) {
        if !self.enabled() {
            return;
        }
        let ts = now_ns();
        let tid = thread_id();
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        // Claim the slot by CAS-ing its stamp to our odd value. The claim
        // makes the payload stores *exclusive*: once `seq == 2t+1`, every
        // other writer for this slot abandons (below), so two racing
        // writers can never interleave payload words under a stamp that
        // later reads as consistent — the full-lap torn-write race of the
        // blind-store protocol is structurally closed.
        let mut seen = slot.seq.load(Ordering::Relaxed);
        loop {
            // A stamp at or above ours means a writer a full lap *ahead*
            // already owns (or finished) the slot; drop-oldest says our
            // older record loses.
            if seen > ticket * 2 {
                return;
            }
            // An odd lower stamp is a writer a full lap *behind* us still
            // mid-payload. Stealing the slot would mix payloads, and
            // waiting would block the hot path — abandon our record
            // instead (one ring lap raced an eight-store window; the slot
            // then reads as a consistent older record, counted `lapped`).
            if seen % 2 == 1 {
                return;
            }
            match slot.seq.compare_exchange_weak(
                seen,
                ticket * 2 + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(s) => seen = s,
            }
        }
        slot.words[0].store((kind as u64) | (tid << 8), Ordering::Relaxed);
        slot.words[1].store(ts, Ordering::Relaxed);
        for (i, a) in args.iter().enumerate() {
            slot.words[2 + i].store(*a, Ordering::Relaxed);
        }
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// Snapshot the ring into a [`FlightDump`]: up to `capacity` most
    /// recent records, oldest first. Wait-free for both sides — writers
    /// keep recording. A slot caught mid-write counts in
    /// [`FlightDump::torn`]; a slot that consistently holds a *different
    /// lap's* record (overwritten under us, or the expected write was
    /// abandoned) counts in [`FlightDump::lapped`]. Every ticket in the
    /// window lands in exactly one bucket, so `entries + torn + lapped ==
    /// min(recorded, capacity)` — and a quiesced ring always dumps with
    /// `torn == 0`.
    pub fn dump(&self) -> FlightDump {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut entries = Vec::with_capacity((head - start) as usize);
        let mut torn = 0u64;
        let mut lapped = 0u64;
        for ticket in start..head {
            let slot = &self.slots[(ticket & self.mask) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            let words: [u64; SLOT_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            std::sync::atomic::fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            // Mid-write: the stamps moved under us, the write is odd
            // (claimed, payload in flight), or the slot was claimed but
            // never stamped (0). These are the only genuine collisions.
            if s1 != s2 || s1 == 0 || !s1.is_multiple_of(2) {
                torn += 1;
                continue;
            }
            // Consistent but the wrong lap: the record we wanted was
            // overwritten while we read (newer stamp) or its writer
            // abandoned against a slower full-lap-behind writer (older
            // stamp). Either way the slot holds one *whole* record — just
            // not ticket's — so it is lapped, not torn.
            if (s1 - 2) / 2 != ticket {
                lapped += 1;
                continue;
            }
            let Some(kind) = FlightKind::from_u8((words[0] & 0xff) as u8) else {
                torn += 1;
                continue;
            };
            entries.push(FlightEntry {
                ts_ns: words[1],
                tid: words[0] >> 8,
                kind,
                args: [words[2], words[3], words[4], words[5]],
            });
        }
        // Tickets are claimed before timestamps are read, so ring order
        // can locally disagree with clock order; the timeline sorts by
        // time (stable, so equal stamps keep ring order).
        entries.sort_by_key(|e| e.ts_ns);
        FlightDump {
            entries,
            dropped: start,
            torn,
            lapped,
            recorded: head,
        }
    }
}

/// A decoded snapshot of the flight ring: the surviving entries plus the
/// loss accounting that makes the snapshot honest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Consistent records, oldest first (sorted by timestamp).
    pub entries: Vec<FlightEntry>,
    /// Records overwritten by drop-oldest before this dump.
    pub dropped: u64,
    /// Slots skipped because a writer was genuinely mid-update while we
    /// read them. A quiesced ring always dumps `torn == 0`.
    pub torn: u64,
    /// Slots that consistently held a different lap's record than the
    /// one this dump expected (overwritten during the dump, or the
    /// expected write was abandoned against a slower lapped writer).
    pub lapped: u64,
    /// Total records accepted by the recorder up to the dump.
    pub recorded: u64,
}

impl FlightDump {
    /// Render the dump in the line-oriented text format `brew-inspect`
    /// consumes: a header line, then one line per entry.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "# brew flight dump v1 entries={} recorded={} dropped={} torn={} lapped={}\n",
            self.entries.len(),
            self.recorded,
            self.dropped,
            self.torn,
            self.lapped
        );
        for e in &self.entries {
            out.push_str(&e.render_line());
            out.push('\n');
        }
        out
    }

    /// Render as chrome://tracing JSON: every entry an instant event on
    /// its recorder thread. Validated by the strict JSON gate like every
    /// telemetry export.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_flight_event(&mut out, e);
        }
        out.push_str("]}");
        super::json::checked_export("flight chrome export", out)
    }
}

/// Append one flight entry as a chrome instant event (pid 1, tid = 100 +
/// recorder tid so flight threads sort after the span track).
fn push_flight_event(out: &mut String, e: &FlightEntry) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"flight\",\"pid\":1,\"tid\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3}",
        json_escape(e.kind.label()),
        100 + e.tid,
        e.ts_ns as f64 / 1_000.0
    ));
    let specs = e.kind.args();
    if !specs.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (name, fmt)) in specs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = e.args[i];
            let rendered = match fmt {
                ArgFmt::Hex => format!("{v:#x}"),
                ArgFmt::Dec => format!("{v}"),
                ArgFmt::Milli => format!("{}.{:03}", v / 1000, v % 1000),
            };
            out.push_str(&format!("\"{}\":\"{}\"", json_escape(name), rendered));
        }
        out.push('}');
    }
    out.push('}');
}

/// Merge a rewrite's span tree and a flight dump onto **one**
/// chrome://tracing timeline: spans keep their tid 1 track, flight events
/// land on per-thread tracks (tid 100+), and span timestamps are shifted
/// by the recorder's flight-epoch offset so both clocks agree. Open the
/// output in Perfetto to see manager decisions interleaved with the
/// rewrite phases they triggered.
pub fn merged_chrome_json(spans: &SpanRecorder, dump: &FlightDump) -> String {
    let base = spans.flight_epoch_ns();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for e in spans.events() {
        if !first {
            out.push(',');
        }
        first = false;
        let ts = (base + e.start_ns) as f64 / 1_000.0;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":1,\"ts\":{ts:.3}",
            json_escape(&e.name),
            e.cat
        ));
        match e.kind {
            SpanKind::Complete => {
                out.push_str(&format!(
                    ",\"ph\":\"X\",\"dur\":{:.3}",
                    e.dur_ns as f64 / 1_000.0
                ));
            }
            SpanKind::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        }
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push('}');
        }
        out.push('}');
    }
    for e in &dump.entries {
        if !first {
            out.push(',');
        }
        first = false;
        push_flight_event(&mut out, e);
    }
    out.push_str("]}");
    super::json::checked_export("merged chrome export", out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_dump_roundtrip() {
        let r = FlightRecorder::new(64);
        r.record(FlightKind::Miss, [0x40_0000, 0, 0, 0]);
        r.record(FlightKind::Rewritten, [0x40_0000, 0x90_0040, 128, 55_000]);
        let d = r.dump();
        assert_eq!(d.entries.len(), 2);
        assert_eq!(d.dropped, 0);
        assert_eq!(d.torn, 0);
        assert_eq!(d.entries[0].kind, FlightKind::Miss);
        assert_eq!(d.entries[1].args[2], 128);
        assert!(d.entries[0].ts_ns <= d.entries[1].ts_ns);
        let text = d.render_text();
        assert!(text.starts_with("# brew flight dump v1"));
        assert!(text.contains("kind=REWRITTEN func=0x400000 entry=0x900040 len=128 ns=55000"));
    }

    #[test]
    fn drop_oldest_counts_without_blocking() {
        let r = FlightRecorder::new(64); // rounds to 64 slots
        for i in 0..100u64 {
            r.record(FlightKind::Hit, [i, i, 0, 0]);
        }
        let d = r.dump();
        assert_eq!(d.recorded, 100);
        assert_eq!(d.dropped, 36);
        assert_eq!(d.entries.len(), 64);
        // The survivors are exactly the newest 64, in order.
        let firsts: Vec<u64> = d.entries.iter().map(|e| e.args[0]).collect();
        assert_eq!(firsts, (36..100).collect::<Vec<_>>());
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let r = FlightRecorder::new(64);
        r.set_enabled(false);
        r.record(FlightKind::Hit, [1, 2, 0, 0]);
        assert_eq!(r.recorded(), 0);
        r.set_enabled(true);
        r.record(FlightKind::Hit, [1, 2, 0, 0]);
        assert_eq!(r.dump().entries.len(), 1);
    }

    #[test]
    fn milli_renders_fixed_point() {
        let e = FlightEntry {
            ts_ns: 5,
            tid: 1,
            kind: FlightKind::Promoted,
            args: [0x40, 0x7, milli(9.5), milli(8.0)],
        };
        let line = e.render_line();
        assert!(line.contains("heat=9.500"), "{line}");
        assert!(line.contains("bar=8.000"), "{line}");
    }

    #[test]
    fn chrome_export_is_valid_and_merges_with_spans() {
        let mut spans = SpanRecorder::new();
        let t = spans.now_ns();
        spans.complete("trace", "phase", t, vec![]);
        let r = FlightRecorder::new(64);
        r.record(FlightKind::Published, [0x40_0000, 0x90_0040, 0, 0]);
        let d = r.dump();
        let solo = d.to_chrome_json();
        crate::telemetry::validate_json(&solo).unwrap();
        let merged = merged_chrome_json(&spans, &d);
        crate::telemetry::validate_json(&merged).unwrap();
        assert!(merged.contains("\"name\":\"trace\""));
        assert!(merged.contains("\"name\":\"PUBLISHED\""));
        assert!(merged.contains("\"cat\":\"flight\""));
    }

    #[test]
    fn timestamps_are_globally_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        let t1 = std::thread::spawn(now_ns).join().unwrap();
        let t2 = now_ns();
        assert!(t2 >= t1 || t2 + 1_000_000 > t1); // shared epoch, no per-thread reset
    }

    #[test]
    fn kind_discriminants_roundtrip() {
        for k in FlightKind::ALL {
            assert_eq!(FlightKind::from_u8(*k as u8), Some(*k));
            assert!(k.args().len() <= 4);
        }
        assert_eq!(FlightKind::from_u8(0), None);
        assert_eq!(FlightKind::from_u8(200), None);
    }
}
