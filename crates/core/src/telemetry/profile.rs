//! Variant-attributed time profiling.
//!
//! PR 3's counting dispatch stubs answer *how many* calls each variant
//! took; this module answers *where the cycles went*. The
//! [`CounterPage`] now carries a second bank of slots — one cycle
//! accumulator per dispatch case plus fall-through — and a
//! [`DispatchProfiler`] folds each call's measured model cycles
//! (rdtsc-style entry/exit accounting: the embedder snapshots the
//! machine's cycle counter around the call) into the slot of whichever
//! case actually dispatched it.
//!
//! The attribution trick: the stub already increments exactly one count
//! slot per call, so diffing the count bank across a call reveals which
//! case took it — no extra guest instrumentation, so the stub's per-call
//! overhead stays at PR 3's ~5 model cycles. The cycle bank is written
//! host-side, under the same relaxed/advisory read-back contract as the
//! count bank.
//!
//! Attributed time flows two ways:
//!
//! - into the [`CounterPage`] cycle bank, where `tick()` folds
//!   `cycle_delta × cycle_weight` into tiering heat (time-weighted
//!   promotion, not just call-weighted);
//! - into [`MetricsRegistry`] per-(func, fingerprint) self-time
//!   histograms + exemplars ([`MetricsRegistry::observe_self_time`]),
//!   surfaced in the Prometheus and JSON exports and the `tables --exp
//!   prof` study.

use super::metrics::{MetricsRegistry, ORIGINAL_FP};
use crate::guard::CounterPage;
use brew_image::{Image, MemFault};
use std::sync::Arc;

/// Attributes per-call cycle measurements to the dispatch case that took
/// each call, by diffing the counting stub's count bank around the call.
///
/// One profiler instance per counting dispatcher; `observe` after every
/// call through the stub.
#[derive(Debug)]
pub struct DispatchProfiler {
    func: u64,
    page: CounterPage,
    /// Fingerprint per dispatch case, in stub case order. The
    /// fall-through (original) pseudo-case is implicit.
    keys: Vec<u64>,
    last_counts: Vec<u64>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl DispatchProfiler {
    /// A profiler over `func`'s counting dispatcher. `keys` are the
    /// per-case fingerprints in stub order (as returned by the manager's
    /// keyed dispatch-case listing); pass `metrics` to also feed the
    /// per-variant self-time histograms.
    pub fn new(
        func: u64,
        page: CounterPage,
        keys: Vec<u64>,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        DispatchProfiler {
            func,
            page,
            keys,
            last_counts: Vec::new(),
            metrics,
        }
    }

    /// The underlying counter page.
    pub fn page(&self) -> &CounterPage {
        &self.page
    }

    /// Prime the count snapshot to the page's current state so the next
    /// [`observe`](Self::observe) only sees calls made after this point.
    pub fn prime(&mut self, img: &Image) -> Result<(), MemFault> {
        self.last_counts = self.page.snapshot(img)?;
        Ok(())
    }

    /// Attribute one call's measured `cycles` to whichever case
    /// dispatched it, by diffing the count bank since the last
    /// observation. Returns the case index (`page.cases` means
    /// fall-through to the original), or `None` if no count moved (the
    /// call did not go through this stub).
    ///
    /// If several slots moved (concurrent callers), the cycles go to the
    /// slot with the largest delta — attribution stays advisory, like
    /// every counter-page read.
    pub fn observe(&mut self, img: &Image, cycles: u64) -> Result<Option<usize>, MemFault> {
        let (snap, deltas) = self.page.delta_since(img, &self.last_counts)?;
        self.last_counts = snap;
        let case = deltas
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .max_by_key(|(_, &d)| d)
            .map(|(i, _)| i);
        if let Some(i) = case {
            self.attribute(img, i, cycles)?;
        }
        Ok(case)
    }

    /// Directly attribute `cycles` to case `i` (`i == page.cases` is the
    /// original / fall-through), bypassing count diffing — for callers
    /// that already know which body ran (e.g. direct variant calls in
    /// the stencil study).
    pub fn attribute(&self, img: &Image, i: usize, cycles: u64) -> Result<(), MemFault> {
        self.page.add_cycles(img, i, cycles)?;
        if let Some(m) = &self.metrics {
            let fp = if i < self.keys.len() {
                self.keys[i]
            } else {
                ORIGINAL_FP
            };
            m.observe_self_time(self.func, fp, cycles);
        }
        Ok(())
    }

    /// Per-case accumulated cycles (fall-through last), straight from
    /// the page's cycle bank.
    pub fn cycle_totals(&self, img: &Image) -> Result<Vec<u64>, MemFault> {
        self.page.cycle_snapshot(img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(img: &Image, cases: usize) -> CounterPage {
        CounterPage::alloc(img, cases)
    }

    #[test]
    fn observe_attributes_to_the_moved_slot() {
        let img = Image::new();
        let p = page(&img, 2);
        let mut prof = DispatchProfiler::new(0x40_0000, p, vec![0x7, 0x9], None);
        prof.prime(&img).unwrap();
        // Simulate the stub taking case 1, then the embedder reporting
        // the call cost 500 cycles.
        img.write_u64(p.slot_addr(1), 1).unwrap();
        assert_eq!(prof.observe(&img, 500).unwrap(), Some(1));
        assert_eq!(p.case_cycles(&img, 1).unwrap(), 500);
        assert_eq!(p.case_cycles(&img, 0).unwrap(), 0);
        // Fall-through call.
        img.write_u64(p.slot_addr(2), 1).unwrap();
        assert_eq!(prof.observe(&img, 900).unwrap(), Some(2));
        assert_eq!(p.case_cycles(&img, 2).unwrap(), 900);
        // No movement → no attribution.
        assert_eq!(prof.observe(&img, 123).unwrap(), None);
        assert_eq!(prof.cycle_totals(&img).unwrap(), vec![0, 500, 900]);
    }

    #[test]
    fn observe_feeds_self_time_metrics() {
        let img = Image::new();
        let p = page(&img, 1);
        let m = Arc::new(MetricsRegistry::new());
        let mut prof = DispatchProfiler::new(0x40_0000, p, vec![0x7], Some(Arc::clone(&m)));
        prof.prime(&img).unwrap();
        img.write_u64(p.slot_addr(0), 1).unwrap();
        prof.observe(&img, 640).unwrap();
        img.write_u64(p.slot_addr(1), 1).unwrap(); // fall-through
        prof.observe(&img, 8_000).unwrap();
        let st = m.self_times();
        assert_eq!(st.len(), 2);
        let spec = st.iter().find(|s| s.fingerprint == 0x7).unwrap();
        assert_eq!(spec.count, 1);
        assert_eq!(spec.sum_cycles, 640);
        let orig = st.iter().find(|s| s.fingerprint == ORIGINAL_FP).unwrap();
        assert_eq!(orig.sum_cycles, 8_000);
        assert_eq!(orig.exemplar_cycles, 8_000);
    }

    #[test]
    fn concurrent_style_multi_delta_picks_largest() {
        let img = Image::new();
        let p = page(&img, 2);
        let mut prof = DispatchProfiler::new(0x40_0000, p, vec![1, 2], None);
        prof.prime(&img).unwrap();
        // Two slots moved since last observe (racing callers): the
        // larger delta wins the attribution.
        img.write_u64(p.slot_addr(0), 1).unwrap();
        img.write_u64(p.slot_addr(1), 3).unwrap();
        assert_eq!(prof.observe(&img, 100).unwrap(), Some(1));
        assert_eq!(p.case_cycles(&img, 1).unwrap(), 100);
    }
}
