//! Observability for the rewriting pipeline.
//!
//! The paper's evaluation (§V) is an exercise in measurement: where does
//! rewrite time go, how much code is generated, do guarded variants
//! actually get hit? This module is that measurement layer, built from
//! three dependency-free pieces:
//!
//! - [`metrics`] — a lock-free [`MetricsRegistry`]
//!   of atomic counters, gauges and fixed-bucket histograms. The
//!   [`SpecializationManager`](crate::manager::SpecializationManager)
//!   feeds it on *every* event, independent of whether an
//!   [`EventSink`](crate::manager::EventSink) is installed, so cache and
//!   rewrite-phase metrics are never silently lost. Exported as
//!   Prometheus text exposition and as a JSON snapshot.
//! - [`span`] — a [`SpanRecorder`] capturing the
//!   rewrite as a span tree (trace → per-block → migration / inlining
//!   decisions → passes → layout / encode / commit), renderable as
//!   chrome://tracing JSON.
//! - [`explain`] — a human-readable report over a recorded rewrite:
//!   phase timings, the decision log, and an annotated disassembly of
//!   the generated code (the paper's Figure 6, reproduced automatically).
//!
//! PR 8 adds the time dimension on top:
//!
//! - [`flight`] — a lock-free, allocation-free [`FlightRecorder`] ring
//!   journal of every manager decision (tiering verdicts with the heat
//!   and threshold that justified them, epoch publish/reclaim, persist
//!   save/load, panics), dumpable on demand or on panic and exportable
//!   merged with the span tree on one chrome://tracing timeline.
//! - [`profile`] — [`DispatchProfiler`] attributes measured model
//!   cycles to the dispatch case that took each call (via the counter
//!   page's new cycle bank), feeding per-variant self-time histograms.
//! - [`symbolize`] — a [`SymbolTable`] of live JIT placements rendered
//!   as `/tmp/perf-<pid>.map` and jitdump records so external profilers
//!   can symbolize variant PCs.
//!
//! [`json`] is a tiny strict JSON syntax checker; every export above is
//! routed through it and fails loudly on malformed output.

pub mod explain;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod symbolize;

pub use explain::explain_report;
pub use flight::{merged_chrome_json, ArgFmt, FlightDump, FlightEntry, FlightKind, FlightRecorder};
pub use json::validate_json;
pub use metrics::{
    Counter, Gauge, Histogram, MetricsRegistry, SelfTimeSnapshot, CYCLE_BUCKET_BOUNDS, ORIGINAL_FP,
};
pub use profile::DispatchProfiler;
pub use span::{SpanEvent, SpanKind, SpanRecorder};
pub use symbolize::{JitSymbol, SymbolKind, SymbolTable};

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
