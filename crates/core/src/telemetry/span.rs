//! Structured rewrite traces: a span tree over the pipeline.
//!
//! A [`SpanRecorder`] is threaded through one rewrite and collects
//! [`SpanEvent`]s — durationful spans for the phases (trace, each
//! optimization pass, layout, encode, commit) and per-block traces, and
//! instant events for the decisions the paper discusses: world forks at
//! unknown branches, migrations (§III.F), inlining vs kept calls
//! (§III.G), compensation blocks. [`SpanRecorder::to_chrome_json`]
//! renders the whole thing in the chrome://tracing / Perfetto event
//! format; [`super::explain_report`] renders it for humans.

use super::json_escape;
use std::time::Instant;

/// Kind of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A span with a duration (chrome `ph:"X"`).
    Complete,
    /// A point-in-time decision or observation (chrome `ph:"i"`).
    Instant,
}

/// One recorded event of a rewrite trace.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Event name (e.g. `trace`, `block@0x400000`, `migration`).
    pub name: String,
    /// Category: `phase`, `pass`, `block`, `decision`, `emit`.
    pub cat: &'static str,
    /// Kind (complete span or instant event).
    pub kind: SpanKind,
    /// Start time in nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Free-form key/value annotations.
    pub args: Vec<(String, String)>,
}

/// Collects the events of one rewrite. Create it, pass it to
/// [`crate::Rewriter::rewrite_with_trace`], then export or render.
#[derive(Debug)]
pub struct SpanRecorder {
    t0: Instant,
    /// Flight-recorder clock reading at creation, so span-relative
    /// timestamps can be shifted onto the shared flight timeline.
    t0_flight_ns: u64,
    events: Vec<SpanEvent>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanRecorder {
    /// A fresh recorder; its clock starts now.
    pub fn new() -> Self {
        SpanRecorder {
            t0: Instant::now(),
            t0_flight_ns: super::flight::now_ns(),
            events: Vec::new(),
        }
    }

    /// The flight-recorder clock reading ([`super::flight::now_ns`]) at
    /// the moment this recorder was created. Adding it to any event's
    /// `start_ns` maps the span onto the flight timeline — how
    /// [`super::flight::merged_chrome_json`] lands both on one track.
    pub fn flight_epoch_ns(&self) -> u64 {
        self.t0_flight_ns
    }

    /// Nanoseconds since the recorder was created — capture this before
    /// starting work, then pass it to [`SpanRecorder::complete`].
    pub fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Record a span that started at `start_ns` and ends now.
    pub fn complete(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        start_ns: u64,
        args: Vec<(String, String)>,
    ) {
        let end = self.now_ns();
        self.events.push(SpanEvent {
            name: name.into(),
            cat,
            kind: SpanKind::Complete,
            start_ns,
            dur_ns: end.saturating_sub(start_ns),
            args,
        });
    }

    /// Record an instant (zero-duration) event at the current time.
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        args: Vec<(String, String)>,
    ) {
        let now = self.now_ns();
        self.events.push(SpanEvent {
            name: name.into(),
            cat,
            kind: SpanKind::Instant,
            start_ns: now,
            dur_ns: 0,
            args,
        });
    }

    /// Every recorded event, in recording order (spans are recorded at
    /// their *end*, so parents follow their children — sort by `start_ns`
    /// to walk the tree top-down).
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Events of one category, in start order.
    pub fn events_in(&self, cat: &str) -> Vec<&SpanEvent> {
        let mut v: Vec<&SpanEvent> = self.events.iter().filter(|e| e.cat == cat).collect();
        v.sort_by_key(|e| e.start_ns);
        v
    }

    /// Total duration of the named complete span (0 if absent).
    pub fn span_ns(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == SpanKind::Complete && e.name == name)
            .map(|e| e.dur_ns)
            .sum()
    }

    /// Render as chrome://tracing JSON (`{"traceEvents":[...]}`): load
    /// the output in `chrome://tracing` or Perfetto to see the span tree.
    /// Timestamps are microseconds with nanosecond fractions. The output
    /// is gated through the same strict RFC-8259 validation as every
    /// other telemetry export and panics (construction bug) if invalid.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut sorted: Vec<&SpanEvent> = self.events.iter().collect();
        sorted.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));
        for (i, e) in sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts = e.start_ns as f64 / 1_000.0;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":1,\"ts\":{ts:.3}",
                json_escape(&e.name),
                e.cat
            ));
            match e.kind {
                SpanKind::Complete => {
                    out.push_str(&format!(
                        ",\"ph\":\"X\",\"dur\":{:.3}",
                        e.dur_ns as f64 / 1_000.0
                    ));
                }
                SpanKind::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
            }
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        super::json::checked_export("span chrome export", out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let mut r = SpanRecorder::new();
        let t = r.now_ns();
        r.instant(
            "migration",
            "decision",
            vec![("addr".into(), "0x40".into())],
        );
        r.complete("trace", "phase", t, vec![("blocks".into(), "3".into())]);
        assert_eq!(r.events().len(), 2);
        assert!(r.span_ns("trace") <= r.now_ns());
        assert_eq!(r.events_in("decision").len(), 1);
        let j = r.to_chrome_json();
        crate::telemetry::validate_json(&j).unwrap();
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("\"name\":\"migration\""));
    }

    #[test]
    fn empty_recorder_is_valid_json() {
        let r = SpanRecorder::new();
        crate::telemetry::validate_json(&r.to_chrome_json()).unwrap();
    }
}
