//! The "explain" report: one rewrite, rendered for humans.
//!
//! Takes the [`RewriteResult`] and the [`SpanRecorder`] of a traced
//! rewrite and produces a plain-text report: where the time went (per
//! phase and per pass), which decisions the tracer took (migrations,
//! inlining, compensation), and an annotated disassembly of the
//! generated code — the paper's Figure 6, reproduced automatically with
//! the structural observations (baked data references, loop structure,
//! branch targets) attached per line.

use super::span::SpanRecorder;
use crate::RewriteResult;
use brew_image::{layout, Image};
use brew_x86::prelude::*;

/// Cap on decision-log lines in the report; the full stream is always
/// available in the chrome://tracing export.
const MAX_DECISIONS: usize = 32;

/// Render the explain report for a rewrite of `func` (its original entry
/// address, used for symbol lookup) recorded in `rec`.
pub fn explain_report(img: &Image, func: u64, res: &RewriteResult, rec: &SpanRecorder) -> String {
    let name = img.symbol_at(func).unwrap_or_else(|| format!("{func:#x}"));
    let mut out = format!(
        "## explain: rewrite of `{name}` ({func:#x}) -> {entry:#x}, {len} bytes\n\n",
        entry = res.entry,
        len = res.code_len
    );
    out.push_str(&format!("{}\n\n", res.stats));

    // --- phase timings ---------------------------------------------------
    out.push_str("### phases\n\n");
    for phase in ["trace", "passes", "emit"] {
        let ns = rec.span_ns(phase);
        out.push_str(&format!("{phase:<10} {:>8} us\n", ns / 1_000));
        let sub_cat = if phase == "passes" {
            "pass"
        } else {
            "emit-step"
        };
        if phase != "trace" {
            for e in rec.events_in(sub_cat) {
                let detail = e
                    .args
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "  - {:<24} {:>8} us  {detail}\n",
                    e.name,
                    e.dur_ns / 1_000
                ));
            }
        }
    }
    out.push('\n');

    // --- block spans ------------------------------------------------------
    let blocks = rec.events_in("block");
    if !blocks.is_empty() {
        let total_insts: u64 = blocks
            .iter()
            .filter_map(|e| arg(e, "insts")?.parse::<u64>().ok())
            .sum();
        out.push_str(&format!(
            "### blocks: {} traced, {total_insts} instructions captured\n\n",
            blocks.len()
        ));
        let mut biggest: Vec<_> = blocks.clone();
        biggest.sort_by_key(|e| {
            std::cmp::Reverse(
                arg(e, "insts")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0),
            )
        });
        for e in biggest.iter().take(5) {
            out.push_str(&format!(
                "  {:<22} {:>6} insts  {:>6} guest insts traced\n",
                e.name,
                arg(e, "insts").unwrap_or("?"),
                arg(e, "traced").unwrap_or("?"),
            ));
        }
        out.push('\n');
    }

    // --- decision log -----------------------------------------------------
    let decisions = rec.events_in("decision");
    if !decisions.is_empty() {
        out.push_str(&format!("### decisions ({})\n\n", decisions.len()));
        for e in decisions.iter().take(MAX_DECISIONS) {
            let detail = e
                .args
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("  {:<14} {detail}\n", e.name));
        }
        if decisions.len() > MAX_DECISIONS {
            out.push_str(&format!(
                "  ... and {} more (see the chrome trace)\n",
                decisions.len() - MAX_DECISIONS
            ));
        }
        out.push('\n');
    }

    // --- annotated disassembly (Figure 6) ---------------------------------
    out.push_str("### generated code (annotated, cf. paper Figure 6)\n\n");
    for line in annotated_disasm(img, res) {
        out.push_str("    ");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

fn arg<'a>(e: &'a super::span::SpanEvent, key: &str) -> Option<&'a str> {
    e.args
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Disassemble the rewritten code with per-line structural annotations:
/// branch direction and target (in-function offset, backedge, or exit),
/// and absolute data-segment references (the baked-in constants the
/// paper's Figure 6 points out).
pub fn annotated_disasm(img: &Image, res: &RewriteResult) -> Vec<String> {
    let window = img.code_window(res.entry, res.code_len).unwrap_or_default();
    let n = res.code_len.min(window.len());
    let (insts, _) = decode_all(&window[..n], res.entry);
    let lo = res.entry;
    let hi = res.entry + res.code_len as u64;
    insts
        .iter()
        .map(|(addr, inst)| {
            let base = format!("{addr:#08x}: {inst}");
            let note = annotate(img, *addr, inst, lo, hi);
            if note.is_empty() {
                base
            } else {
                format!("{base:<44} ; {note}")
            }
        })
        .collect()
}

fn annotate(img: &Image, addr: u64, inst: &Inst, lo: u64, hi: u64) -> String {
    let branch_note = |target: u64, what: &str| -> String {
        if target >= lo && target < hi {
            if target <= addr {
                format!("{what} backedge -> +{:#x} (loop)", target - lo)
            } else {
                format!("{what} -> +{:#x}", target - lo)
            }
        } else {
            let sym = img
                .symbol_at(target)
                .map(|s| format!(" `{s}`"))
                .unwrap_or_default();
            format!("{what} exits to {target:#x}{sym}")
        }
    };
    match inst {
        Inst::Jcc { target, .. } => branch_note(*target, "branch"),
        Inst::JmpRel { target } => branch_note(*target, "jump"),
        Inst::CallRel { target } => {
            let sym = img
                .symbol_at(*target)
                .map(|s| format!(" `{s}`"))
                .unwrap_or_default();
            format!("call kept{sym}")
        }
        _ => {
            // Absolute data references: the specialized constants / literal
            // pool the paper highlights ("coefficients at fixed addresses").
            let text = inst.to_string();
            if let Some(pos) = text.find("[0x") {
                let hexa: String = text[pos + 3..]
                    .chars()
                    .take_while(|c| c.is_ascii_hexdigit())
                    .collect();
                if let Ok(a) = u64::from_str_radix(&hexa, 16) {
                    if (layout::DATA_BASE..layout::JIT_BASE).contains(&a) {
                        return "baked data ref (known value / literal pool)".into();
                    }
                }
            }
            String::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::RewriteStats;

    #[test]
    fn annotations_on_synthetic_code() {
        let img = Image::new();
        // mov rax, [0x600040]; jmp self (backedge shape)
        let base = img.try_alloc_jit(64).unwrap();
        let mut bytes = Vec::new();
        encode(
            &Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Mem(MemRef::abs(0x60_0040)),
            },
            base,
            &mut bytes,
        )
        .unwrap();
        let jmp_at = base + bytes.len() as u64;
        encode(&Inst::JmpRel { target: base }, jmp_at, &mut bytes).unwrap();
        img.write_bytes(base, &bytes).unwrap();
        let res = RewriteResult {
            entry: base,
            code_len: bytes.len(),
            stats: RewriteStats::default(),
            snapshot: crate::snapshot::KnownSnapshot::default(),
        };
        let lines = annotated_disasm(&img, &res);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("baked data ref"), "{}", lines[0]);
        assert!(lines[1].contains("backedge"), "{}", lines[1]);
    }

    #[test]
    fn report_sections_present() {
        let img = Image::new();
        let base = img.try_alloc_jit(16).unwrap();
        let mut bytes = Vec::new();
        encode(&Inst::Ret, base, &mut bytes).unwrap();
        img.write_bytes(base, &bytes).unwrap();
        let res = RewriteResult {
            entry: base,
            code_len: bytes.len(),
            stats: RewriteStats::default(),
            snapshot: crate::snapshot::KnownSnapshot::default(),
        };
        let mut rec = SpanRecorder::new();
        let t = rec.now_ns();
        rec.instant("migration", "decision", vec![("addr".into(), "0x1".into())]);
        rec.complete("trace", "phase", t, vec![]);
        let report = explain_report(&img, 0x40_0000, &res, &rec);
        assert!(report.contains("### phases"));
        assert!(report.contains("### decisions"));
        assert!(report.contains("### generated code"));
        assert!(report.contains("migration"));
    }
}
