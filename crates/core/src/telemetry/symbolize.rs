//! Symbolization of JIT'd variants for external profilers.
//!
//! A rewritten variant lives at an address `perf`, VTune, or a debugger
//! has never heard of — samples landing inside it show up as bare hex.
//! This module keeps a [`SymbolTable`] of every *currently published*
//! JIT placement (variants and dispatch stubs) and renders it in the two
//! formats external profilers already understand:
//!
//! - **perf map** ([`SymbolTable::render_perf_map`]): the
//!   `/tmp/perf-<pid>.map` text format (`STARTADDR SIZE name` per line,
//!   hex without `0x`) that `perf report` picks up automatically for
//!   JIT'd code;
//! - **jitdump** ([`SymbolTable::render_jitdump`]): a minimal
//!   `JIT_CODE_LOAD`-only jitdump byte stream (the `perf inject`
//!   format), including the variant code bytes read back from the
//!   [`Image`].
//!
//! Symbol names are `brew::<func>@<fingerprint>#<generation>`: the
//! function address and argument fingerprint identify *which* variant,
//! and the generation counts how many times that (func, fingerprint)
//! pair has been (re)published — so a respecialized variant is
//! distinguishable from its ancestor in a profile even if the JIT
//! allocator hands back a recycled address range.
//!
//! The manager owns one table and keeps it consistent with the variant
//! cache across publish, unpublish (evict / demote / invalidate /
//! clear), and warm start: every resident variant has exactly one live
//! symbol, checked by the `prof` study's perf-map/variant-count gate.

use brew_image::Image;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What a JIT symbol covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    /// A specialized variant body.
    Variant,
    /// A guarded dispatch stub.
    Stub,
}

/// One live JIT symbol: an address range with a stable profiler-facing
/// name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JitSymbol {
    /// First byte of the placement.
    pub entry: u64,
    /// Length in bytes.
    pub len: u64,
    /// Profiler-facing name, `brew::<func>@<fingerprint>#<generation>`.
    pub name: String,
    /// Original function address the symbol specializes or dispatches.
    pub func: u64,
    /// Argument fingerprint (0 for stubs).
    pub fingerprint: u64,
    /// Publication generation of this (func, fingerprint) pair.
    pub generation: u64,
    /// Variant body or dispatch stub.
    pub kind: SymbolKind,
}

/// The live-symbol table. All mutation goes through short critical
/// sections on one mutex — symbol churn happens on the (already
/// serialized) publish/unpublish paths, never on the dispatch hot path.
#[derive(Debug, Default)]
pub struct SymbolTable {
    by_entry: Mutex<HashMap<u64, JitSymbol>>,
    /// Monotone publication counter per (func, fingerprint).
    generations: Mutex<HashMap<(u64, u64), u64>>,
    published: AtomicU64,
    retired: AtomicU64,
}

fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(|e| e.into_inner())
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a published variant placement and return its symbol.
    /// Re-publishing the same (func, fingerprint) bumps the generation;
    /// re-registering a live entry address replaces the old symbol.
    pub fn publish_variant(&self, func: u64, fingerprint: u64, entry: u64, len: u64) -> JitSymbol {
        self.publish(func, fingerprint, entry, len, SymbolKind::Variant)
    }

    /// Register a dispatch stub placement (fingerprint 0, named
    /// `brew::<func>::dispatch#<generation>`).
    pub fn publish_stub(&self, func: u64, entry: u64, len: u64) -> JitSymbol {
        self.publish(func, 0, entry, len, SymbolKind::Stub)
    }

    fn publish(
        &self,
        func: u64,
        fingerprint: u64,
        entry: u64,
        len: u64,
        kind: SymbolKind,
    ) -> JitSymbol {
        let generation = {
            let mut gens = unpoison(self.generations.lock());
            let g = gens.entry((func, fingerprint)).or_insert(0);
            *g += 1;
            *g
        };
        let name = match kind {
            SymbolKind::Variant => format!("brew::{func:#x}@{fingerprint:#x}#{generation}"),
            SymbolKind::Stub => format!("brew::{func:#x}::dispatch#{generation}"),
        };
        let sym = JitSymbol {
            entry,
            len,
            name,
            func,
            fingerprint,
            generation,
            kind,
        };
        unpoison(self.by_entry.lock()).insert(entry, sym.clone());
        self.published.fetch_add(1, Ordering::Relaxed);
        sym
    }

    /// Retire the symbol at `entry` (unpublish). Returns it if one was
    /// live. Idempotent: retiring an unknown address is a no-op.
    pub fn retire(&self, entry: u64) -> Option<JitSymbol> {
        let out = unpoison(self.by_entry.lock()).remove(&entry);
        if out.is_some() {
            self.retired.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Retire every symbol of `kind`, returning how many were live.
    /// `clear()`-style bulk unpublish uses this for variants while
    /// leaving stub symbols (whose placements survive) alone.
    pub fn retire_kind(&self, kind: SymbolKind) -> usize {
        let mut map = unpoison(self.by_entry.lock());
        let before = map.len();
        map.retain(|_, s| s.kind != kind);
        let n = before - map.len();
        self.retired.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Number of live symbols of `kind`.
    pub fn live_count(&self, kind: SymbolKind) -> usize {
        unpoison(self.by_entry.lock())
            .values()
            .filter(|s| s.kind == kind)
            .count()
    }

    /// Total symbols ever published / retired (for accounting checks).
    pub fn totals(&self) -> (u64, u64) {
        (
            self.published.load(Ordering::Relaxed),
            self.retired.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of live symbols, sorted by entry address.
    pub fn live(&self) -> Vec<JitSymbol> {
        let mut v: Vec<JitSymbol> = unpoison(self.by_entry.lock()).values().cloned().collect();
        v.sort_by_key(|s| s.entry);
        v
    }

    /// The symbol covering address `pc`, if any.
    pub fn resolve(&self, pc: u64) -> Option<JitSymbol> {
        unpoison(self.by_entry.lock())
            .values()
            .find(|s| pc >= s.entry && pc < s.entry + s.len)
            .cloned()
    }

    /// Render the live table in `/tmp/perf-<pid>.map` format: one
    /// `STARTADDR SIZE name` line per symbol (hex, no `0x`), sorted by
    /// address.
    pub fn render_perf_map(&self) -> String {
        let mut out = String::new();
        for s in self.live() {
            out.push_str(&format!("{:x} {:x} {}\n", s.entry, s.len, s.name));
        }
        out
    }

    /// The conventional path `perf` looks for: `/tmp/perf-<pid>.map`.
    pub fn perf_map_path() -> std::path::PathBuf {
        std::path::PathBuf::from(format!("/tmp/perf-{}.map", std::process::id()))
    }

    /// Render the live table as a minimal jitdump byte stream: file
    /// header + one `JIT_CODE_LOAD` record per symbol, code bytes read
    /// back from `img`. Follows the perf jitdump layout (magic
    /// `0x4A695444`, version 1, 40-byte header; per-record fixed header
    /// + name + code).
    pub fn render_jitdump(&self, img: &Image) -> Vec<u8> {
        let mut out = Vec::new();
        // File header: magic, version, total_size, elf_mach (EM_X86_64 =
        // 62), pad, pid, timestamp, flags.
        out.extend_from_slice(&0x4A69_5444u32.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&40u32.to_le_bytes());
        out.extend_from_slice(&62u32.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&std::process::id().to_le_bytes());
        out.extend_from_slice(&super::flight::now_ns().to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
        for (index, s) in self.live().iter().enumerate() {
            let mut code = vec![0u8; s.len as usize];
            if img.read_bytes(s.entry, &mut code).is_err() {
                continue; // placement no longer mapped; skip record
            }
            let name = s.name.as_bytes();
            // Record: id=0 (JIT_CODE_LOAD), total_size, timestamp, then
            // pid, tid, vma, code_addr, code_size, code_index, name\0,
            // code bytes.
            let total = 16 + 4 * 2 + 8 * 4 + name.len() + 1 + code.len();
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&(total as u32).to_le_bytes());
            out.extend_from_slice(&super::flight::now_ns().to_le_bytes());
            out.extend_from_slice(&std::process::id().to_le_bytes());
            out.extend_from_slice(&std::process::id().to_le_bytes());
            out.extend_from_slice(&s.entry.to_le_bytes());
            out.extend_from_slice(&s.entry.to_le_bytes());
            out.extend_from_slice(&s.len.to_le_bytes());
            out.extend_from_slice(&(index as u64).to_le_bytes());
            out.extend_from_slice(name);
            out.push(0);
            out.extend_from_slice(&code);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_retire_and_generations() {
        let t = SymbolTable::new();
        let a = t.publish_variant(0x40_0000, 0x7, 0x90_0040, 64);
        assert_eq!(a.generation, 1);
        assert_eq!(a.name, "brew::0x400000@0x7#1");
        // Republishing the same pair at a new address bumps generation.
        let b = t.publish_variant(0x40_0000, 0x7, 0x90_0100, 64);
        assert_eq!(b.generation, 2);
        assert_eq!(t.live_count(SymbolKind::Variant), 2);
        assert!(t.retire(0x90_0040).is_some());
        assert!(t.retire(0x90_0040).is_none()); // idempotent
        assert_eq!(t.live_count(SymbolKind::Variant), 1);
        assert_eq!(t.totals(), (2, 1));
    }

    #[test]
    fn perf_map_format() {
        let t = SymbolTable::new();
        t.publish_variant(0x40_0000, 0x2a, 0x90_0040, 128);
        t.publish_stub(0x40_0000, 0x90_0200, 32);
        let map = t.render_perf_map();
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "900040 80 brew::0x400000@0x2a#1");
        assert_eq!(lines[1], "900200 20 brew::0x400000::dispatch#1");
    }

    #[test]
    fn resolve_covers_range() {
        let t = SymbolTable::new();
        t.publish_variant(0x40_0000, 1, 0x90_0040, 64);
        assert!(t.resolve(0x90_003f).is_none());
        assert_eq!(t.resolve(0x90_0040).unwrap().fingerprint, 1);
        assert_eq!(t.resolve(0x90_007f).unwrap().fingerprint, 1);
        assert!(t.resolve(0x90_0080).is_none());
    }

    #[test]
    fn retire_kind_is_selective() {
        let t = SymbolTable::new();
        t.publish_variant(0x40_0000, 1, 0x90_0040, 64);
        t.publish_variant(0x40_0000, 2, 0x90_0080, 64);
        t.publish_stub(0x40_0000, 0x90_0200, 32);
        assert_eq!(t.retire_kind(SymbolKind::Variant), 2);
        assert_eq!(t.live_count(SymbolKind::Variant), 0);
        assert_eq!(t.live_count(SymbolKind::Stub), 1);
    }

    #[test]
    fn jitdump_header_and_records() {
        let img = Image::new();
        let entry = img.try_alloc_jit(16).unwrap();
        img.write_bytes(entry, &[0x90u8; 16]).unwrap();
        let t = SymbolTable::new();
        t.publish_variant(0x40_0000, 0x7, entry, 16);
        let bytes = t.render_jitdump(&img);
        assert_eq!(&bytes[0..4], &0x4A69_5444u32.to_le_bytes());
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 1);
        // One JIT_CODE_LOAD record follows the 40-byte header.
        assert_eq!(u32::from_le_bytes(bytes[40..44].try_into().unwrap()), 0);
        let total = u32::from_le_bytes(bytes[44..48].try_into().unwrap()) as usize;
        assert_eq!(bytes.len(), 40 + total);
        // The record ends with the 16 NOP code bytes.
        assert_eq!(&bytes[bytes.len() - 16..], &[0x90u8; 16]);
    }
}
