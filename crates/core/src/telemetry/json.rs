//! A strict, dependency-free JSON *syntax* checker.
//!
//! The exporters in this crate build JSON by string concatenation (no
//! serde by design — the build is fully offline). A formatting bug there
//! would silently corrupt downstream tooling, so tests, the telemetry
//! example and the CI `obs` stage all run exporter output through
//! [`validate_json`] and fail loudly on malformed text.

/// Gate a telemetry export through [`validate_json`] before handing it
/// out: returns `out` unchanged if it is well-formed, panics with a
/// clear diagnosis otherwise. Every inline export (metrics snapshot,
/// chrome://tracing span export, flight-recorder exports, merged
/// timeline) routes through this, so a concatenation bug fails at the
/// producer — loudly, with the byte offset — instead of corrupting
/// downstream tooling. Inputs are escaped internally, so a failure here
/// is always a construction bug, never bad user data.
pub(crate) fn checked_export(what: &str, out: String) -> String {
    if let Err(e) = validate_json(&out) {
        panic!("{what} produced invalid JSON: {e}");
    }
    out
}

/// Check that `s` is exactly one well-formed JSON value (RFC 8259
/// grammar; no trailing garbage). Returns the byte offset and a message
/// on the first error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0, depth: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.depth += 1;
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.depth += 1;
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("bad number")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("bad fraction"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("bad exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid() {
        for s in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "\"a\\n\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            validate_json(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01",
            "1.",
            "\"\\x\"",
            "\"unterminated",
            "{} garbage",
            "{\"a\":1,}",
            "[1 2]",
            "nul",
        ] {
            assert!(validate_json(s).is_err(), "accepted invalid: {s}");
        }
    }

    #[test]
    fn depth_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate_json(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(validate_json(&ok).is_ok());
    }
}
