//! Variant persistence — the compact versioned on-disk format behind
//! [`SpecializationManager::save_variants`] /
//! [`SpecializationManager::load_variants`].
//!
//! Restarting the process normally throws the whole variant cache away
//! and re-traces the working set from scratch. This module serializes
//! verified variants — emitted code bytes, the producing
//! [`SpecRequest`], the [`KnownSnapshot`] of folded memory, and the
//! rewrite statistics — so the next process can warm-start. The format
//! is deliberately dumb: little-endian fixed-width fields, length-framed
//! entries, an FNV-1a checksum per entry, no compression, no pointers.
//!
//! ## Layout (version 1)
//!
//! ```text
//! file   := magic[8]="BREWVARS" version:u32 count:u32 entry*
//! entry  := payload_len:u32 payload checksum:u64        (FNV-1a of payload)
//! payload:= func:u64 fingerprint:u64 entry:u64
//!           code_len:u32 code[code_len]
//!           snap_n:u32 (start:u64 end:u64)* snap_hash:u64
//!           stats:u64[14]
//!           spec_n:u32 spec*         (tag:u8, tag 2 + len:u64)
//!           arg_n:u32 arg*           (tag:u8 + 8 value bytes)
//!           ret:u8
//!           mem_n:u32 (start:u64 end:u64)*
//!           fopt_n:u32 (addr:u64 opts)*                 (sorted by addr)
//!           default_opts
//!           max_trace_insts:u64 max_blocks:u64 max_code_bytes:u64
//!           (flag:u8 addr:u64){3}    (mem_access, entry, exit hooks)
//!           passes:u8                (6-bit mask)
//! opts   := inline:u8 fresh:u8 branch:u8 max_variants:u32
//! ```
//!
//! Dispatch guards are *not* persisted: they are recomputed from the
//! decoded request via [`SpecRequest::guard_conditions`], which is
//! deterministic — persisting them would only add a second copy that
//! could drift from the request.
//!
//! ## Trust boundary
//!
//! Nothing in this file is trusted at load time. Decoding validates
//! magic, version, framing and the per-entry checksum;
//! [`SpecializationManager::load_variants`] then re-validates each entry
//! against the *live* process — fingerprint recomputed from the decoded
//! request, JIT placement re-derived, snapshot re-hashed against the
//! image — and finally re-runs the configured publish gate over the
//! re-materialized code, exactly as if the variant had just been
//! rewritten. A variant that fails any step is rejected (counted in
//! `brew_persist_rejected_total`), negatively cached, and the entry
//! cold-starts; it is never published. See DESIGN.md §11.
//!
//! File-level corruption (bad magic, wrong version, truncation) aborts
//! the whole load; entry-level corruption (a failed checksum inside
//! intact framing) rejects only that entry, so one flipped bit does not
//! cost the rest of the warm start.

use crate::capture::RewriteStats;
use crate::config::{ArgValue, FuncOpts, ParamSpec, RetKind, RewriteConfig};
use crate::error::RewriteError;
use crate::passes::PassConfig;
use crate::request::SpecRequest;
use crate::snapshot::KnownSnapshot;
use std::fmt;
use std::ops::Range;

#[cfg(doc)]
use crate::manager::SpecializationManager;

/// File magic: the first eight bytes of every variant file.
pub const MAGIC: [u8; 8] = *b"BREWVARS";

/// Current format version; bumped on any layout change. Loads of other
/// versions fail with [`PersistError::BadVersion`] — there is no
/// cross-version migration, a cold start is always correct.
pub const FORMAT_VERSION: u32 = 1;

/// Why a persisted-variant file (or one entry of it) was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// Reading or writing the file failed.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    BadVersion {
        /// The version the file claims.
        found: u32,
    },
    /// The file ended mid-field (or an entry's framing overran the file).
    Truncated,
    /// An entry's payload does not hash to its recorded checksum.
    Checksum {
        /// Zero-based index of the corrupt entry.
        index: usize,
    },
    /// A checksum-valid payload contained an impossible encoding (bad
    /// tag, arity drift) — version-1 writers never produce this.
    BadEncoding {
        /// What the decoder tripped over.
        what: String,
    },
    /// The stored fingerprint does not match the one recomputed from the
    /// decoded request — the key and the request drifted apart.
    Fingerprint {
        /// The fingerprint stored in the file.
        stored: u64,
        /// The fingerprint the decoded request actually hashes to.
        computed: u64,
    },
    /// The entry's recorded JIT region cannot be re-reserved in this
    /// process (the cursor is already past it, or allocation failed).
    Placement {
        /// The entry address the variant was emitted at.
        entry: u64,
    },
    /// The variant's [`KnownSnapshot`] no longer matches the live image:
    /// the known memory it folded has changed since it was saved.
    StaleSnapshot,
    /// The configured publish gate rejected the re-materialized variant.
    Gate {
        /// The gate's rendered rejection.
        summary: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "variant file I/O failed: {e}"),
            PersistError::BadMagic => write!(f, "not a variant file (bad magic)"),
            PersistError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported variant-file version {found} (expected {FORMAT_VERSION})"
                )
            }
            PersistError::Truncated => write!(f, "variant file truncated"),
            PersistError::Checksum { index } => {
                write!(f, "entry {index} failed its checksum")
            }
            PersistError::BadEncoding { what } => {
                write!(f, "entry payload undecodable: {what}")
            }
            PersistError::Fingerprint { stored, computed } => {
                write!(
                    f,
                    "stored fingerprint {stored:#x} != recomputed {computed:#x}"
                )
            }
            PersistError::Placement { entry } => {
                write!(f, "cannot re-reserve JIT region at {entry:#x}")
            }
            PersistError::StaleSnapshot => {
                write!(f, "folded known memory changed since the variant was saved")
            }
            PersistError::Gate { summary } => {
                write!(f, "publish gate rejected loaded variant: {summary}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl PersistError {
    /// The [`RewriteError`] this rejection is negatively cached as:
    /// gate rejections keep their verification identity, everything else
    /// becomes [`RewriteError::PersistRejected`].
    pub fn as_rewrite_error(&self) -> RewriteError {
        match self {
            PersistError::Gate { summary } => RewriteError::VerifyRejected {
                findings: 1,
                first: summary.clone(),
            },
            other => RewriteError::PersistRejected {
                what: other.to_string(),
            },
        }
    }
}

/// One decoded entry of a variant file — everything needed to
/// re-materialize and re-validate the variant in a fresh process.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedVariant {
    /// Entry address of the original function.
    pub func: u64,
    /// The request fingerprint recorded at save time (re-checked against
    /// the decoded request on load).
    pub fingerprint: u64,
    /// JIT entry address the code was emitted at (addresses are absolute,
    /// so the code must land at exactly this address again).
    pub entry: u64,
    /// The emitted code bytes.
    pub code: Vec<u8>,
    /// Folded known-memory read-set recorded at save time.
    pub snapshot: KnownSnapshot,
    /// Statistics of the producing rewrite.
    pub stats: RewriteStats,
    /// The producing request, fully decoded.
    pub req: SpecRequest,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn opts(&mut self, o: &FuncOpts) {
        self.u8(o.inline as u8);
        self.u8(o.fresh_unknown as u8);
        self.u8(o.branch_unknown as u8);
        self.u32(o.max_variants);
    }
    fn ranges(&mut self, rs: &[Range<u64>]) {
        self.u32(rs.len() as u32);
        for r in rs {
            self.u64(r.start);
            self.u64(r.end);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(PersistError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn opts(&mut self) -> Result<FuncOpts, PersistError> {
        Ok(FuncOpts {
            inline: self.u8()? != 0,
            fresh_unknown: self.u8()? != 0,
            branch_unknown: self.u8()? != 0,
            max_variants: self.u32()?,
        })
    }
    fn ranges(&mut self) -> Result<Vec<Range<u64>>, PersistError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let start = self.u64()?;
            let end = self.u64()?;
            out.push(start..end);
        }
        Ok(out)
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn encode_req(w: &mut Writer, req: &SpecRequest) {
    let cfg = req.config();
    w.u32(cfg.params.len() as u32);
    for spec in &cfg.params {
        match spec {
            ParamSpec::Unknown => w.u8(0),
            ParamSpec::Known => w.u8(1),
            ParamSpec::PtrToKnown { len } => {
                w.u8(2);
                w.u64(*len);
            }
        }
    }
    w.u32(req.args().len() as u32);
    for arg in req.args() {
        match arg {
            ArgValue::Int(v) => {
                w.u8(0);
                w.u64(*v as u64);
            }
            ArgValue::F64(v) => {
                w.u8(1);
                w.u64(v.to_bits());
            }
        }
    }
    w.u8(match cfg.ret {
        RetKind::Int => 0,
        RetKind::F64 => 1,
        RetKind::Void => 2,
    });
    w.ranges(&cfg.known_mem);
    let mut fopts: Vec<(&u64, &FuncOpts)> = cfg.func_opts.iter().collect();
    fopts.sort_by_key(|(a, _)| **a);
    w.u32(fopts.len() as u32);
    for (addr, o) in fopts {
        w.u64(*addr);
        w.opts(o);
    }
    w.opts(&cfg.default_opts);
    w.u64(cfg.max_trace_insts);
    w.u64(cfg.max_blocks as u64);
    w.u64(cfg.max_code_bytes as u64);
    for hook in [cfg.mem_access_hook, cfg.entry_hook, cfg.exit_hook] {
        w.u8(hook.is_some() as u8);
        w.u64(hook.unwrap_or(0));
    }
    let p = req.pass_config();
    w.u8((p.dead_store_elim as u8)
        | (p.redundant_load_elim as u8) << 1
        | (p.peephole as u8) << 2
        | (p.slot_promotion as u8) << 3
        | (p.frame_compression as u8) << 4
        | (p.regalloc as u8) << 5);
}

fn decode_req(r: &mut Reader<'_>) -> Result<SpecRequest, PersistError> {
    let mut cfg = RewriteConfig::new();
    let nspecs = r.u32()? as usize;
    for i in 0..nspecs {
        let spec = match r.u8()? {
            0 => ParamSpec::Unknown,
            1 => ParamSpec::Known,
            2 => ParamSpec::PtrToKnown { len: r.u64()? },
            t => {
                return Err(PersistError::BadEncoding {
                    what: format!("parameter spec tag {t}"),
                })
            }
        };
        cfg.set_param(i, spec);
    }
    let nargs = r.u32()? as usize;
    let mut args = Vec::with_capacity(nargs.min(1 << 16));
    for _ in 0..nargs {
        args.push(match r.u8()? {
            0 => ArgValue::Int(r.u64()? as i64),
            1 => ArgValue::F64(f64::from_bits(r.u64()?)),
            t => {
                return Err(PersistError::BadEncoding {
                    what: format!("argument tag {t}"),
                })
            }
        });
    }
    cfg.ret = match r.u8()? {
        0 => RetKind::Int,
        1 => RetKind::F64,
        2 => RetKind::Void,
        t => {
            return Err(PersistError::BadEncoding {
                what: format!("return-kind tag {t}"),
            })
        }
    };
    cfg.known_mem = r.ranges()?;
    let nf = r.u32()? as usize;
    for _ in 0..nf {
        let addr = r.u64()?;
        let o = r.opts()?;
        cfg.func_opts.insert(addr, o);
    }
    cfg.default_opts = r.opts()?;
    cfg.max_trace_insts = r.u64()?;
    cfg.max_blocks = r.u64()? as usize;
    cfg.max_code_bytes = r.u64()? as usize;
    let mut hooks = [None; 3];
    for h in &mut hooks {
        let flag = r.u8()?;
        let addr = r.u64()?;
        *h = (flag != 0).then_some(addr);
    }
    cfg.mem_access_hook = hooks[0];
    cfg.entry_hook = hooks[1];
    cfg.exit_hook = hooks[2];
    let mask = r.u8()?;
    let passes = PassConfig {
        dead_store_elim: mask & 1 != 0,
        redundant_load_elim: mask & 2 != 0,
        peephole: mask & 4 != 0,
        slot_promotion: mask & 8 != 0,
        frame_compression: mask & 16 != 0,
        regalloc: mask & 32 != 0,
    };
    SpecRequest::from_config(&cfg, &args, &passes).map_err(|e| PersistError::BadEncoding {
        what: e.to_string(),
    })
}

fn encode_entry(v: &PersistedVariant) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(v.code.len() + 256));
    w.u64(v.func);
    w.u64(v.fingerprint);
    w.u64(v.entry);
    w.u32(v.code.len() as u32);
    w.0.extend_from_slice(&v.code);
    w.ranges(v.snapshot.ranges());
    w.u64(v.snapshot.hash());
    let s = &v.stats;
    for field in [
        s.traced,
        s.emitted,
        s.elided,
        s.blocks,
        s.migrations,
        s.inlined_calls,
        s.kept_calls,
        s.pass_removed,
        s.pool_bytes,
        s.code_bytes,
        s.hooks_injected,
        s.trace_ns,
        s.pass_ns,
        s.emit_ns,
    ] {
        w.u64(field);
    }
    encode_req(&mut w, &v.req);
    w.0
}

fn decode_entry(payload: &[u8]) -> Result<PersistedVariant, PersistError> {
    let mut r = Reader::new(payload);
    let func = r.u64()?;
    let fingerprint = r.u64()?;
    let entry = r.u64()?;
    let code_len = r.u32()? as usize;
    let code = r.take(code_len)?.to_vec();
    let ranges = r.ranges()?;
    let hash = r.u64()?;
    let snapshot = KnownSnapshot::from_parts(ranges, hash);
    let mut f = || r.u64();
    let stats = RewriteStats {
        traced: f()?,
        emitted: f()?,
        elided: f()?,
        blocks: f()?,
        migrations: f()?,
        inlined_calls: f()?,
        kept_calls: f()?,
        pass_removed: f()?,
        pool_bytes: f()?,
        code_bytes: f()?,
        hooks_injected: f()?,
        trace_ns: f()?,
        pass_ns: f()?,
        emit_ns: f()?,
    };
    let req = decode_req(&mut r)?;
    if !r.done() {
        return Err(PersistError::BadEncoding {
            what: format!("{} trailing payload bytes", payload.len() - r.pos),
        });
    }
    Ok(PersistedVariant {
        func,
        fingerprint,
        entry,
        code,
        snapshot,
        stats,
        req,
    })
}

/// Serialize variants into a version-[`FORMAT_VERSION`] file image.
/// Entries are written in the order given; callers that care about
/// placement (the manager does) sort by ascending `entry` first.
pub fn encode_variants(vars: &[PersistedVariant]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(vars.len() as u32).to_le_bytes());
    for v in vars {
        let payload = encode_entry(v);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let sum = fnv1a(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&sum.to_le_bytes());
    }
    out
}

/// Decode a variant-file image. The outer `Result` is file-level: bad
/// magic, unsupported version or broken framing reject the whole file.
/// Each inner `Result` is entry-level: an entry whose checksum fails is
/// rejected alone ([`PersistError::Checksum`]) while its intact framing
/// lets decoding continue with the next entry.
#[allow(clippy::type_complexity)]
pub fn decode_variants(
    bytes: &[u8],
) -> Result<Vec<Result<PersistedVariant, PersistError>>, PersistError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::BadVersion { found: version });
    }
    let count = r.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for index in 0..count {
        let plen = r.u32()? as usize;
        let payload = r.take(plen)?;
        let sum = r.u64()?;
        if fnv1a(payload) != sum {
            out.push(Err(PersistError::Checksum { index }));
            continue;
        }
        out.push(decode_entry(payload));
    }
    if !r.done() {
        return Err(PersistError::Truncated);
    }
    Ok(out)
}

/// Byte ranges (within the file image) of each entry's *code* field, in
/// file order — the corruption harness uses this to flip bits inside
/// variant code without tearing the surrounding framing.
pub fn entry_code_spans(bytes: &[u8]) -> Result<Vec<Range<usize>>, PersistError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::BadVersion { found: version });
    }
    let count = r.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let plen = r.u32()? as usize;
        let payload_start = r.pos;
        // func, fingerprint, entry, then the code length field.
        let mut p = Reader::new(r.take(plen)?);
        p.take(24)?;
        let code_len = p.u32()? as usize;
        let code_start = payload_start + p.pos;
        p.take(code_len)?;
        out.push(code_start..code_start + code_len);
        r.u64()?; // checksum
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(func: u64, entry: u64) -> PersistedVariant {
        let req = SpecRequest::new()
            .unknown_int()
            .known_int(7)
            .ptr_to_known(0x60_0000, 16)
            .ret(RetKind::Int)
            .known_mem(0x61_0000..0x61_0040)
            .func(0x40_1000, |o| o.inline = false)
            .max_trace_insts(12_345)
            .entry_hook(0x42_0000)
            .passes(PassConfig::none());
        PersistedVariant {
            func,
            fingerprint: req.fingerprint(),
            entry,
            code: (0..37u8).collect(),
            snapshot: KnownSnapshot::from_parts(
                std::iter::once(0x61_0000..0x61_0010).collect(),
                0xDEAD_BEEF,
            ),
            stats: RewriteStats {
                traced: 1,
                emitted: 2,
                elided: 3,
                blocks: 4,
                migrations: 5,
                inlined_calls: 6,
                kept_calls: 7,
                pass_removed: 8,
                pool_bytes: 9,
                code_bytes: 37,
                hooks_injected: 10,
                trace_ns: 11,
                pass_ns: 12,
                emit_ns: 13,
            },
            req,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let vars = vec![sample(0x40_0000, 0x90_0000), sample(0x40_0100, 0x90_0100)];
        let bytes = encode_variants(&vars);
        let back: Vec<_> = decode_variants(&bytes)
            .unwrap()
            .into_iter()
            .map(|e| e.unwrap())
            .collect();
        assert_eq!(back.len(), 2);
        for (a, b) in vars.iter().zip(&back) {
            assert_eq!(a.func, b.func);
            assert_eq!(a.fingerprint, b.fingerprint);
            assert_eq!(a.entry, b.entry);
            assert_eq!(a.code, b.code);
            assert_eq!(a.snapshot, b.snapshot);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.req.fingerprint(), b.req.fingerprint());
            assert_eq!(a.req.guard_conditions(), b.req.guard_conditions());
        }
    }

    #[test]
    fn bad_magic_and_version_are_file_level() {
        let bytes = encode_variants(&[sample(1, 0x90_0000)]);
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode_variants(&bad), Err(PersistError::BadMagic));

        let mut bad = bytes.clone();
        bad[8] = 99;
        assert_eq!(
            decode_variants(&bad),
            Err(PersistError::BadVersion { found: 99 })
        );

        assert_eq!(
            decode_variants(&bytes[..bytes.len() - 3]),
            Err(PersistError::Truncated)
        );
    }

    #[test]
    fn code_flip_rejects_only_that_entry() {
        let vars = vec![sample(1, 0x90_0000), sample(2, 0x90_0100)];
        let mut bytes = encode_variants(&vars);
        let spans = entry_code_spans(&bytes).unwrap();
        assert_eq!(spans.len(), 2);
        bytes[spans[0].start + 5] ^= 0x40;
        let decoded = decode_variants(&bytes).unwrap();
        assert_eq!(decoded[0], Err(PersistError::Checksum { index: 0 }));
        assert_eq!(decoded[1].as_ref().unwrap().func, 2);
    }
}
