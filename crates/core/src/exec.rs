//! Abstract execution of one traced instruction (§III.B):
//!
//! *"We do partial evaluation by tracing the execution of the original
//! function instruction by instruction. In each step, either the original
//! instruction, a modified version, or nothing may be passed on as the next
//! instruction to be appended to the newly generated variant."*
//!
//! Fully-known operations are evaluated at rewrite time and emit nothing;
//! everything else is re-emitted with known operands substituted by
//! immediates, absolute addresses, folded displacements or literal-pool
//! references. Instructions that write RSP are always emitted (in a
//! flag-neutral form where the original was flag-neutral), which keeps the
//! runtime stack pointer equal to the tracked `StackRel` value.

use crate::capture::{CapturedInst, Terminator};
use crate::error::RewriteError;
use crate::tracer::{materialize_gpr_inst, Step, TraceCtx, Tracer};
use crate::value::{alu_value, imul_value, shift_value, test_value, unop_value, FlagsVal, Value};
use crate::world::{InlineFrame, RegState, World, XmmState};
use brew_x86::prelude::*;

const HOOK_SAVE_BYTES: i64 = 9 * 8 + 128; // 9 GPR pushes + 16 xmm slots

/// Argument delivered to an injected handler in RDI.
pub(crate) enum HookArg {
    /// Effective address of a memory operand (rsp-relative operands are
    /// pre-adjusted by the save-area size by the caller).
    Ea(MemRef),
    /// A constant (e.g. the original function's address).
    Const(u64),
}

/// The register-preserving call sequence around an injected handler:
/// save all caller-visible registers, load RDI, call, restore.
pub(crate) fn build_hook_sequence(hook: u64, arg: HookArg) -> Vec<Inst> {
    const SAVED: [Gpr; 9] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
    ];
    let mut out = Vec::with_capacity(9 * 2 + 16 * 2 + 5);
    for r in SAVED {
        out.push(Inst::Push {
            src: Operand::Reg(r),
        });
    }
    out.push(Inst::Alu {
        op: AluOp::Sub,
        w: Width::W64,
        dst: Operand::Reg(Gpr::Rsp),
        src: Operand::Imm(128),
    });
    for i in 0..16u8 {
        out.push(Inst::MovSd {
            dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, i as i32 * 8)),
            src: Operand::Xmm(Xmm::from_number(i)),
        });
    }
    match arg {
        HookArg::Ea(m) => out.push(Inst::Lea {
            dst: Gpr::Rdi,
            src: m,
        }),
        HookArg::Const(c) => {
            if (c as i64) == (c as i64 as i32) as i64 {
                out.push(Inst::Mov {
                    w: Width::W64,
                    dst: Operand::Reg(Gpr::Rdi),
                    src: Operand::Imm(c as i64),
                });
            } else {
                out.push(Inst::MovAbs {
                    dst: Gpr::Rdi,
                    imm: c,
                });
            }
        }
    }
    out.push(Inst::CallRel { target: hook });
    for i in 0..16u8 {
        out.push(Inst::MovSd {
            dst: Operand::Xmm(Xmm::from_number(i)),
            src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, i as i32 * 8)),
        });
    }
    out.push(Inst::Alu {
        op: AluOp::Add,
        w: Width::W64,
        dst: Operand::Reg(Gpr::Rsp),
        src: Operand::Imm(128),
    });
    for r in SAVED.iter().rev() {
        out.push(Inst::Pop {
            dst: Operand::Reg(*r),
        });
    }
    out
}

impl Tracer<'_> {
    // ---- world reads -----------------------------------------------------

    /// Abstract effective address of a memory reference.
    fn addr_value(&self, w: &World, m: &MemRef) -> Value {
        let mut acc = Value::Const(m.disp as i64 as u64);
        if let Some(b) = m.base {
            let (v, _) = alu_value(AluOp::Add, Width::W64, w.reg(b).val, acc);
            acc = v;
        }
        if let Some((i, s)) = m.index {
            let idx = w.reg(i).val;
            let scaled = match idx {
                Value::Const(c) => Value::Const(c.wrapping_mul(s as u64)),
                Value::StackRel(o) if s == 1 => Value::StackRel(o),
                _ => Value::Unknown,
            };
            let (v, _) = alu_value(AluOp::Add, Width::W64, acc, scaled);
            acc = v;
        }
        acc
    }

    /// Value behind `addr` if it is known at rewrite time.
    fn load_known(&self, w: &World, addr: Value, size: u64) -> Value {
        match addr {
            Value::Const(a) => {
                if size == 8 && a % 8 == 0 {
                    if let Some(v) = w.gshadow.get(&a) {
                        return *v;
                    }
                    if self.addr_known(a, 8) {
                        return self
                            .img
                            .read_u64(a)
                            .map(|v| {
                                // The fold bakes these bytes into the code:
                                // record them for the staleness snapshot.
                                self.read_set.borrow_mut().record(a, 8);
                                Value::Const(v)
                            })
                            .unwrap_or(Value::Unknown);
                    }
                    Value::Unknown
                } else {
                    let lo = a & !7;
                    let hi = (a + size - 1) & !7;
                    if w.gshadow.contains_key(&lo) || w.gshadow.contains_key(&hi) {
                        return Value::Unknown;
                    }
                    if self.addr_known(a, size) {
                        return self
                            .img
                            .read_uint(a, size)
                            .map(|v| {
                                self.read_set.borrow_mut().record(a, size);
                                Value::Const(v)
                            })
                            .unwrap_or(Value::Unknown);
                    }
                    Value::Unknown
                }
            }
            Value::StackRel(o) => {
                if size == 8 && o % 8 == 0 {
                    w.frame_slot(o)
                } else {
                    Value::Unknown
                }
            }
            Value::Unknown => Value::Unknown,
        }
    }

    /// Record the shadow effect of an (always-emitted) store.
    fn store_shadow(&mut self, w: &mut World, addr: Value, size: u64, val: Value) {
        // A frame pointer stored anywhere but the tracked frame itself
        // becomes reachable from untracked memory.
        if matches!(val, Value::StackRel(_)) && !matches!(addr, Value::StackRel(_)) {
            w.frame_escaped = true;
            self.frame_escaped_any();
        }
        match addr {
            Value::Const(a) => {
                if size == 8 && a % 8 == 0 {
                    w.gshadow.insert(a, val);
                } else {
                    w.gshadow.insert(a & !7, Value::Unknown);
                    w.gshadow.insert((a + size - 1) & !7, Value::Unknown);
                }
            }
            Value::StackRel(o) => {
                if size == 8 && o % 8 == 0 {
                    w.set_frame_slot(o, val);
                } else {
                    w.set_frame_slot(o & !7, Value::Unknown);
                    w.set_frame_slot((o + size as i64 - 1) & !7, Value::Unknown);
                }
            }
            Value::Unknown => w.clobber_for_unknown_store(),
        }
    }

    // ---- emission helpers --------------------------------------------------

    fn emit(&mut self, cx: &mut TraceCtx, inst: Inst) {
        self.emit_mem(cx, inst, None, None)
    }

    fn emit_mem(&mut self, cx: &mut TraceCtx, inst: Inst, fs: Option<i64>, fl: Option<i64>) {
        if inst.writes_flags() {
            cx.wrote_flags = true;
        }
        if inst.reads_flags() && !cx.wrote_flags {
            cx.reads_flags_on_entry = true;
        }
        self.stats_emitted();
        cx.out.push(CapturedInst {
            inst,
            frame_store: fs,
            frame_load: fl,
        });
    }

    fn stats_emitted(&mut self) {
        self.stats.emitted += 1;
    }

    fn elided(&mut self) {
        self.stats.elided += 1;
    }

    /// Make the architectural GPR hold its tracked value.
    ///
    /// `data_use` records *why*: when a stack-relative value is needed as
    /// ordinary data in an emitted instruction (its result becomes an
    /// untracked runtime value), a frame pointer escapes into the unknown
    /// world and the frame-aliasing assumption must be dropped. Pure
    /// address formation (an index register of a memory operand), saves to
    /// the tracked frame (push) and ABI-restores at return do not leak.
    fn ensure_arch_gpr_for(
        &mut self,
        cx: &mut TraceCtx,
        r: Gpr,
        data_use: bool,
    ) -> Result<(), RewriteError> {
        let st = cx.w.reg(r);
        if data_use && matches!(st.val, Value::StackRel(_)) {
            cx.w.frame_escaped = true;
            self.frame_escaped_any();
        }
        if st.synced || !st.val.is_known() {
            return Ok(());
        }
        let inst = materialize_gpr_inst(r, st.val, cx.w.rsp_off())?;
        self.emit(cx, inst);
        cx.w.set_reg(
            r,
            RegState {
                val: st.val,
                synced: true,
            },
        );
        Ok(())
    }

    /// [`Self::ensure_arch_gpr_for`] with `data_use = true` (the common,
    /// conservative case).
    fn ensure_arch_gpr(&mut self, cx: &mut TraceCtx, r: Gpr) -> Result<(), RewriteError> {
        self.ensure_arch_gpr_for(cx, r, true)
    }

    /// Make the architectural XMM register hold its tracked lanes.
    fn ensure_arch_xmm(&mut self, cx: &mut TraceCtx, x: Xmm) -> Result<(), RewriteError> {
        let st = cx.w.xmm(x);
        if st.synced || st.lanes.iter().all(|l| !l.is_known()) {
            return Ok(());
        }
        let lane0 = match st.lanes[0] {
            Value::Const(b) => b,
            _ => {
                return Err(RewriteError::TraceFault {
                    addr: 0,
                    what: "cannot materialize xmm with unknown low lane",
                })
            }
        };
        let (inst, lanes) = match st.lanes[1] {
            Value::Const(hi) if hi != 0 => {
                let pool = self.pool_const16(lane0, hi);
                (
                    Inst::MovUpd {
                        dst: Operand::Xmm(x),
                        src: Operand::Mem(MemRef::abs(pool as i32)),
                    },
                    [Value::Const(lane0), Value::Const(hi)],
                )
            }
            _ => {
                let pool = self.pool_const8(lane0);
                (
                    Inst::MovSd {
                        dst: Operand::Xmm(x),
                        src: Operand::Mem(MemRef::abs(pool as i32)),
                    },
                    [Value::Const(lane0), Value::Const(0)],
                )
            }
        };
        self.emit(cx, inst);
        cx.w.set_xmm(
            x,
            XmmState {
                lanes,
                synced: true,
            },
        );
        Ok(())
    }

    fn frame_escaped_any(&mut self) {
        self.escaped = true;
    }

    // ---- operand substitution ----------------------------------------------

    /// Rewrite a memory operand so the emitted instruction addresses the
    /// same location: fold constants into displacements, rebase
    /// stack-relative addresses onto RSP, use absolute addressing for fully
    /// known addresses (the Figure-6 form). Returns the rewritten operand
    /// and, when the address is a tracked frame slot, its entry-relative
    /// offset for the dead-store pass.
    fn subst_mem(
        &mut self,
        cx: &mut TraceCtx,
        m: &MemRef,
    ) -> Result<(MemRef, Option<i64>), RewriteError> {
        let total = self.addr_value(&cx.w, m);
        match total {
            Value::Const(a) => {
                if let Some(abs) = MemRef::abs_u64(a) {
                    return Ok((abs, None));
                }
            }
            Value::StackRel(o) => {
                let disp = i32::try_from(o - cx.w.rsp_off()).map_err(|_| {
                    RewriteError::Unencodable(brew_x86::encode::EncodeError::ImmTooLarge(o))
                })?;
                return Ok((MemRef::base_disp(Gpr::Rsp, disp), Some(o)));
            }
            Value::Unknown => {}
        }
        // Partially known: rebuild component-wise.
        let mut disp = m.disp as i64;
        let mut base: Option<Gpr> = None;
        if let Some(b) = m.base {
            match cx.w.reg(b).val {
                Value::Unknown => base = Some(b),
                Value::Const(c) => disp += c as i64,
                Value::StackRel(o) => {
                    disp += o - cx.w.rsp_off();
                    base = Some(Gpr::Rsp);
                }
            }
        }
        let mut index: Option<(Gpr, u8)> = None;
        if let Some((i, s)) = m.index {
            match cx.w.reg(i).val {
                Value::Unknown => index = Some((i, s)),
                Value::Const(c) => disp += (c as i64).wrapping_mul(s as i64),
                Value::StackRel(_) => {
                    // Architectural index needed: materialize it (pure
                    // address use, not an escape).
                    self.ensure_arch_gpr_for(cx, i, false)?;
                    index = Some((i, s));
                }
            }
        }
        let disp = i32::try_from(disp).map_err(|_| {
            RewriteError::Unencodable(brew_x86::encode::EncodeError::ImmTooLarge(disp))
        })?;
        Ok((MemRef { base, index, disp }, None))
    }

    /// Substitute an integer source operand for emission. Known register
    /// values become immediates when the encoding allows, otherwise the
    /// register is materialized.
    fn subst_int_src(
        &mut self,
        cx: &mut TraceCtx,
        op: &Operand,
        w: Width,
    ) -> Result<(Operand, Option<i64>), RewriteError> {
        match op {
            Operand::Imm(_) => Ok((*op, None)),
            Operand::Reg(r) => match cx.w.reg(*r).val {
                Value::Unknown => Ok((*op, None)),
                Value::Const(c) => {
                    if let Some(imm) = imm_for(w, c) {
                        Ok((Operand::Imm(imm), None))
                    } else {
                        self.ensure_arch_gpr(cx, *r)?;
                        Ok((*op, None))
                    }
                }
                Value::StackRel(_) => {
                    self.ensure_arch_gpr(cx, *r)?;
                    Ok((*op, None))
                }
            },
            Operand::Mem(m) => {
                let (mm, off) = self.subst_mem(cx, m)?;
                Ok((Operand::Mem(mm), off))
            }
            // Decode never pairs an xmm operand with an integer opcode,
            // but guest bytes are untrusted: fail the rewrite, not the
            // process (§III.G).
            Operand::Xmm(_) => Err(RewriteError::TraceFault {
                addr: 0,
                what: "xmm operand in integer substitution",
            }),
        }
    }

    /// Substitute an SSE source operand: known scalar constants come from
    /// the literal pool as absolute memory operands.
    fn subst_sse_src(
        &mut self,
        cx: &mut TraceCtx,
        op: &Operand,
        packed: bool,
    ) -> Result<(Operand, Option<i64>), RewriteError> {
        match op {
            Operand::Xmm(x) => {
                let st = cx.w.xmm(*x);
                if st.synced {
                    return Ok((*op, None));
                }
                match (st.lanes[0], packed) {
                    (Value::Const(bits), false) => {
                        let pool = self.pool_const8(bits);
                        Ok((Operand::Mem(MemRef::abs(pool as i32)), None))
                    }
                    (Value::Const(lo), true) => {
                        let hi = match st.lanes[1] {
                            Value::Const(h) => h,
                            _ => {
                                self.ensure_arch_xmm(cx, *x)?;
                                return Ok((*op, None));
                            }
                        };
                        let pool = self.pool_const16(lo, hi);
                        Ok((Operand::Mem(MemRef::abs(pool as i32)), None))
                    }
                    _ => {
                        self.ensure_arch_xmm(cx, *x)?;
                        Ok((*op, None))
                    }
                }
            }
            Operand::Mem(m) => {
                let (mm, off) = self.subst_mem(cx, m)?;
                Ok((Operand::Mem(mm), off))
            }
            _ => Err(RewriteError::TraceFault {
                addr: 0,
                what: "non-xmm, non-memory operand in sse substitution",
            }),
        }
    }

    /// Read an integer operand's abstract value (resolving known loads).
    fn int_value(&self, w: &World, op: &Operand, width: Width) -> Value {
        match op {
            Operand::Reg(r) => w.reg(*r).val,
            Operand::Imm(i) => Value::Const(*i as u64),
            Operand::Mem(m) => {
                let addr = self.addr_value(w, m);
                self.load_known(w, addr, width.bytes())
            }
            // Malformed operand class: unknown is always sound — the
            // instruction is emitted unmodified instead of folded.
            Operand::Xmm(_) => Value::Unknown,
        }
    }

    /// Read the 64-bit lane behind an SSE source (xmm low lane or m64).
    fn sse64_value(&self, w: &World, op: &Operand) -> Value {
        match op {
            Operand::Xmm(x) => w.xmm(*x).lanes[0],
            Operand::Mem(m) => {
                let addr = self.addr_value(w, m);
                self.load_known(w, addr, 8)
            }
            _ => Value::Unknown,
        }
    }

    fn sse128_value(&self, w: &World, op: &Operand) -> [Value; 2] {
        match op {
            Operand::Xmm(x) => w.xmm(*x).lanes,
            Operand::Mem(m) => {
                let addr = self.addr_value(w, m);
                let lo = self.load_known(w, addr, 8);
                let hi = match addr {
                    Value::Const(a) => self.load_known(w, Value::Const(a + 8), 8),
                    Value::StackRel(o) => self.load_known(w, Value::StackRel(o + 8), 8),
                    Value::Unknown => Value::Unknown,
                };
                [lo, hi]
            }
            _ => [Value::Unknown, Value::Unknown],
        }
    }

    /// Write an abstract result to a GPR with x86 width semantics,
    /// unsynced (the instruction that produced it was elided).
    fn set_reg_value(&self, w: &mut World, r: Gpr, width: Width, v: Value, synced: bool) {
        let v = match width {
            Width::W64 => v,
            Width::W32 => v.as_w32_result(),
            Width::W8 => match (w.reg(r).val, v) {
                (Value::Const(old), Value::Const(b)) => Value::Const((old & !0xFF) | (b & 0xFF)),
                _ => Value::Unknown,
            },
        };
        let synced = synced || matches!(v, Value::Unknown);
        w.set_reg(r, RegState { val: v, synced });
    }

    /// Inject a memory-access hook call (§III.D): saves all caller-visible
    /// registers, passes the effective address in RDI, calls the handler
    /// and restores. The handler may clobber flags; corruption is tracked.
    pub(crate) fn inject_hook(
        &mut self,
        cx: &mut TraceCtx,
        hook: u64,
        arg: HookArg,
    ) -> Result<(), RewriteError> {
        // Adjust rsp-relative effective addresses by the save-area size.
        let arg = match arg {
            HookArg::Ea(m) if m.base == Some(Gpr::Rsp) => HookArg::Ea(
                m.with_disp_added(HOOK_SAVE_BYTES)
                    .ok_or(RewriteError::Unencodable(
                        brew_x86::encode::EncodeError::ImmTooLarge(m.disp as i64),
                    ))?,
            ),
            a => a,
        };
        for inst in build_hook_sequence(hook, arg) {
            self.emit(cx, inst);
        }
        // Shadow slots under the save area are clobbered.
        let rsp_off = cx.w.rsp_off();
        let mut off = rsp_off - HOOK_SAVE_BYTES;
        while off < rsp_off {
            if cx.w.frame.contains_key(&off) {
                cx.w.frame.insert(off, Value::Unknown);
            }
            off += 8;
        }
        // The handler clobbers flags: genuinely-runtime flags become stale.
        if matches!(cx.w.flags, FlagsVal::Unknown) {
            cx.w.flags = FlagsVal::Stale;
        }
        self.stats.hooks_injected += 1;
        Ok(())
    }

    /// If hooks are enabled and the (already substituted) operand has an
    /// unknown address, inject the handler call before the access.
    fn maybe_hook(&mut self, cx: &mut TraceCtx, m: &MemRef) -> Result<(), RewriteError> {
        if let Some(h) = self.cfg.mem_access_hook {
            // Fully folded absolute/rsp addresses are "known" accesses; the
            // PGAS use case wants the unknown (potentially remote) ones.
            let is_known = m.base.is_none() && m.index.is_none()
                || (m.base == Some(Gpr::Rsp) && m.index.is_none());
            if !is_known {
                self.inject_hook(cx, h, HookArg::Ea(*m))?;
            }
        }
        Ok(())
    }

    // =====================================================================
    // The instruction dispatcher.
    // =====================================================================

    pub(crate) fn exec_inst(
        &mut self,
        cx: &mut TraceCtx,
        inst: &Inst,
        addr: u64,
        next: u64,
    ) -> Result<Step, RewriteError> {
        let opts = self.cfg.opts_for(cx.w.cur_fn);
        let fresh = opts.fresh_unknown;
        let force_flags = opts.branch_unknown;

        match inst {
            Inst::Nop => Ok(Step::Continue(next)),
            Inst::Ud2 => Err(RewriteError::TraceFault { addr, what: "ud2" }),

            // ---- data movement ------------------------------------------
            Inst::Mov { w, dst, src } => {
                match dst {
                    Operand::Reg(d) => {
                        let v = self.int_value(&cx.w, src, *w);
                        if v.is_known() && *d != Gpr::Rsp {
                            self.set_reg_value(&mut cx.w, *d, *w, v, false);
                            self.elided();
                        } else if *d == Gpr::Rsp {
                            // mov rsp, X: emit a flag-neutral RSP adjustment.
                            let Value::StackRel(o) = (match src {
                                Operand::Reg(s) => cx.w.reg(*s).val,
                                Operand::Imm(_) | Operand::Mem(_) | Operand::Xmm(_) => {
                                    self.int_value(&cx.w, src, *w)
                                }
                            }) else {
                                return Err(RewriteError::TraceFault {
                                    addr,
                                    what: "rsp assigned a non-stack value",
                                });
                            };
                            let delta = o - cx.w.rsp_off();
                            if delta != 0 {
                                let disp = i32::try_from(delta).map_err(|_| {
                                    RewriteError::Unencodable(
                                        brew_x86::encode::EncodeError::ImmTooLarge(delta),
                                    )
                                })?;
                                self.emit(
                                    cx,
                                    Inst::Lea {
                                        dst: Gpr::Rsp,
                                        src: MemRef::base_disp(Gpr::Rsp, disp),
                                    },
                                );
                            } else {
                                self.elided();
                            }
                            cx.w.set_reg(
                                Gpr::Rsp,
                                RegState {
                                    val: Value::StackRel(o),
                                    synced: true,
                                },
                            );
                        } else {
                            let (s, fl) = self.subst_int_src(cx, src, *w)?;
                            if let Operand::Mem(m) = &s {
                                self.maybe_hook(cx, m)?;
                            }
                            self.emit_mem(
                                cx,
                                Inst::Mov {
                                    w: *w,
                                    dst: *dst,
                                    src: s,
                                },
                                None,
                                fl,
                            );
                            self.set_reg_value(&mut cx.w, *d, *w, Value::Unknown, true);
                        }
                    }
                    Operand::Mem(m) => {
                        // Stores are always emitted.
                        let val = self.int_value(&cx.w, src, *w);
                        let a = self.addr_value(&cx.w, m);
                        let (mm, fs) = self.subst_mem(cx, m)?;
                        let (s, _) = self.subst_int_src(cx, src, *w)?;
                        let s = match s {
                            Operand::Imm(i) if imm_for(*w, i as u64).is_none() => {
                                // Shouldn't happen (imm_for produced it).
                                return Err(RewriteError::Unencodable(
                                    brew_x86::encode::EncodeError::ImmTooLarge(i),
                                ));
                            }
                            s => s,
                        };
                        self.maybe_hook(cx, &mm)?;
                        self.emit_mem(
                            cx,
                            Inst::Mov {
                                w: *w,
                                dst: Operand::Mem(mm),
                                src: s,
                            },
                            fs,
                            None,
                        );
                        let stored = match *w {
                            Width::W64 => val,
                            _ => val.as_w32_result(),
                        };
                        self.store_shadow(&mut cx.w, a, w.bytes(), stored);
                    }
                    _ => {
                        return Err(RewriteError::TraceFault {
                            addr,
                            what: "bad mov dst",
                        })
                    }
                }
                Ok(Step::Continue(next))
            }

            Inst::MovAbs { dst, imm } => {
                self.set_reg_value(&mut cx.w, *dst, Width::W64, Value::Const(*imm), false);
                self.elided();
                Ok(Step::Continue(next))
            }

            Inst::Movsxd { dst, src } => {
                let v = self.int_value(&cx.w, src, Width::W32);
                match v {
                    Value::Const(c) => {
                        self.set_reg_value(
                            &mut cx.w,
                            *dst,
                            Width::W64,
                            Value::Const(Width::W32.sext(c)),
                            false,
                        );
                        self.elided();
                    }
                    _ => {
                        let (s, fl) = self.subst_int_src(cx, src, Width::W32)?;
                        let s = no_imm(self, cx, s, src)?;
                        self.emit_mem(cx, Inst::Movsxd { dst: *dst, src: s }, None, fl);
                        self.set_reg_value(&mut cx.w, *dst, Width::W64, Value::Unknown, true);
                    }
                }
                Ok(Step::Continue(next))
            }

            Inst::Movzx8 { w, dst, src } => {
                let v = self.int_value(&cx.w, src, Width::W8);
                match v {
                    Value::Const(c) => {
                        self.set_reg_value(&mut cx.w, *dst, *w, Value::Const(c & 0xFF), false);
                        self.elided();
                    }
                    _ => {
                        let (s, fl) = self.subst_int_src(cx, src, Width::W8)?;
                        let s = no_imm(self, cx, s, src)?;
                        self.emit_mem(
                            cx,
                            Inst::Movzx8 {
                                w: *w,
                                dst: *dst,
                                src: s,
                            },
                            None,
                            fl,
                        );
                        self.set_reg_value(&mut cx.w, *dst, *w, Value::Unknown, true);
                    }
                }
                Ok(Step::Continue(next))
            }

            Inst::Lea { dst, src } => {
                let v = self.addr_value(&cx.w, src);
                let keep = match v {
                    Value::StackRel(_) => true, // stack addresses stay tracked
                    Value::Const(_) => !fresh,
                    Value::Unknown => false,
                };
                if v.is_known() && keep && *dst != Gpr::Rsp {
                    self.set_reg_value(&mut cx.w, *dst, Width::W64, v, false);
                    self.elided();
                } else if *dst == Gpr::Rsp {
                    let Value::StackRel(o) = v else {
                        return Err(RewriteError::TraceFault {
                            addr,
                            what: "rsp assigned a non-stack value",
                        });
                    };
                    let delta = o - cx.w.rsp_off();
                    if delta != 0 {
                        self.emit(
                            cx,
                            Inst::Lea {
                                dst: Gpr::Rsp,
                                src: MemRef::base_disp(Gpr::Rsp, delta as i32),
                            },
                        );
                    }
                    cx.w.set_reg(
                        Gpr::Rsp,
                        RegState {
                            val: v,
                            synced: true,
                        },
                    );
                } else {
                    let (m, _) = self.subst_mem(cx, src)?;
                    self.emit(cx, Inst::Lea { dst: *dst, src: m });
                    let res = if v.is_known() { v } else { Value::Unknown };
                    // Emitted lea computes the true value from architectural
                    // inputs; if we also know it, it is synced.
                    let synced = true;
                    let res = if fresh && matches!(res, Value::Const(_)) {
                        Value::Unknown
                    } else {
                        res
                    };
                    cx.w.set_reg(*dst, RegState { val: res, synced });
                }
                Ok(Step::Continue(next))
            }

            // ---- ALU ------------------------------------------------------
            Inst::Alu { op, w, dst, src } => {
                self.exec_alu(cx, *op, *w, dst, src, addr, fresh, force_flags)?;
                Ok(Step::Continue(next))
            }

            Inst::Test { w, a, b } => {
                let va = self.int_value(&cx.w, a, *w);
                let vb = self.int_value(&cx.w, b, *w);
                let flags = test_value(*w, va, vb);
                let force = force_flags || fresh;
                if flags.known().is_some() && !force {
                    cx.w.flags = flags;
                    self.elided();
                } else {
                    let (aa, fl) = self.subst_int_src(cx, a, *w)?;
                    let aa = no_imm(self, cx, aa, a)?;
                    let (bb, _) = self.subst_int_src(cx, b, *w)?;
                    // test needs reg or imm on the b side.
                    let bb = match bb {
                        Operand::Mem(_) => {
                            let Operand::Reg(r) = b else {
                                return Err(RewriteError::TraceFault {
                                    addr,
                                    what: "test with two memory operands",
                                });
                            };
                            self.ensure_arch_gpr(cx, *r)?;
                            Operand::Reg(*r)
                        }
                        other => other,
                    };
                    self.emit_mem(
                        cx,
                        Inst::Test {
                            w: *w,
                            a: aa,
                            b: bb,
                        },
                        None,
                        fl,
                    );
                    cx.w.flags = if force { FlagsVal::Unknown } else { flags };
                }
                Ok(Step::Continue(next))
            }

            Inst::Imul { w, dst, src } => {
                let va = cx.w.reg(*dst).val;
                let vb = self.int_value(&cx.w, src, *w);
                let (res, flags) = imul_value(*w, va, vb);
                let force = fresh || force_flags;
                if res.is_known() && !force {
                    self.set_reg_value(&mut cx.w, *dst, *w, res, false);
                    cx.w.flags = flags;
                    self.elided();
                } else {
                    self.ensure_arch_gpr(cx, *dst)?;
                    let (s, fl) = self.subst_int_src(cx, src, *w)?;
                    // imul r, r/m or imul r, r/m, imm.
                    let out_inst = match s {
                        Operand::Imm(i) => Inst::ImulImm {
                            w: *w,
                            dst: *dst,
                            src: Operand::Reg(*dst),
                            imm: i as i32,
                        },
                        s => Inst::Imul {
                            w: *w,
                            dst: *dst,
                            src: s,
                        },
                    };
                    self.emit_mem(cx, out_inst, None, fl);
                    let val = if fresh { Value::Unknown } else { res };
                    self.set_reg_value(&mut cx.w, *dst, *w, val, true);
                    cx.w.flags = FlagsVal::Unknown;
                }
                Ok(Step::Continue(next))
            }

            Inst::ImulImm { w, dst, src, imm } => {
                let vb = self.int_value(&cx.w, src, *w);
                let (res, flags) = imul_value(*w, vb, Value::Const(*imm as i64 as u64));
                let force = fresh || force_flags;
                if res.is_known() && !force {
                    self.set_reg_value(&mut cx.w, *dst, *w, res, false);
                    cx.w.flags = flags;
                    self.elided();
                } else {
                    let (s, fl) = self.subst_int_src(cx, src, *w)?;
                    let s = no_imm(self, cx, s, src)?;
                    self.emit_mem(
                        cx,
                        Inst::ImulImm {
                            w: *w,
                            dst: *dst,
                            src: s,
                            imm: *imm,
                        },
                        None,
                        fl,
                    );
                    let val = if fresh { Value::Unknown } else { res };
                    self.set_reg_value(&mut cx.w, *dst, *w, val, true);
                    cx.w.flags = FlagsVal::Unknown;
                }
                Ok(Step::Continue(next))
            }

            Inst::Unary { op, w, dst } => {
                self.exec_unary(cx, *op, *w, dst, addr, fresh, force_flags)?;
                Ok(Step::Continue(next))
            }

            Inst::Shift { op, w, dst, count } => {
                let cval = match count {
                    ShiftCount::Imm(i) => Value::Const(*i as u64),
                    ShiftCount::Cl => cx.w.reg(Gpr::Rcx).val,
                };
                let dval = self.int_value(&cx.w, dst, *w);
                let (res, flags) = shift_value(*op, *w, dval, cval, cx.w.flags);
                let force = fresh || force_flags;
                match dst {
                    Operand::Reg(d) if res.is_known() && !force => {
                        self.set_reg_value(&mut cx.w, *d, *w, res, false);
                        cx.w.flags = flags;
                        self.elided();
                    }
                    _ => {
                        if let Operand::Reg(d) = dst {
                            self.ensure_arch_gpr(cx, *d)?;
                        }
                        let count_out = match (count, cval) {
                            (ShiftCount::Imm(i), _) => ShiftCount::Imm(*i),
                            (ShiftCount::Cl, Value::Const(c)) => ShiftCount::Imm(c as u8),
                            (ShiftCount::Cl, _) => {
                                self.ensure_arch_gpr(cx, Gpr::Rcx)?;
                                ShiftCount::Cl
                            }
                        };
                        let (dd, fs) = match dst {
                            Operand::Mem(m) => {
                                let (mm, off) = self.subst_mem(cx, m)?;
                                (Operand::Mem(mm), off)
                            }
                            d => (*d, None),
                        };
                        self.emit_mem(
                            cx,
                            Inst::Shift {
                                op: *op,
                                w: *w,
                                dst: dd,
                                count: count_out,
                            },
                            fs,
                            fs,
                        );
                        let val = if fresh { Value::Unknown } else { res };
                        match dst {
                            Operand::Reg(d) => self.set_reg_value(&mut cx.w, *d, *w, val, true),
                            Operand::Mem(m) => {
                                let a = self.addr_value(&cx.w, m);
                                self.store_shadow(&mut cx.w, a, w.bytes(), val);
                            }
                            _ => {}
                        }
                        cx.w.flags = FlagsVal::Unknown;
                    }
                }
                Ok(Step::Continue(next))
            }

            Inst::Cqo { w } => {
                let rax = cx.w.reg(Gpr::Rax).val;
                match rax {
                    Value::Const(v) if !fresh => {
                        let sign = match w {
                            Width::W64 => ((v as i64) >> 63) as u64,
                            _ => (((v as u32 as i32) >> 31) as u32) as u64,
                        };
                        self.set_reg_value(&mut cx.w, Gpr::Rdx, *w, Value::Const(sign), false);
                        self.elided();
                    }
                    _ => {
                        self.ensure_arch_gpr(cx, Gpr::Rax)?;
                        self.emit(cx, Inst::Cqo { w: *w });
                        self.set_reg_value(&mut cx.w, Gpr::Rdx, *w, Value::Unknown, true);
                    }
                }
                Ok(Step::Continue(next))
            }

            Inst::Idiv { w, src } => {
                let hi = cx.w.reg(Gpr::Rdx).val;
                let lo = cx.w.reg(Gpr::Rax).val;
                let d = self.int_value(&cx.w, src, *w);
                match (hi, lo, d) {
                    (Value::Const(h), Value::Const(l), Value::Const(dv)) if !fresh => {
                        match brew_x86::alu::idiv(*w, h, l, dv) {
                            Some((q, r)) => {
                                self.set_reg_value(&mut cx.w, Gpr::Rax, *w, Value::Const(q), false);
                                self.set_reg_value(&mut cx.w, Gpr::Rdx, *w, Value::Const(r), false);
                                cx.w.flags = FlagsVal::Unknown; // idiv leaves flags undefined
                                self.elided();
                            }
                            None => {
                                return Err(RewriteError::TraceFault {
                                    addr,
                                    what: "division fault on known operands",
                                })
                            }
                        }
                    }
                    _ => {
                        self.ensure_arch_gpr(cx, Gpr::Rax)?;
                        self.ensure_arch_gpr(cx, Gpr::Rdx)?;
                        let (s, fl) = self.subst_int_src(cx, src, *w)?;
                        let s = no_imm(self, cx, s, src)?;
                        self.emit_mem(cx, Inst::Idiv { w: *w, src: s }, None, fl);
                        self.set_reg_value(&mut cx.w, Gpr::Rax, *w, Value::Unknown, true);
                        self.set_reg_value(&mut cx.w, Gpr::Rdx, *w, Value::Unknown, true);
                        cx.w.flags = FlagsVal::Unknown;
                    }
                }
                Ok(Step::Continue(next))
            }

            Inst::Setcc { cond, dst } => {
                let force = force_flags;
                match (cx.w.flags, force) {
                    (FlagsVal::Known(f), false) => {
                        let bit = f.cond(*cond) as u64;
                        match dst {
                            Operand::Reg(d) => {
                                if cx.w.reg(*d).val.is_known() {
                                    // Merge into the tracked constant.
                                    self.set_reg_value(
                                        &mut cx.w,
                                        *d,
                                        Width::W8,
                                        Value::Const(bit),
                                        false,
                                    );
                                    self.elided();
                                } else {
                                    // The register's other bytes are unknown
                                    // (architectural); write the known bit
                                    // with a byte move so the architectural
                                    // low byte matches — eliding would leave
                                    // stale flags-dependent garbage there.
                                    self.emit(
                                        cx,
                                        Inst::Mov {
                                            w: Width::W8,
                                            dst: *dst,
                                            src: Operand::Imm(bit as i64),
                                        },
                                    );
                                    self.set_reg_value(
                                        &mut cx.w,
                                        *d,
                                        Width::W8,
                                        Value::Const(bit),
                                        true,
                                    );
                                }
                            }
                            Operand::Mem(m) => {
                                let a = self.addr_value(&cx.w, m);
                                let (mm, fs) = self.subst_mem(cx, m)?;
                                // Emit as an explicit byte store of the result.
                                self.emit_mem(
                                    cx,
                                    Inst::Mov {
                                        w: Width::W8,
                                        dst: Operand::Mem(mm),
                                        src: Operand::Imm(bit as i64),
                                    },
                                    fs,
                                    None,
                                );
                                self.store_shadow(&mut cx.w, a, 1, Value::Const(bit));
                            }
                            _ => {
                                return Err(RewriteError::TraceFault {
                                    addr,
                                    what: "bad setcc",
                                })
                            }
                        }
                    }
                    _ => {
                        if matches!(cx.w.flags, FlagsVal::Stale) {
                            return Err(RewriteError::UntrustedFlags { addr });
                        }
                        match dst {
                            Operand::Reg(d) => {
                                self.ensure_arch_gpr(cx, *d)?;
                                self.emit(
                                    cx,
                                    Inst::Setcc {
                                        cond: *cond,
                                        dst: *dst,
                                    },
                                );
                                self.set_reg_value(&mut cx.w, *d, Width::W8, Value::Unknown, true);
                            }
                            Operand::Mem(m) => {
                                let a = self.addr_value(&cx.w, m);
                                let (mm, fs) = self.subst_mem(cx, m)?;
                                self.emit_mem(
                                    cx,
                                    Inst::Setcc {
                                        cond: *cond,
                                        dst: Operand::Mem(mm),
                                    },
                                    fs,
                                    None,
                                );
                                self.store_shadow(&mut cx.w, a, 1, Value::Unknown);
                            }
                            _ => {
                                return Err(RewriteError::TraceFault {
                                    addr,
                                    what: "bad setcc",
                                })
                            }
                        }
                    }
                }
                Ok(Step::Continue(next))
            }

            // ---- stack ----------------------------------------------------
            Inst::Push { src } => {
                let val = self.int_value(&cx.w, src, Width::W64);
                let new_off = cx.w.rsp_off() - 8;
                let out = match (src, val) {
                    (_, Value::Const(c)) if (c as i64) == (c as i64 as i32) as i64 => Inst::Push {
                        src: Operand::Imm(c as i64),
                    },
                    (Operand::Reg(r), _) => {
                        // The value lands in the tracked frame: a save,
                        // not an escape (store_shadow audits the target).
                        self.ensure_arch_gpr_for(cx, *r, false)?;
                        Inst::Push {
                            src: Operand::Reg(*r),
                        }
                    }
                    (Operand::Mem(m), _) => {
                        let (mm, fl) = self.subst_mem(cx, m)?;
                        let i = Inst::Push {
                            src: Operand::Mem(mm),
                        };
                        self.emit_mem(cx, i, Some(new_off), fl);
                        cx.w.set_reg(
                            Gpr::Rsp,
                            RegState {
                                val: Value::StackRel(new_off),
                                synced: true,
                            },
                        );
                        self.store_shadow(&mut cx.w, Value::StackRel(new_off), 8, val);
                        return Ok(Step::Continue(next));
                    }
                    (Operand::Imm(i), _) => Inst::Push {
                        src: Operand::Imm(*i),
                    },
                    (Operand::Xmm(_), _) => {
                        return Err(RewriteError::TraceFault {
                            addr,
                            what: "push xmm",
                        })
                    }
                };
                self.emit_mem(cx, out, Some(new_off), None);
                cx.w.set_reg(
                    Gpr::Rsp,
                    RegState {
                        val: Value::StackRel(new_off),
                        synced: true,
                    },
                );
                self.store_shadow(&mut cx.w, Value::StackRel(new_off), 8, val);
                Ok(Step::Continue(next))
            }

            Inst::Pop { dst } => {
                let off = cx.w.rsp_off();
                let slot = cx.w.frame_slot(off);
                let new_off = off + 8;
                match dst {
                    Operand::Reg(d) => {
                        if slot.is_known() {
                            // Elide the load: flag-neutral RSP adjustment.
                            self.emit(
                                cx,
                                Inst::Lea {
                                    dst: Gpr::Rsp,
                                    src: MemRef::base_disp(Gpr::Rsp, 8),
                                },
                            );
                            cx.w.set_reg(
                                Gpr::Rsp,
                                RegState {
                                    val: Value::StackRel(new_off),
                                    synced: true,
                                },
                            );
                            self.set_reg_value(&mut cx.w, *d, Width::W64, slot, false);
                        } else {
                            self.emit_mem(cx, Inst::Pop { dst: *dst }, None, Some(off));
                            cx.w.set_reg(
                                Gpr::Rsp,
                                RegState {
                                    val: Value::StackRel(new_off),
                                    synced: true,
                                },
                            );
                            if *d != Gpr::Rsp {
                                self.set_reg_value(&mut cx.w, *d, Width::W64, Value::Unknown, true);
                            } else {
                                return Err(RewriteError::TraceFault {
                                    addr,
                                    what: "pop rsp with unknown slot",
                                });
                            }
                        }
                    }
                    Operand::Mem(m) => {
                        let a = self.addr_value(&cx.w, m);
                        let (mm, fs) = self.subst_mem(cx, m)?;
                        self.emit_mem(
                            cx,
                            Inst::Pop {
                                dst: Operand::Mem(mm),
                            },
                            fs,
                            Some(off),
                        );
                        cx.w.set_reg(
                            Gpr::Rsp,
                            RegState {
                                val: Value::StackRel(new_off),
                                synced: true,
                            },
                        );
                        self.store_shadow(&mut cx.w, a, 8, slot);
                    }
                    _ => {
                        return Err(RewriteError::TraceFault {
                            addr,
                            what: "bad pop",
                        })
                    }
                }
                Ok(Step::Continue(next))
            }

            // ---- SSE ------------------------------------------------------
            Inst::MovSd { dst, src } => {
                self.exec_movsd(cx, dst, src, addr)?;
                Ok(Step::Continue(next))
            }
            Inst::MovUpd { dst, src } => {
                self.exec_movupd(cx, dst, src, addr)?;
                Ok(Step::Continue(next))
            }
            Inst::Sse { op, dst, src } => {
                self.exec_sse(cx, *op, *dst, src, fresh)?;
                Ok(Step::Continue(next))
            }
            Inst::Ucomisd { a, b } => {
                let va = cx.w.xmm(*a).lanes[0];
                let vb = self.sse64_value(&cx.w, b);
                let force = force_flags || fresh;
                match (va, vb) {
                    (Value::Const(x), Value::Const(y)) if !force => {
                        cx.w.flags =
                            FlagsVal::Known(ucomisd_flags(f64::from_bits(x), f64::from_bits(y)));
                        self.elided();
                    }
                    _ => {
                        self.ensure_arch_xmm(cx, *a)?;
                        let (bb, fl) = self.subst_sse_src(cx, b, false)?;
                        self.emit_mem(cx, Inst::Ucomisd { a: *a, b: bb }, None, fl);
                        cx.w.flags = FlagsVal::Unknown;
                    }
                }
                Ok(Step::Continue(next))
            }
            Inst::Cvtsi2sd { w, dst, src } => {
                let v = self.int_value(&cx.w, src, *w);
                match v {
                    Value::Const(c) if !fresh => {
                        let f = (w.sext(c) as i64) as f64;
                        let mut st = cx.w.xmm(*dst);
                        st.lanes[0] = Value::Const(f.to_bits());
                        st.synced = false;
                        cx.w.set_xmm(*dst, st);
                        self.elided();
                    }
                    _ => {
                        self.ensure_arch_xmm(cx, *dst)?; // lane1 preserved
                        let (s, fl) = self.subst_int_src(cx, src, *w)?;
                        let s = no_imm(self, cx, s, src)?;
                        self.emit_mem(
                            cx,
                            Inst::Cvtsi2sd {
                                w: *w,
                                dst: *dst,
                                src: s,
                            },
                            None,
                            fl,
                        );
                        let mut st = cx.w.xmm(*dst);
                        st.lanes[0] = Value::Unknown;
                        st.synced = true;
                        cx.w.set_xmm(*dst, st);
                    }
                }
                Ok(Step::Continue(next))
            }
            Inst::Cvttsd2si { w, dst, src } => {
                let v = self.sse64_value(&cx.w, src);
                match v {
                    Value::Const(bits) if !fresh => {
                        let f = f64::from_bits(bits);
                        let c = cvttsd2si(f, *w);
                        self.set_reg_value(&mut cx.w, *dst, *w, Value::Const(c), false);
                        self.elided();
                    }
                    _ => {
                        let (s, fl) = self.subst_sse_src(cx, src, false)?;
                        self.emit_mem(
                            cx,
                            Inst::Cvttsd2si {
                                w: *w,
                                dst: *dst,
                                src: s,
                            },
                            None,
                            fl,
                        );
                        self.set_reg_value(&mut cx.w, *dst, *w, Value::Unknown, true);
                    }
                }
                Ok(Step::Continue(next))
            }

            // ---- control flow ---------------------------------------------
            Inst::JmpRel { target } => self.goto(cx, *target, addr),
            Inst::JmpInd { src } => {
                let v = self.int_value(&cx.w, src, Width::W64);
                match v {
                    Value::Const(t) => self.goto(cx, t, addr),
                    _ => Err(RewriteError::IndirectUnknownJump { addr }),
                }
            }
            Inst::Jcc { cond, target } => match cx.w.flags {
                FlagsVal::Known(f) => {
                    let t = if f.cond(*cond) { *target } else { next };
                    self.elided();
                    self.goto(cx, t, addr)
                }
                FlagsVal::Stale => Err(RewriteError::UntrustedFlags { addr }),
                FlagsVal::Unknown => {
                    if !cx.wrote_flags {
                        cx.reads_flags_on_entry = true;
                    }
                    self.rec_decision(
                        "fork",
                        vec![
                            ("at".into(), format!("{addr:#x}")),
                            ("taken".into(), format!("{target:#x}")),
                            ("fall".into(), format!("{next:#x}")),
                        ],
                    );
                    let taken = self.enqueue(*target, cx.w.clone(), false)?;
                    let fall = self.enqueue(next, cx.w.clone(), false)?;
                    Ok(Step::End(Terminator::Jcc {
                        cond: *cond,
                        taken,
                        fall,
                    }))
                }
            },
            Inst::CallRel { target } => self.exec_call(cx, *target, next, addr),
            Inst::CallInd { src } => {
                let v = self.int_value(&cx.w, src, Width::W64);
                match v {
                    Value::Const(t) => self.exec_call(cx, t, next, addr),
                    _ => {
                        // Keep the indirect call: clobber per ABI.
                        self.materialize_call_args(cx)?;
                        let (s, fl) = self.subst_int_src(cx, src, Width::W64)?;
                        let s = no_imm(self, cx, s, src)?;
                        self.emit_mem(cx, Inst::CallInd { src: s }, None, fl);
                        self.clobber_after_call(cx);
                        self.stats.kept_calls += 1;
                        self.rec_decision(
                            "call-kept",
                            vec![("callee".into(), "indirect (unknown target)".into())],
                        );
                        Ok(Step::Continue(next))
                    }
                }
            }
            Inst::Ret => self.exec_ret(cx, addr),
        }
    }

    // ---- grouped handlers ---------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn exec_alu(
        &mut self,
        cx: &mut TraceCtx,
        op: AluOp,
        w: Width,
        dst: &Operand,
        src: &Operand,
        addr: u64,
        fresh: bool,
        force_flags: bool,
    ) -> Result<(), RewriteError> {
        let vd = self.int_value(&cx.w, dst, w);
        let vs = self.int_value(&cx.w, src, w);
        let (res, flags) = alu_value(op, w, vd, vs);
        let force = fresh || force_flags;

        match dst {
            Operand::Reg(d) if *d == Gpr::Rsp && op.writes_dst() => {
                // RSP arithmetic: always emitted in original (flag-accurate)
                // form with a substituted source.
                let Value::StackRel(_) = res else {
                    return Err(RewriteError::TraceFault {
                        addr,
                        what: "rsp arithmetic with non-constant operand",
                    });
                };
                let (s, fl) = self.subst_int_src(cx, src, w)?;
                self.emit_mem(
                    cx,
                    Inst::Alu {
                        op,
                        w,
                        dst: *dst,
                        src: s,
                    },
                    None,
                    fl,
                );
                cx.w.set_reg(
                    Gpr::Rsp,
                    RegState {
                        val: res,
                        synced: true,
                    },
                );
                cx.w.flags = FlagsVal::Unknown;
                Ok(())
            }
            Operand::Reg(d) => {
                let can_elide = if op.writes_dst() {
                    res.is_known()
                } else {
                    // cmp exists only for its flags; eliding it with
                    // uncomputable flags would leave stale runtime flags.
                    flags.known().is_some()
                };
                if can_elide && !force {
                    if op.writes_dst() {
                        self.set_reg_value(&mut cx.w, *d, w, res, false);
                    }
                    cx.w.flags = known_or_stale(flags);
                    self.elided();
                    return Ok(());
                }
                // Emit: destination register must be architectural for RMW.
                if op.writes_dst() {
                    self.ensure_arch_gpr(cx, *d)?;
                }
                let (mut s, fl) = self.subst_int_src(cx, src, w)?;
                if !op.writes_dst() {
                    // cmp: dst side must also be architectural if register.
                    self.ensure_arch_gpr(cx, *d)?;
                    // cmp reg, imm/reg/mem all fine.
                } else if let Operand::Imm(_) = s {
                    // fine: op reg, imm
                } else if let Operand::Mem(m) = &s {
                    self.maybe_hook(cx, m)?;
                }
                // Avoid imm-imm shapes (dst reg is fine).
                if let (Operand::Imm(_), false) = (&s, op.writes_dst()) {
                    // cmp reg, imm is fine too.
                    let _ = &mut s;
                }
                self.emit_mem(
                    cx,
                    Inst::Alu {
                        op,
                        w,
                        dst: *dst,
                        src: s,
                    },
                    None,
                    fl,
                );
                if op.writes_dst() {
                    let val = if fresh || !res.is_known() {
                        Value::Unknown
                    } else {
                        res
                    };
                    // Emitted op computes the true value from architectural
                    // inputs, so a known result is synced.
                    if matches!(val, Value::Unknown) {
                        self.set_reg_value(&mut cx.w, *d, w, Value::Unknown, true);
                    } else {
                        self.set_reg_value(&mut cx.w, *d, w, val, true);
                    }
                }
                cx.w.flags = if force { FlagsVal::Unknown } else { flags };
                Ok(())
            }
            Operand::Mem(m) => {
                let a = self.addr_value(&cx.w, m);
                if !op.writes_dst() {
                    // cmp [mem], src
                    if flags.known().is_some() && !force {
                        cx.w.flags = flags;
                        self.elided();
                        return Ok(());
                    }
                    let (mm, fl) = self.subst_mem(cx, m)?;
                    let (s, _) = self.subst_int_src(cx, src, w)?;
                    let s = match s {
                        Operand::Mem(_) => {
                            let Operand::Reg(r) = src else {
                                return Err(RewriteError::TraceFault {
                                    addr,
                                    what: "cmp with two memory operands",
                                });
                            };
                            self.ensure_arch_gpr(cx, *r)?;
                            Operand::Reg(*r)
                        }
                        s => s,
                    };
                    self.maybe_hook(cx, &mm)?;
                    self.emit_mem(
                        cx,
                        Inst::Alu {
                            op,
                            w,
                            dst: Operand::Mem(mm),
                            src: s,
                        },
                        None,
                        fl,
                    );
                    cx.w.flags = FlagsVal::Unknown;
                    return Ok(());
                }
                // Read-modify-write on memory: always emitted.
                let (mm, fs) = self.subst_mem(cx, m)?;
                let (s, _) = self.subst_int_src(cx, src, w)?;
                let s = match s {
                    Operand::Mem(_) => {
                        let Operand::Reg(r) = src else {
                            return Err(RewriteError::TraceFault {
                                addr,
                                what: "rmw with two memory operands",
                            });
                        };
                        self.ensure_arch_gpr(cx, *r)?;
                        Operand::Reg(*r)
                    }
                    s => s,
                };
                self.maybe_hook(cx, &mm)?;
                self.emit_mem(
                    cx,
                    Inst::Alu {
                        op,
                        w,
                        dst: Operand::Mem(mm),
                        src: s,
                    },
                    fs,
                    fs,
                );
                let stored = if fresh { Value::Unknown } else { res };
                self.store_shadow(&mut cx.w, a, w.bytes(), stored);
                cx.w.flags = if force { FlagsVal::Unknown } else { flags };
                Ok(())
            }
            _ => Err(RewriteError::TraceFault {
                addr,
                what: "bad alu dst",
            }),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_unary(
        &mut self,
        cx: &mut TraceCtx,
        op: UnOp,
        w: Width,
        dst: &Operand,
        addr: u64,
        fresh: bool,
        force_flags: bool,
    ) -> Result<(), RewriteError> {
        let v = self.int_value(&cx.w, dst, w);
        let (res, flags) = unop_value(op, w, v, cx.w.flags);
        let force = fresh || force_flags;
        match dst {
            Operand::Reg(d) if *d == Gpr::Rsp => {
                let Value::StackRel(_) = res else {
                    return Err(RewriteError::TraceFault {
                        addr,
                        what: "rsp unary",
                    });
                };
                self.emit(cx, Inst::Unary { op, w, dst: *dst });
                cx.w.set_reg(
                    Gpr::Rsp,
                    RegState {
                        val: res,
                        synced: true,
                    },
                );
                cx.w.flags = FlagsVal::Unknown;
                Ok(())
            }
            Operand::Reg(d) => {
                if res.is_known() && !force {
                    self.set_reg_value(&mut cx.w, *d, w, res, false);
                    cx.w.flags = if matches!(op, UnOp::Not) {
                        flags // `not` does not touch flags
                    } else {
                        known_or_stale(flags)
                    };
                    self.elided();
                } else {
                    self.ensure_arch_gpr(cx, *d)?;
                    self.emit(cx, Inst::Unary { op, w, dst: *dst });
                    let val = if fresh || !res.is_known() {
                        Value::Unknown
                    } else {
                        res
                    };
                    if matches!(val, Value::Unknown) {
                        self.set_reg_value(&mut cx.w, *d, w, Value::Unknown, true);
                    } else {
                        self.set_reg_value(&mut cx.w, *d, w, val, true);
                    }
                    cx.w.flags = if force { FlagsVal::Unknown } else { flags };
                }
                Ok(())
            }
            Operand::Mem(m) => {
                let a = self.addr_value(&cx.w, m);
                let (mm, fs) = self.subst_mem(cx, m)?;
                self.maybe_hook(cx, &mm)?;
                self.emit_mem(
                    cx,
                    Inst::Unary {
                        op,
                        w,
                        dst: Operand::Mem(mm),
                    },
                    fs,
                    fs,
                );
                let stored = if fresh { Value::Unknown } else { res };
                self.store_shadow(&mut cx.w, a, w.bytes(), stored);
                cx.w.flags = if force { FlagsVal::Unknown } else { flags };
                Ok(())
            }
            _ => Err(RewriteError::TraceFault {
                addr,
                what: "bad unary dst",
            }),
        }
    }

    fn exec_movsd(
        &mut self,
        cx: &mut TraceCtx,
        dst: &Operand,
        src: &Operand,
        addr: u64,
    ) -> Result<(), RewriteError> {
        match (dst, src) {
            (Operand::Xmm(d), Operand::Mem(m)) => {
                let a = self.addr_value(&cx.w, m);
                let v = self.load_known(&cx.w, a, 8);
                if v.is_known() {
                    cx.w.set_xmm(
                        *d,
                        XmmState {
                            lanes: [v, Value::Const(0)],
                            synced: false,
                        },
                    );
                    self.elided();
                } else {
                    let (mm, fl) = self.subst_mem(cx, m)?;
                    self.maybe_hook(cx, &mm)?;
                    self.emit_mem(
                        cx,
                        Inst::MovSd {
                            dst: *dst,
                            src: Operand::Mem(mm),
                        },
                        None,
                        fl,
                    );
                    cx.w.set_xmm(
                        *d,
                        XmmState {
                            lanes: [Value::Unknown, Value::Const(0)],
                            synced: true,
                        },
                    );
                }
                Ok(())
            }
            (Operand::Xmm(d), Operand::Xmm(s)) => {
                let sv = cx.w.xmm(*s).lanes[0];
                let dstate = cx.w.xmm(*d);
                if sv.is_known() {
                    cx.w.set_xmm(
                        *d,
                        XmmState {
                            lanes: [sv, dstate.lanes[1]],
                            synced: false,
                        },
                    );
                    self.elided();
                } else {
                    self.ensure_arch_xmm(cx, *d)?; // high lane preserved
                    self.emit(
                        cx,
                        Inst::MovSd {
                            dst: *dst,
                            src: *src,
                        },
                    );
                    let d1 = cx.w.xmm(*d).lanes[1];
                    cx.w.set_xmm(
                        *d,
                        XmmState {
                            lanes: [Value::Unknown, d1],
                            synced: true,
                        },
                    );
                }
                Ok(())
            }
            (Operand::Mem(m), Operand::Xmm(s)) => {
                let a = self.addr_value(&cx.w, m);
                let val = cx.w.xmm(*s).lanes[0];
                self.ensure_arch_xmm(cx, *s)?;
                let (mm, fs) = self.subst_mem(cx, m)?;
                self.maybe_hook(cx, &mm)?;
                self.emit_mem(
                    cx,
                    Inst::MovSd {
                        dst: Operand::Mem(mm),
                        src: *src,
                    },
                    fs,
                    None,
                );
                self.store_shadow(&mut cx.w, a, 8, val);
                Ok(())
            }
            _ => Err(RewriteError::TraceFault {
                addr,
                what: "bad movsd",
            }),
        }
    }

    fn exec_movupd(
        &mut self,
        cx: &mut TraceCtx,
        dst: &Operand,
        src: &Operand,
        addr: u64,
    ) -> Result<(), RewriteError> {
        match (dst, src) {
            (Operand::Xmm(d), _) => {
                let lanes = self.sse128_value(&cx.w, src);
                if lanes.iter().all(|l| l.is_known()) {
                    cx.w.set_xmm(
                        *d,
                        XmmState {
                            lanes,
                            synced: false,
                        },
                    );
                    self.elided();
                } else {
                    let (s, fl) = self.subst_sse_src(cx, src, true)?;
                    if let Operand::Mem(m) = &s {
                        self.maybe_hook(cx, m)?;
                    }
                    self.emit_mem(cx, Inst::MovUpd { dst: *dst, src: s }, None, fl);
                    cx.w.set_xmm(
                        *d,
                        XmmState {
                            lanes,
                            synced: true,
                        },
                    );
                }
                Ok(())
            }
            (Operand::Mem(m), Operand::Xmm(s)) => {
                let a = self.addr_value(&cx.w, m);
                let lanes = cx.w.xmm(*s).lanes;
                self.ensure_arch_xmm(cx, *s)?;
                let (mm, fs) = self.subst_mem(cx, m)?;
                self.maybe_hook(cx, &mm)?;
                self.emit_mem(
                    cx,
                    Inst::MovUpd {
                        dst: Operand::Mem(mm),
                        src: *src,
                    },
                    fs,
                    None,
                );
                self.store_shadow(&mut cx.w, a, 8, lanes[0]);
                let a_hi = match a {
                    Value::Const(x) => Value::Const(x + 8),
                    Value::StackRel(o) => Value::StackRel(o + 8),
                    Value::Unknown => Value::Unknown,
                };
                self.store_shadow(&mut cx.w, a_hi, 8, lanes[1]);
                Ok(())
            }
            _ => Err(RewriteError::TraceFault {
                addr,
                what: "bad movupd",
            }),
        }
    }

    fn exec_sse(
        &mut self,
        cx: &mut TraceCtx,
        op: SseOp,
        dst: Xmm,
        src: &Operand,
        fresh: bool,
    ) -> Result<(), RewriteError> {
        // xorpd with itself: canonical zeroing idiom.
        if op == SseOp::Xorpd {
            if let Operand::Xmm(s) = src {
                if *s == dst {
                    cx.w.set_xmm(
                        dst,
                        XmmState {
                            lanes: [Value::Const(0), Value::Const(0)],
                            synced: false,
                        },
                    );
                    self.elided();
                    return Ok(());
                }
            }
        }
        let dl = cx.w.xmm(dst).lanes;
        let packed = op.is_packed();
        let sl = if packed {
            self.sse128_value(&cx.w, src)
        } else {
            [self.sse64_value(&cx.w, src), Value::Unknown]
        };

        let computed: Option<[Value; 2]> = sse_compute(op, dl, sl);
        if let Some(lanes) = computed {
            if lanes.iter().all(|l| l.is_known()) && !fresh {
                cx.w.set_xmm(
                    dst,
                    XmmState {
                        lanes,
                        synced: false,
                    },
                );
                self.elided();
                return Ok(());
            }
        }
        // Emit.
        self.ensure_arch_xmm(cx, dst)?;
        let (s, fl) = self.subst_sse_src(cx, src, packed)?;
        if let Operand::Mem(m) = &s {
            self.maybe_hook(cx, m)?;
        }
        self.emit_mem(cx, Inst::Sse { op, dst, src: s }, None, fl);
        let lanes = match computed {
            Some(lanes) if !fresh => lanes,
            _ => {
                let mut l = [Value::Unknown, Value::Unknown];
                if !packed {
                    l[1] = cx.w.xmm(dst).lanes[1];
                }
                l
            }
        };
        cx.w.set_xmm(
            dst,
            XmmState {
                lanes,
                synced: true,
            },
        );
        Ok(())
    }

    // ---- calls and returns ----------------------------------------------

    fn exec_call(
        &mut self,
        cx: &mut TraceCtx,
        target: u64,
        next: u64,
        addr: u64,
    ) -> Result<Step, RewriteError> {
        let callee_opts = self.cfg.opts_for(target);
        if callee_opts.inline {
            if cx.w.inline_stack.len() >= 128 {
                return Err(RewriteError::TraceFault {
                    addr,
                    what: "inline depth limit (recursion?)",
                });
            }
            cx.w.inline_stack.push(InlineFrame {
                ret_addr: next,
                rsp_at_call: cx.w.rsp_off(),
                caller_fn: cx.w.cur_fn,
            });
            cx.w.cur_fn = target;
            self.stats.inlined_calls += 1;
            self.rec_decision(
                "inline",
                vec![
                    ("callee".into(), self.callee_label(target)),
                    ("depth".into(), cx.w.inline_stack.len().to_string()),
                ],
            );
            Ok(Step::Continue(target))
        } else {
            self.materialize_call_args(cx)?;
            self.emit(cx, Inst::CallRel { target });
            self.clobber_after_call(cx);
            self.stats.kept_calls += 1;
            self.rec_decision(
                "call-kept",
                vec![("callee".into(), self.callee_label(target))],
            );
            Ok(Step::Continue(next))
        }
    }

    /// Human-readable callee label for decision events: symbol if known.
    fn callee_label(&self, target: u64) -> String {
        self.img
            .symbol_at(target)
            .unwrap_or_else(|| format!("{target:#x}"))
    }

    /// §III.G: "Calls configured to not be inlined are kept, generating
    /// compensation code to make registers 'unknown' which are parameters
    /// according to the ABI" — i.e. materialize every known-but-unsynced
    /// argument register so the callee sees real values.
    fn materialize_call_args(&mut self, cx: &mut TraceCtx) -> Result<(), RewriteError> {
        for r in Gpr::SYSV_ARGS {
            self.ensure_arch_gpr(cx, r)?;
        }
        for x in Xmm::SYSV_ARGS {
            self.ensure_arch_xmm(cx, x)?;
        }
        Ok(())
    }

    /// §III.G: "we assume all caller-saved registers to be dead/unknown,
    /// while all callee-save registers keep their known state."
    fn clobber_after_call(&mut self, cx: &mut TraceCtx) {
        for r in Gpr::ALL {
            if !r.is_callee_saved() {
                cx.w.set_reg(r, RegState::UNKNOWN);
            }
        }
        for x in 0..16 {
            cx.w.xmm[x] = XmmState::UNKNOWN;
        }
        cx.w.flags = FlagsVal::Unknown;
        // The callee may store anywhere it legally can: poison tracked
        // global stores; its own frame lives below our RSP.
        for v in cx.w.gshadow.values_mut() {
            *v = Value::Unknown;
        }
        let rsp = cx.w.rsp_off();
        cx.w.invalidate_frame_below(rsp);
        if cx.w.frame_escaped {
            for v in cx.w.frame.values_mut() {
                *v = Value::Unknown;
            }
        }
    }

    fn exec_ret(&mut self, cx: &mut TraceCtx, addr: u64) -> Result<Step, RewriteError> {
        if let Some(frame) = cx.w.inline_stack.pop() {
            if cx.w.rsp_off() != frame.rsp_at_call {
                return Err(RewriteError::StackImbalance { addr });
            }
            cx.w.cur_fn = frame.caller_fn;
            self.elided();
            return Ok(Step::Continue(frame.ret_addr));
        }
        if cx.w.rsp_off() != 0 {
            return Err(RewriteError::StackImbalance { addr });
        }
        if let Some(h) = self.cfg.exit_hook {
            let func = self.entry_fn;
            self.inject_hook(cx, h, HookArg::Const(func))?;
        }
        // Materialize the ABI-visible state: return registers and
        // callee-saved registers (pop elision may have left them unsynced).
        match self.cfg.ret {
            crate::config::RetKind::Int => self.ensure_arch_gpr_for(cx, Gpr::Rax, false)?,
            crate::config::RetKind::F64 => self.ensure_arch_xmm(cx, Xmm::Xmm0)?,
            crate::config::RetKind::Void => {}
        }
        for r in Gpr::SYSV_CALLEE_SAVED {
            self.ensure_arch_gpr_for(cx, r, false)?;
        }
        self.emit(cx, Inst::Ret);
        Ok(Step::End(Terminator::Ret))
    }

    /// Unconditional transfer: backward jumps become block boundaries
    /// (enabling loop closure and the variant machinery); forward jumps are
    /// traced through.
    fn goto(&mut self, cx: &mut TraceCtx, target: u64, from: u64) -> Result<Step, RewriteError> {
        if target <= from {
            let bid = self.enqueue(target, cx.w.clone(), false)?;
            Ok(Step::End(Terminator::Jmp(bid)))
        } else {
            Ok(Step::Continue(target))
        }
    }
}

/// Can `c` be an immediate for a `w`-width integer instruction?
fn imm_for(w: Width, c: u64) -> Option<i64> {
    match w {
        Width::W64 => {
            let v = c as i64;
            if v == (v as i32) as i64 {
                Some(v)
            } else {
                None
            }
        }
        Width::W32 => Some((c as u32) as i32 as i64),
        Width::W8 => Some((c as u8) as i64),
    }
}

/// Replace an immediate operand with a materialized register when the
/// instruction form has no immediate encoding (movsxd, idiv, ...).
fn no_imm(
    t: &mut Tracer,
    cx: &mut TraceCtx,
    substituted: Operand,
    original: &Operand,
) -> Result<Operand, RewriteError> {
    match substituted {
        Operand::Imm(_) => {
            let Operand::Reg(r) = original else {
                return Err(RewriteError::TraceFault {
                    addr: 0,
                    what: "immediate in register-only position",
                });
            };
            t.ensure_arch_gpr(cx, *r)?;
            Ok(Operand::Reg(*r))
        }
        s => Ok(s),
    }
}

/// Elided flag-writers: computed flags stay known; uncomputable flags are
/// stale (the architectural flags no longer match the original program).
fn known_or_stale(f: FlagsVal) -> FlagsVal {
    match f {
        FlagsVal::Known(k) => FlagsVal::Known(k),
        _ => FlagsVal::Stale,
    }
}

fn sse_compute(op: SseOp, d: [Value; 2], s: [Value; 2]) -> Option<[Value; 2]> {
    fn f(op: SseOp, a: Value, b: Value) -> Value {
        let (Value::Const(x), Value::Const(y)) = (a, b) else {
            return Value::Unknown;
        };
        let (x, y) = (f64::from_bits(x), f64::from_bits(y));
        let r = match op {
            SseOp::Addsd | SseOp::Addpd => x + y,
            SseOp::Subsd | SseOp::Subpd => x - y,
            SseOp::Mulsd | SseOp::Mulpd => x * y,
            SseOp::Divsd | SseOp::Divpd => x / y,
            _ => return Value::Unknown,
        };
        Value::Const(r.to_bits())
    }
    match op {
        SseOp::Addsd | SseOp::Subsd | SseOp::Mulsd | SseOp::Divsd => {
            Some([f(op, d[0], s[0]), d[1]])
        }
        SseOp::Addpd | SseOp::Subpd | SseOp::Mulpd | SseOp::Divpd => {
            Some([f(op, d[0], s[0]), f(op, d[1], s[1])])
        }
        SseOp::Xorpd => match (d, s) {
            ([Value::Const(a0), Value::Const(a1)], [Value::Const(b0), Value::Const(b1)]) => {
                Some([Value::Const(a0 ^ b0), Value::Const(a1 ^ b1)])
            }
            _ => Some([Value::Unknown, Value::Unknown]),
        },
        SseOp::Unpcklpd => Some([d[0], s[0]]),
    }
}

/// `ucomisd` flag semantics (same logic the emulator applies).
fn ucomisd_flags(a: f64, b: f64) -> brew_x86::cond::Flags {
    let (zf, pf, cf) = if a.is_nan() || b.is_nan() {
        (true, true, true)
    } else if a == b {
        (true, false, false)
    } else if a < b {
        (false, false, true)
    } else {
        (false, false, false)
    };
    brew_x86::cond::Flags {
        cf,
        zf,
        sf: false,
        of: false,
        pf,
    }
}

/// Truncating conversion with ISA out-of-range semantics.
fn cvttsd2si(f: f64, w: Width) -> u64 {
    match w {
        Width::W64 => {
            if f.is_nan() || !(-9.223372036854776e18..9.223372036854776e18).contains(&f) {
                i64::MIN as u64
            } else {
                (f as i64) as u64
            }
        }
        _ => {
            if f.is_nan() || !(-2147483648.0..2147483648.0).contains(&f) {
                (i32::MIN as u32) as u64
            } else {
                ((f as i32) as u32) as u64
            }
        }
    }
}
