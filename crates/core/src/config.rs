//! Rewriter configuration — the Rust rendering of the paper's `brew_*` API.
//!
//! The C prototype configures the rewriter through `brew_initConf`,
//! `brew_setpar` (mark a parameter `BREW_KNOWN` / `BREW_PTR_TO_KNOWN`),
//! `brew_setmem` (declare a memory range immutable-and-known) and
//! per-function options (§III.C): inline-or-not, treat fresh values as
//! unknown, treat branches as unknown, and the variant threshold per
//! original block address.

use std::collections::HashMap;
use std::ops::Range;

/// How a parameter of the rewritten function is treated (cf. `brew_setpar`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParamSpec {
    /// Value varies at runtime (the default).
    #[default]
    Unknown,
    /// The value passed to [`crate::Rewriter::rewrite`] is a fixed constant
    /// for all future calls (`BREW_KNOWN`).
    Known,
    /// Like [`ParamSpec::Known`], and additionally the `len` bytes behind
    /// the pointer are immutable known data (`BREW_PTR_TO_KNOWN`). The
    /// paper infers the extent from types; we take it explicitly.
    PtrToKnown {
        /// Number of known bytes behind the pointer.
        len: u64,
    },
}

/// An argument value supplied to the trace (the emulated call of §III.B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Integer or pointer argument.
    Int(i64),
    /// Double argument.
    F64(f64),
}

/// Return-value class of the rewritten function, used to materialize the
/// return registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetKind {
    /// Returns an integer/pointer in RAX.
    #[default]
    Int,
    /// Returns a double in XMM0.
    F64,
    /// Returns nothing.
    Void,
}

/// Per-function tracing options, looked up by the function's entry address
/// (§III.C: "a rewriter configuration provides the options for functions
/// given their start address").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncOpts {
    /// Inline calls to this function (default). When `false`, calls are
    /// kept, with compensation code materializing argument registers.
    pub inline: bool,
    /// §III.C bullet 3 / §V.C brute force: every value created by an
    /// operation in this function becomes unknown (parameters untouched).
    /// Defeats unrolling and most specialization inside the function, but
    /// inlined callees still specialize.
    pub fresh_unknown: bool,
    /// §III.F: treat every conditional jump as unknown even when its
    /// condition is known. Flag-writing instructions are force-emitted so
    /// the emitted branches read real flags. Values stay known, so loops
    /// still unroll *by world variants* until [`FuncOpts::max_variants`]
    /// migration closes them — exactly the paper's controlled unrolling.
    pub branch_unknown: bool,
    /// Threshold of translated variants per original block address before
    /// world migration (§III.C bullet 4).
    pub max_variants: u32,
}

impl Default for FuncOpts {
    fn default() -> Self {
        FuncOpts {
            inline: true,
            fresh_unknown: false,
            branch_unknown: false,
            max_variants: 64,
        }
    }
}

/// The rewriting configuration (`rConf` in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteConfig {
    /// Parameter treatment by index (0-based).
    pub params: Vec<ParamSpec>,
    /// Return class of the function being rewritten.
    pub ret: RetKind,
    /// Extra known-and-immutable memory ranges (`brew_setmem`).
    pub known_mem: Vec<Range<u64>>,
    /// Per-function options; [`RewriteConfig::default_opts`] applies
    /// otherwise.
    pub func_opts: HashMap<u64, FuncOpts>,
    /// Options for functions without an explicit entry.
    pub default_opts: FuncOpts,
    /// Hard cap on traced instructions (runaway-unrolling guard).
    pub max_trace_insts: u64,
    /// Hard cap on generated basic blocks.
    pub max_blocks: usize,
    /// Hard cap on emitted code bytes ("there is a configuration for
    /// maximum size", §III.G).
    pub max_code_bytes: usize,
    /// Inject a call to this handler before every emitted memory access
    /// with an unknown address (§III.D: "injection of handler calls when
    /// specific operations such as memory accesses are detected"). The
    /// handler receives the effective address in RDI.
    pub mem_access_hook: Option<u64>,
    /// Inject a call to this handler at function entry (§III.D: "it is
    /// convenient to inject calls into own profiling functions e.g. at
    /// function begin or end"). The handler receives the original
    /// function's address in RDI.
    pub entry_hook: Option<u64>,
    /// Inject a call to this handler before every return of the rewritten
    /// function. The handler receives the original function's address in
    /// RDI.
    pub exit_hook: Option<u64>,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            params: Vec::new(),
            ret: RetKind::Int,
            known_mem: Vec::new(),
            func_opts: HashMap::new(),
            default_opts: FuncOpts::default(),
            max_trace_insts: 4_000_000,
            max_blocks: 40_000,
            max_code_bytes: 1 << 20,
            mem_access_hook: None,
            entry_hook: None,
            exit_hook: None,
        }
    }
}

impl RewriteConfig {
    /// Fresh configuration (`brew_initConf`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark parameter `idx` (0-based) with a treatment (`brew_setpar`).
    pub fn set_param(&mut self, idx: usize, spec: ParamSpec) -> &mut Self {
        if self.params.len() <= idx {
            self.params.resize(idx + 1, ParamSpec::Unknown);
        }
        self.params[idx] = spec;
        self
    }

    /// Declare `range` as known immutable memory (`brew_setmem`).
    pub fn set_mem_known(&mut self, range: Range<u64>) -> &mut Self {
        self.known_mem.push(range);
        self
    }

    /// Set the return class.
    pub fn set_ret(&mut self, ret: RetKind) -> &mut Self {
        self.ret = ret;
        self
    }

    /// Access (creating on demand) the options for the function at `addr`.
    pub fn func(&mut self, addr: u64) -> &mut FuncOpts {
        let d = self.default_opts;
        self.func_opts.entry(addr).or_insert(d)
    }

    /// The options in effect for the function at `addr`.
    pub fn opts_for(&self, addr: u64) -> FuncOpts {
        self.func_opts
            .get(&addr)
            .copied()
            .unwrap_or(self.default_opts)
    }

    /// Is `addr` inside declared known memory (including `PTR_TO_KNOWN`
    /// ranges registered during [`crate::Rewriter::rewrite`])?
    pub fn addr_known(&self, addr: u64, size: u64) -> bool {
        self.known_mem
            .iter()
            .any(|r| addr >= r.start && addr.saturating_add(size) <= r.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_vector_grows() {
        let mut c = RewriteConfig::new();
        c.set_param(2, ParamSpec::Known);
        assert_eq!(c.params.len(), 3);
        assert_eq!(c.params[0], ParamSpec::Unknown);
        assert_eq!(c.params[2], ParamSpec::Known);
    }

    #[test]
    fn known_mem_ranges() {
        let mut c = RewriteConfig::new();
        c.set_mem_known(0x1000..0x1100);
        assert!(c.addr_known(0x1000, 8));
        assert!(c.addr_known(0x10F8, 8));
        assert!(!c.addr_known(0x10F9, 8));
        assert!(!c.addr_known(0xFFF, 2));
    }

    #[test]
    fn per_function_opts() {
        let mut c = RewriteConfig::new();
        c.func(0x400000).inline = false;
        assert!(!c.opts_for(0x400000).inline);
        assert!(c.opts_for(0x500000).inline);
    }
}
