//! `SpecializationManager` — memoized, budgeted, observable rewriting.
//!
//! The paper's cost argument (§V, A6) is that a rewrite is *paid once and
//! amortized*; its dispatch sketch (§III.D) is that many specialized
//! variants coexist and are selected at call time. The bare
//! [`crate::Rewriter`] supports neither: every call re-traces from
//! scratch, and a guard stub dispatches between exactly two targets. The
//! manager adds the missing layer:
//!
//! - **Variant cache** — rewrites are memoized under
//!   `(function, request fingerprint)` (see
//!   [`SpecRequest::fingerprint`]); a repeated request returns the cached
//!   [`Variant`] without tracing a single guest instruction.
//! - **Cost-aware LRU eviction** — the cache is bounded by a JIT-segment
//!   byte budget. When over budget, the entry with the highest
//!   `staleness x code bytes / (hits + 1)` score is dropped first: old,
//!   big, cold code goes; hot or cheap variants stay. (The JIT segment is
//!   a bump allocator, so evicted bytes are not reused — eviction bounds
//!   the *cache's resident set*, and re-specialization allocates fresh
//!   space, exactly like discarding a JIT code cache generation.)
//! - **Dispatch stubs** — [`build_dispatcher`](SpecializationManager::build_dispatcher)
//!   chains every cached, guardable variant of a function into one
//!   [`crate::guard::make_guard_chain`] stub falling through to the
//!   original.
//! - **Observability** — cache hits/misses/evictions and the per-phase
//!   rewrite timings ([`RewriteStats::trace_ns`] et al.) are aggregated in
//!   [`CacheStats`] and streamed to a pluggable [`EventSink`].

use crate::capture::RewriteStats;
use crate::error::RewriteError;
use crate::guard::{self, GuardCase};
use crate::request::SpecRequest;
use crate::Rewriter;
use brew_image::{layout, Image};
use std::collections::HashMap;
use std::rc::Rc;

/// Key of the variant cache: which function, specialized how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Entry address of the original function.
    pub func: u64,
    /// [`SpecRequest::fingerprint`] of the request.
    pub fingerprint: u64,
}

/// A cached specialization: the rewrite result plus what the dispatcher
/// needs to guard it.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Entry address of the original function.
    pub func: u64,
    /// Entry address of the specialized code (drop-in replacement).
    pub entry: u64,
    /// Emitted code size in bytes.
    pub code_len: usize,
    /// Statistics of the producing rewrite.
    pub stats: RewriteStats,
    /// Dispatch conditions `(integer parameter index, expected value)`, or
    /// `None` when the variant can't be guarded by register compares.
    pub guards: Option<Vec<(usize, i64)>>,
}

/// Aggregated manager counters; cheap to copy, comparable in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to rewrite.
    pub misses: u64,
    /// Variants evicted under byte-budget pressure.
    pub evictions: u64,
    /// Code bytes currently resident in the cache.
    pub resident_bytes: usize,
    /// Cumulative guest instructions traced by actual rewrites. Stays
    /// flat across cache hits — the "no re-trace" proof.
    pub traced_total: u64,
    /// Cumulative wall-clock nanoseconds spent inside actual rewrites.
    pub rewrite_ns_total: u64,
    /// Dispatch stubs built.
    pub dispatchers_built: u64,
}

/// One manager event, streamed to the [`EventSink`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A request was answered from the cache.
    Hit {
        /// Original function.
        func: u64,
        /// Cached specialized entry.
        entry: u64,
    },
    /// A request missed; a rewrite follows (or fails).
    Miss {
        /// Original function.
        func: u64,
    },
    /// A rewrite completed and its variant was inserted.
    Rewritten {
        /// Original function.
        func: u64,
        /// New specialized entry.
        entry: u64,
        /// Emitted code size in bytes.
        code_len: usize,
        /// Per-phase timings and counters of the rewrite.
        stats: RewriteStats,
    },
    /// A variant was evicted under byte-budget pressure.
    Evicted {
        /// Original function.
        func: u64,
        /// Evicted specialized entry.
        entry: u64,
        /// Its code size in bytes.
        code_len: usize,
    },
    /// A dispatch stub over cached variants was emitted.
    DispatcherBuilt {
        /// Original function (the fall-through target).
        func: u64,
        /// Stub entry address.
        entry: u64,
        /// Number of variants chained.
        variants: usize,
    },
}

/// Receiver for manager [`Event`]s — plug in a logger, a metrics counter,
/// or the `tables` amortization report.
pub trait EventSink {
    /// Called once per event, in order.
    fn event(&mut self, ev: &Event);
}

/// Buffering sink collecting every event; handy in tests and reports.
#[derive(Debug, Default)]
pub struct RecordingSink {
    /// Everything received so far, in order.
    pub events: Vec<Event>,
}

impl EventSink for RecordingSink {
    fn event(&mut self, ev: &Event) {
        self.events.push(ev.clone());
    }
}

struct CacheEntry {
    variant: Rc<Variant>,
    key: CacheKey,
    last_used: u64,
    hits: u64,
}

impl CacheEntry {
    /// Eviction score at `now`: bigger means more evictable. Stale, large,
    /// rarely-hit variants score high; the just-used entry scores 0.
    fn score(&self, now: u64) -> u128 {
        let staleness = now.saturating_sub(self.last_used) as u128;
        staleness * self.variant.code_len as u128 / (self.hits as u128 + 1)
    }
}

/// The memoizing specialization layer over [`Rewriter`]. See the module
/// docs for the design.
pub struct SpecializationManager {
    entries: HashMap<CacheKey, CacheEntry>,
    budget_bytes: usize,
    tick: u64,
    stats: CacheStats,
    sink: Option<Box<dyn EventSink>>,
}

impl Default for SpecializationManager {
    fn default() -> Self {
        Self::new()
    }
}

impl SpecializationManager {
    /// Manager with the default budget: a quarter of the JIT segment.
    pub fn new() -> Self {
        Self::with_budget((layout::JIT_SIZE / 4) as usize)
    }

    /// Manager bounded by `budget_bytes` of cached code.
    pub fn with_budget(budget_bytes: usize) -> Self {
        SpecializationManager {
            entries: HashMap::new(),
            budget_bytes,
            tick: 0,
            stats: CacheStats::default(),
            sink: None,
        }
    }

    /// Attach an event sink (replacing any previous one).
    pub fn set_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Detach and return the current sink.
    pub fn take_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }

    /// Aggregated counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached variants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every cached variant (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats.resident_bytes = 0;
    }

    fn emit(&mut self, ev: Event) {
        if let Some(sink) = self.sink.as_mut() {
            sink.event(&ev);
        }
    }

    /// The memoized entry point: return the cached variant for
    /// `(func, req)` or rewrite, insert and return it. A cache hit costs a
    /// hash lookup — no decoding, tracing, passes or encoding.
    pub fn get_or_rewrite(
        &mut self,
        img: &mut Image,
        func: u64,
        req: &SpecRequest,
    ) -> Result<Rc<Variant>, RewriteError> {
        self.tick += 1;
        let key = CacheKey {
            func,
            fingerprint: req.fingerprint(),
        };
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_used = self.tick;
            e.hits += 1;
            self.stats.hits += 1;
            let (entry, variant) = (e.variant.entry, Rc::clone(&e.variant));
            self.emit(Event::Hit { func, entry });
            return Ok(variant);
        }

        self.stats.misses += 1;
        self.emit(Event::Miss { func });
        let res = Rewriter::new(img).rewrite(func, req)?;
        self.stats.traced_total += res.stats.traced;
        self.stats.rewrite_ns_total += res.stats.total_ns();
        self.emit(Event::Rewritten {
            func,
            entry: res.entry,
            code_len: res.code_len,
            stats: res.stats,
        });

        let variant = Rc::new(Variant {
            func,
            entry: res.entry,
            code_len: res.code_len,
            stats: res.stats,
            guards: req.guard_conditions(),
        });
        self.entries.insert(
            key,
            CacheEntry {
                variant: Rc::clone(&variant),
                key,
                last_used: self.tick,
                hits: 0,
            },
        );
        self.stats.resident_bytes += res.code_len;
        self.evict_to_budget(key);
        Ok(variant)
    }

    /// [`get_or_rewrite`](Self::get_or_rewrite) addressing the function by
    /// its image symbol.
    pub fn get_or_rewrite_named(
        &mut self,
        img: &mut Image,
        name: &str,
        req: &SpecRequest,
    ) -> Result<Rc<Variant>, RewriteError> {
        let func = img
            .lookup(name)
            .ok_or_else(|| RewriteError::BadConfig(format!("unknown symbol `{name}`")))?;
        self.get_or_rewrite(img, func, req)
    }

    /// Evict highest-score entries until the budget holds. `keep` (the
    /// entry just inserted) is never evicted: a single oversized variant
    /// may transiently exceed the budget rather than thrash.
    fn evict_to_budget(&mut self, keep: CacheKey) {
        while self.stats.resident_bytes > self.budget_bytes && self.entries.len() > 1 {
            let now = self.tick;
            let victim = self
                .entries
                .values()
                .filter(|e| e.key != keep)
                .max_by_key(|e| (e.score(now), std::cmp::Reverse(e.key.fingerprint)))
                .map(|e| e.key);
            let Some(victim) = victim else { break };
            let e = self
                .entries
                .remove(&victim)
                .expect("victim key just observed");
            self.stats.resident_bytes -= e.variant.code_len;
            self.stats.evictions += 1;
            self.emit(Event::Evicted {
                func: e.variant.func,
                entry: e.variant.entry,
                code_len: e.variant.code_len,
            });
        }
    }

    /// Cached variants of `func`, hottest (most hits, then most recent)
    /// first — the order the dispatcher tests them in.
    pub fn variants_of(&self, func: u64) -> Vec<Rc<Variant>> {
        let mut entries: Vec<&CacheEntry> = self
            .entries
            .values()
            .filter(|e| e.variant.func == func)
            .collect();
        entries.sort_by(|a, b| {
            (b.hits, b.last_used, a.key.fingerprint).cmp(&(a.hits, a.last_used, b.key.fingerprint))
        });
        entries.iter().map(|e| Rc::clone(&e.variant)).collect()
    }

    /// Emit a guarded dispatch stub over every cached *guardable* variant
    /// of `func` (§III.D, generalized to N variants and multi-parameter
    /// conjunctions). The stub tail-jumps to the first variant whose
    /// guarded parameters all match and falls through to `original`
    /// otherwise — callers use it as a drop-in replacement. Variants whose
    /// known parameters can't be register-compared (known doubles) are
    /// skipped; with no eligible variant the stub degenerates to a
    /// trampoline onto the original.
    pub fn build_dispatcher(
        &mut self,
        img: &mut Image,
        func: u64,
        original: u64,
    ) -> Result<u64, RewriteError> {
        let cases: Vec<GuardCase> = self
            .variants_of(func)
            .iter()
            .filter_map(|v| {
                v.guards.as_ref().map(|g| GuardCase {
                    conds: g.clone(),
                    target: v.entry,
                })
            })
            .collect();
        let entry = guard::make_guard_chain(img, &cases, original)?;
        self.stats.dispatchers_built += 1;
        self.emit(Event::DispatcherBuilt {
            func,
            entry,
            variants: cases.len(),
        });
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_variant(func: u64, entry: u64, code_len: usize) -> CacheEntry {
        CacheEntry {
            variant: Rc::new(Variant {
                func,
                entry,
                code_len,
                stats: RewriteStats::default(),
                guards: None,
            }),
            key: CacheKey {
                func,
                fingerprint: entry,
            },
            last_used: 0,
            hits: 0,
        }
    }

    #[test]
    fn score_prefers_stale_large_cold() {
        let mut hot = dummy_variant(1, 10, 100);
        hot.last_used = 9;
        hot.hits = 9;
        let mut cold = dummy_variant(1, 20, 100);
        cold.last_used = 1;
        cold.hits = 0;
        assert!(cold.score(10) > hot.score(10));

        let small = dummy_variant(1, 30, 10);
        let big = dummy_variant(1, 40, 10_000);
        assert!(big.score(5) > small.score(5));
    }

    #[test]
    fn variants_of_orders_hot_first() {
        let mut m = SpecializationManager::new();
        for (entry, hits) in [(100u64, 1u64), (200, 5), (300, 3)] {
            let mut e = dummy_variant(7, entry, 16);
            e.hits = hits;
            m.entries.insert(e.key, e);
        }
        let order: Vec<u64> = m.variants_of(7).iter().map(|v| v.entry).collect();
        assert_eq!(order, vec![200, 300, 100]);
        assert!(m.variants_of(8).is_empty());
    }
}
