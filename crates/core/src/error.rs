//! Rewrite failure modes.
//!
//! §III.G of the paper: *"At all times, it is possible that we reach a
//! situation that cannot be handled. [...] This will result in a failure of
//! the rewriting process, but it is not catastrophic. It simply means that
//! the user of the rewriter API has to use the original version of the
//! function."* Every variant here is a recoverable `Err`, never a panic.

use brew_x86::decode::DecodeError;
use brew_x86::encode::EncodeError;
use std::fmt;

/// Why a rewrite failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteError {
    /// An instruction could not be decoded during tracing.
    Undecodable {
        /// Guest address of the instruction.
        addr: u64,
        /// Decoder diagnosis.
        err: DecodeError,
    },
    /// An indirect jump whose target is not known at rewrite time
    /// (explicitly future work in the paper, §III.F).
    IndirectUnknownJump {
        /// Guest address of the jump.
        addr: u64,
    },
    /// Tracing executed a `ud2` or divided by a known zero.
    TraceFault {
        /// Guest address of the faulting instruction.
        addr: u64,
        /// Description.
        what: &'static str,
    },
    /// Reading guest code or known memory faulted.
    BadAddress {
        /// The address that could not be read.
        addr: u64,
    },
    /// The traced instruction budget was exhausted (runaway unrolling).
    TraceBudget,
    /// Too many basic blocks were generated.
    BlockBudget,
    /// Variant migration could not close a loop soundly: a migrated-to
    /// block reads branch flags before setting them.
    UntrustedFlags {
        /// Guest address of the offending block.
        addr: u64,
    },
    /// Stack imbalance: `ret` with a stack depth that does not match the
    /// activation (corrupt or unsupported code shape).
    StackImbalance {
        /// Guest address of the `ret`.
        addr: u64,
    },
    /// The rewritten code did not fit the configured/available JIT space.
    OutOfCodeSpace,
    /// An emitted instruction could not be encoded.
    Unencodable(EncodeError),
    /// A configuration error (e.g. a known parameter index out of range).
    BadConfig(String),
    /// The rewrite pipeline panicked; the panic was contained at the
    /// manager boundary and converted into this error so one pathological
    /// function cannot kill a worker pool or wedge followers on the
    /// in-flight table. The payload is the panic message.
    Internal(String),
    /// A publish gate (static verification) rejected the finished variant.
    /// The variant is never published: the manager treats this like any
    /// other failed rewrite, so dispatch falls back to the original code
    /// and the failure is negatively cached.
    VerifyRejected {
        /// Number of error-severity findings the verifier reported.
        findings: usize,
        /// The first finding, rendered for operators.
        first: String,
    },
    /// `run_deferred`/`deferred_scope` was entered while another deferred
    /// scope on the same manager is still open — nesting scopes would
    /// let the inner scope's drop close the queue under the outer one,
    /// silently dropping its jobs.
    DeferredScopeActive,
    /// The previous deferred scope was closed by an unwind (a panic
    /// escaped the scope closure) and discarded queued jobs. Returned
    /// once, by the next `run_deferred`, so the caller learns work was
    /// lost instead of the jobs vanishing silently; the scope after that
    /// starts clean.
    DeferredScopeUnwound {
        /// Jobs discarded when the unwinding scope drained the queue.
        lost: usize,
    },
    /// A persisted variant failed a structural load check (placement
    /// conflict, fingerprint mismatch, stale snapshot) before it ever
    /// reached the publish gate. Never published; negatively cached like
    /// any other failed rewrite.
    PersistRejected {
        /// What the load check found.
        what: String,
    },
    /// The finished variant's code alone exceeds the manager's global byte
    /// budget: no amount of eviction could make it resident. Refused at
    /// publish (dispatch falls back to the original code) and negatively
    /// cached so retries are answered without re-tracing.
    OverBudget {
        /// Emitted code size of the refused variant.
        code_len: usize,
        /// The manager's global byte budget.
        budget: usize,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Undecodable { addr, err } => {
                write!(f, "undecodable instruction at {addr:#x}: {err}")
            }
            RewriteError::IndirectUnknownJump { addr } => {
                write!(f, "indirect jump with unknown target at {addr:#x}")
            }
            RewriteError::TraceFault { addr, what } => {
                write!(f, "trace fault at {addr:#x}: {what}")
            }
            RewriteError::BadAddress { addr } => write!(f, "unreadable address {addr:#x}"),
            RewriteError::TraceBudget => write!(f, "trace instruction budget exhausted"),
            RewriteError::BlockBudget => write!(f, "basic-block budget exhausted"),
            RewriteError::UntrustedFlags { addr } => {
                write!(f, "block at {addr:#x} reads flags across a world migration")
            }
            RewriteError::StackImbalance { addr } => {
                write!(f, "stack imbalance at ret {addr:#x}")
            }
            RewriteError::OutOfCodeSpace => write!(f, "out of JIT code space"),
            RewriteError::Unencodable(e) => write!(f, "cannot encode rewritten instruction: {e}"),
            RewriteError::BadConfig(s) => write!(f, "bad rewriter configuration: {s}"),
            RewriteError::Internal(s) => write!(f, "internal rewriter panic: {s}"),
            RewriteError::VerifyRejected { findings, first } => {
                write!(
                    f,
                    "static verification rejected variant ({findings} findings; first: {first})"
                )
            }
            RewriteError::DeferredScopeActive => {
                write!(f, "a deferred scope is already open on this manager")
            }
            RewriteError::DeferredScopeUnwound { lost } => {
                write!(
                    f,
                    "previous deferred scope unwound and discarded {lost} queued job(s)"
                )
            }
            RewriteError::PersistRejected { what } => {
                write!(f, "persisted variant rejected on load: {what}")
            }
            RewriteError::OverBudget { code_len, budget } => {
                write!(
                    f,
                    "variant code ({code_len} bytes) exceeds the global budget ({budget} bytes)"
                )
            }
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<EncodeError> for RewriteError {
    fn from(e: EncodeError) -> Self {
        RewriteError::Unencodable(e)
    }
}
