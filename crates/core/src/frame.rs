//! Frame compression: remove dead push/pop pairs left over from inlining.
//!
//! §VIII of the paper: *"As next step, we will implement register renaming
//! for improved inlining of small functions and deep call chains."* Full
//! renaming needs a register allocator; this pass captures the dominant
//! payoff with a structural argument instead: after inlining and
//! specialization, a callee's `push rbp … pop rbp` often brackets code that
//! never touches `rbp` or the saved slot — the pair is then a no-op except
//! for shifting RSP, so it can be deleted outright once every intervening
//! RSP-relative displacement is re-based by 8.
//!
//! A pair `push rX … close` is removable when, between the two (within one
//! captured block):
//! * no instruction reads or writes `rX` (for `pop rX` closes) — the
//!   register provably holds the pushed value already;
//! * no instruction addresses the saved slot through RSP;
//! * no call or indirect jump occurs (a callee may clobber `rX` and must
//!   see a well-formed stack);
//! * RSP is only moved by tracked amounts (push/pop/`sub`/`add`/`lea`
//!   with constant offsets), and the close happens at the slot's depth.
//!
//! The close is either `pop rX` (restores a value that is still in `rX`)
//! or the `lea rsp, [rsp+8]` left by an elided pop (the pushed value was
//! known; the slot is dead).
//!
//! Two rewrite strengths apply:
//! * if nothing allocates stack *deeper* than the slot in between, the
//!   pair is deleted outright and intervening RSP displacements shrink
//!   by 8;
//! * otherwise deletion would push deeper frame slots below RSP (where
//!   later pushes clobber them), so the pair is instead converted to
//!   flag-neutral `lea rsp, ±8` bumps — the layout stays, the dead store
//!   and reload go away, and the peephole merges the bumps into
//!   neighbouring adjustments.

use crate::capture::{CapturedBlock, CapturedInst};
use brew_x86::prelude::*;

/// Run frame compression to a fixpoint; returns removed instruction count.
pub fn compress_frames(blocks: &mut [CapturedBlock]) -> u64 {
    let mut removed = 0;
    for b in blocks.iter_mut() {
        loop {
            match compress_one(b) {
                0 => break,
                n => removed += n,
            }
        }
    }
    removed
}

/// How an instruction moves RSP, if trackably.
fn rsp_delta(inst: &Inst) -> Option<i64> {
    match inst {
        Inst::Push { .. } => Some(-8),
        Inst::Pop { .. } => Some(8),
        Inst::Alu {
            op: AluOp::Sub,
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rsp),
            src: Operand::Imm(k),
        } => Some(-k),
        Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            dst: Operand::Reg(Gpr::Rsp),
            src: Operand::Imm(k),
        } => Some(*k),
        Inst::Lea {
            dst: Gpr::Rsp,
            src:
                MemRef {
                    base: Some(Gpr::Rsp),
                    index: None,
                    disp,
                },
        } => Some(*disp as i64),
        _ => {
            let mut writes_rsp = false;
            defuse::for_each_write(inst, &mut |l| {
                if l == defuse::Loc::Gpr(Gpr::Rsp) {
                    writes_rsp = true;
                }
            });
            if writes_rsp {
                None // untracked RSP modification
            } else {
                Some(0)
            }
        }
    }
}

/// The RSP-relative byte span an instruction's memory operands touch at the
/// current depth, or `None` if it has no RSP-based operand.
fn rsp_operand_span(inst: &Inst, cur: i64) -> Option<(i64, i64)> {
    let span = |m: &MemRef| -> Option<(i64, i64)> {
        if m.base == Some(Gpr::Rsp) {
            let width = if matches!(inst, Inst::MovUpd { .. }) {
                16
            } else {
                8
            };
            if m.index.is_some() {
                // Dynamic offset: could touch anything.
                return Some((i64::MIN / 2, i64::MAX / 2));
            }
            Some((cur + m.disp as i64, cur + m.disp as i64 + width))
        } else {
            None
        }
    };
    let mut acc: Option<(i64, i64)> = None;
    let mut merge = |s: Option<(i64, i64)>| {
        if let Some((a, b)) = s {
            acc = Some(match acc {
                None => (a, b),
                Some((x, y)) => (x.min(a), y.max(b)),
            });
        }
    };
    if let Some(m) = inst.mem_load() {
        merge(span(&m));
    }
    if let Some(m) = inst.mem_store() {
        merge(span(&m));
    }
    // lea with an rsp base *captures* a frame address (materialized frame
    // pointer) — unless it targets RSP itself, which is plain stack-pointer
    // arithmetic handled by the depth tracking.
    if let Inst::Lea { dst, src } = inst {
        if src.base == Some(Gpr::Rsp) && *dst != Gpr::Rsp {
            merge(Some((i64::MIN / 2, i64::MAX / 2)));
        }
    }
    acc
}

/// Try to rewrite one pair in `b`; returns the number of instructions
/// removed or simplified (0 when no pair qualifies).
fn compress_one(b: &mut CapturedBlock) -> u64 {
    // Innermost pairs first: deleting them un-deepens enclosing pairs.
    'outer: for i in (0..b.insts.len()).rev() {
        // Pushes of registers pair with pop/lea closes; pushes of
        // immediates have no register to restore, so only dead-slot (lea)
        // closes apply.
        let rx = match b.insts[i].inst {
            Inst::Push {
                src: Operand::Reg(r),
            } => Some(r),
            Inst::Push {
                src: Operand::Imm(_),
            } => None,
            _ => continue,
        };
        // Depth bookkeeping: cur = RSP offset relative to block entry.
        let mut cur: i64 = 0;
        for ci in &b.insts[..i] {
            match rsp_delta(&ci.inst) {
                Some(d) => cur += d,
                None => continue 'outer,
            }
        }
        let slot = cur - 8; // the pushed slot's offset
        let mut depth = slot;
        let mut went_deeper = false;
        let mut touched_rx = false;

        // Scan forward for the close.
        let mut j = i + 1;
        while j < b.insts.len() {
            let inst = &b.insts[j].inst.clone();
            // Candidate closes.
            match inst {
                // pop rX at the slot depth: full restore close; requires
                // the register untouched (the restore becomes a no-op).
                Inst::Pop {
                    dst: Operand::Reg(ry),
                } if depth == slot && Some(*ry) == rx => {
                    if touched_rx {
                        continue 'outer;
                    }
                    return try_rewrite(b, i, j, slot, went_deeper);
                }
                // The `lea rsp, [rsp+K]` left by elided pops / merged
                // epilogues. K == 8 at slot depth: exact dead-slot close.
                // A larger K that releases *through* the slot is a merged
                // multi-frame epilogue: the hole is dropped with it, so
                // the push can shrink to a bump (conversion only).
                Inst::Lea {
                    dst: Gpr::Rsp,
                    src:
                        MemRef {
                            base: Some(Gpr::Rsp),
                            index: None,
                            disp,
                        },
                } if *disp > 0 => {
                    let k = *disp as i64;
                    if depth == slot && k == 8 {
                        return try_rewrite(b, i, j, slot, went_deeper);
                    }
                    if depth <= slot && depth + k > slot {
                        // Crossing release: convert the push to a bump.
                        return convert_push(b, i);
                    }
                }
                _ => {}
            }
            // Disqualifiers.
            if matches!(
                inst,
                Inst::CallRel { .. } | Inst::CallInd { .. } | Inst::JmpInd { .. }
            ) {
                continue 'outer;
            }
            if let Some(rx) = rx {
                defuse::for_each_read(inst, &mut |l| {
                    if l == defuse::Loc::Gpr(rx) {
                        touched_rx = true;
                    }
                });
                defuse::for_each_write(inst, &mut |l| {
                    if l == defuse::Loc::Gpr(rx) {
                        touched_rx = true;
                    }
                });
            }
            if let Some((lo, hi)) = rsp_operand_span(inst, depth) {
                if lo < slot + 8 && hi > slot {
                    continue 'outer; // touches the saved slot
                }
            }
            match rsp_delta(inst) {
                Some(d) => depth += d,
                None => continue 'outer,
            }
            if depth < slot {
                went_deeper = true;
            }
            if depth > slot {
                // Stack released past the slot without a recognized close.
                continue 'outer;
            }
            j += 1;
        }
    }
    0
}

/// Convert a push whose slot dies inside a merged (crossing) release:
/// the store is dropped, the 8-byte hole stays.
fn convert_push(b: &mut CapturedBlock, i: usize) -> u64 {
    b.insts[i] = CapturedInst::plain(Inst::Lea {
        dst: Gpr::Rsp,
        src: MemRef::base_disp(Gpr::Rsp, -8),
    });
    1
}

/// Rewrite the pair `(i, j)`. With nothing allocated deeper than the slot
/// in between, delete both and re-base intervening RSP displacements;
/// otherwise convert both to flag-neutral RSP bumps (the layout must stay:
/// deleting would strand deeper slots below RSP where later pushes clobber
/// them). Returns removed/simplified instruction count.
fn try_rewrite(b: &mut CapturedBlock, i: usize, j: usize, slot: i64, went_deeper: bool) -> u64 {
    let _ = slot;
    if !went_deeper {
        // Verify rebased displacements stay encodable and non-negative
        // (a negative displacement would reach below RSP).
        for ci in &b.insts[i + 1..j] {
            if let Some(m) = rsp_mem(&ci.inst) {
                if m.disp < 8 {
                    return 0;
                }
            }
        }
        for ci in b.insts[i + 1..j].iter_mut() {
            ci.inst = rebase_rsp(&ci.inst);
            // Frame metadata refers to pre-compression offsets; it is
            // consumed by earlier passes only; clear to avoid stale reuse.
            ci.frame_store = None;
            ci.frame_load = None;
        }
        b.insts.remove(j);
        b.insts.remove(i);
        return 2;
    }
    // Conversion: keep the 8-byte hole, drop the dead store and reload.
    let already = matches!(
        b.insts[i].inst,
        Inst::Lea {
            dst: Gpr::Rsp,
            src: MemRef {
                base: Some(Gpr::Rsp),
                index: None,
                disp: -8
            }
        }
    );
    if already {
        return 0; // fixpoint: this pair is fully converted
    }
    b.insts[i] = CapturedInst::plain(Inst::Lea {
        dst: Gpr::Rsp,
        src: MemRef::base_disp(Gpr::Rsp, -8),
    });
    b.insts[j] = CapturedInst::plain(Inst::Lea {
        dst: Gpr::Rsp,
        src: MemRef::base_disp(Gpr::Rsp, 8),
    });
    1
}

fn rsp_mem(inst: &Inst) -> Option<MemRef> {
    let pick = |m: MemRef| (m.base == Some(Gpr::Rsp)).then_some(m);
    inst.mem_load()
        .and_then(pick)
        .or_else(|| inst.mem_store().and_then(pick))
        .or_else(|| match inst {
            Inst::Lea { src, .. } => pick(*src),
            _ => None,
        })
}

/// Shift every RSP-based memory operand in `inst` down by 8.
fn rebase_rsp(inst: &Inst) -> Inst {
    fn fix(m: MemRef) -> MemRef {
        if m.base == Some(Gpr::Rsp) {
            MemRef {
                disp: m.disp - 8,
                ..m
            }
        } else {
            m
        }
    }
    let fix_op = |o: Operand| match o {
        Operand::Mem(m) => Operand::Mem(fix(m)),
        o => o,
    };
    let mut out = *inst;
    match &mut out {
        Inst::Mov { dst, src, .. } => {
            *dst = fix_op(*dst);
            *src = fix_op(*src);
        }
        Inst::Movsxd { src, .. }
        | Inst::Movzx8 { src, .. }
        | Inst::Imul { src, .. }
        | Inst::ImulImm { src, .. }
        | Inst::Idiv { src, .. }
        | Inst::Push { src }
        | Inst::Cvtsi2sd { src, .. }
        | Inst::Cvttsd2si { src, .. } => *src = fix_op(*src),
        // `lea rsp, [rsp+k]` is stack-pointer arithmetic: the relative
        // adjustment is invariant under the base shift. Every other lea
        // forms an address, which does shift.
        Inst::Lea { dst, src } if *dst != Gpr::Rsp || src.base != Some(Gpr::Rsp) => {
            *src = fix(*src);
        }
        Inst::Alu { dst, src, .. } => {
            *dst = fix_op(*dst);
            *src = fix_op(*src);
        }
        Inst::Test { a, b, .. } => {
            *a = fix_op(*a);
            *b = fix_op(*b);
        }
        Inst::Unary { dst, .. } | Inst::Shift { dst, .. } | Inst::Pop { dst } => {
            *dst = fix_op(*dst)
        }
        Inst::Setcc { dst, .. } => *dst = fix_op(*dst),
        Inst::MovSd { dst, src } | Inst::MovUpd { dst, src } => {
            *dst = fix_op(*dst);
            *src = fix_op(*src);
        }
        Inst::Sse { src, .. } | Inst::Ucomisd { b: src, .. } => *src = fix_op(*src),
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::Terminator;

    fn block(insts: Vec<Inst>) -> CapturedBlock {
        let mut b = CapturedBlock::pending(0x1000);
        b.insts = insts.into_iter().map(CapturedInst::plain).collect();
        b.term = Terminator::Ret;
        b.traced = true;
        b
    }

    #[test]
    fn removes_dead_push_pop_pair() {
        let mut blocks = vec![block(vec![
            Inst::Push {
                src: Operand::Reg(Gpr::Rbp),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(1),
            },
            Inst::Pop {
                dst: Operand::Reg(Gpr::Rbp),
            },
            Inst::Ret,
        ])];
        assert_eq!(compress_frames(&mut blocks), 2);
        assert_eq!(blocks[0].insts.len(), 2);
    }

    #[test]
    fn rebases_intervening_rsp_operands() {
        // push rbp; mov rax, [rsp+16]; pop rbp  →  mov rax, [rsp+8]
        let mut blocks = vec![block(vec![
            Inst::Push {
                src: Operand::Reg(Gpr::Rbp),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, 16)),
            },
            Inst::Pop {
                dst: Operand::Reg(Gpr::Rbp),
            },
        ])];
        assert_eq!(compress_frames(&mut blocks), 2);
        assert_eq!(
            blocks[0].insts[0].inst,
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, 8)),
            }
        );
    }

    #[test]
    fn keeps_pair_when_register_is_used() {
        let mut blocks = vec![block(vec![
            Inst::Push {
                src: Operand::Reg(Gpr::Rbp),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rbp),
                src: Operand::Imm(0),
            },
            Inst::Pop {
                dst: Operand::Reg(Gpr::Rbp),
            },
        ])];
        assert_eq!(compress_frames(&mut blocks), 0);
    }

    #[test]
    fn keeps_pair_when_slot_is_read() {
        let mut blocks = vec![block(vec![
            Inst::Push {
                src: Operand::Reg(Gpr::Rbp),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Mem(MemRef::base(Gpr::Rsp)), // the saved slot
            },
            Inst::Pop {
                dst: Operand::Reg(Gpr::Rbp),
            },
        ])];
        assert_eq!(compress_frames(&mut blocks), 0);
    }

    #[test]
    fn keeps_pair_across_calls() {
        let mut blocks = vec![block(vec![
            Inst::Push {
                src: Operand::Reg(Gpr::Rbp),
            },
            Inst::CallRel { target: 0x40_0000 },
            Inst::Pop {
                dst: Operand::Reg(Gpr::Rbp),
            },
        ])];
        assert_eq!(compress_frames(&mut blocks), 0);
    }

    #[test]
    fn elided_pop_close_requires_dead_slot() {
        // push rbx; lea rsp,[rsp+8]  (elided pop): the pushed value is
        // dead, pair removable even though rbx is 'restored' elsewhere.
        let mut blocks = vec![block(vec![
            Inst::Push {
                src: Operand::Reg(Gpr::Rbx),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(3),
            },
            Inst::Lea {
                dst: Gpr::Rsp,
                src: MemRef::base_disp(Gpr::Rsp, 8),
            },
        ])];
        assert_eq!(compress_frames(&mut blocks), 2);
        assert_eq!(blocks[0].insts.len(), 1);
    }

    #[test]
    fn nested_pairs_cascade() {
        let mut blocks = vec![block(vec![
            Inst::Push {
                src: Operand::Reg(Gpr::Rbp),
            },
            Inst::Push {
                src: Operand::Reg(Gpr::Rbx),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(1),
            },
            Inst::Pop {
                dst: Operand::Reg(Gpr::Rbx),
            },
            Inst::Pop {
                dst: Operand::Reg(Gpr::Rbp),
            },
        ])];
        assert_eq!(compress_frames(&mut blocks), 4);
        assert_eq!(blocks[0].insts.len(), 1);
    }

    #[test]
    fn mismatched_depth_is_left_alone() {
        // push rbp; sub rsp, 8; pop rbp — the pop is NOT at the slot depth.
        let mut blocks = vec![block(vec![
            Inst::Push {
                src: Operand::Reg(Gpr::Rbp),
            },
            Inst::Alu {
                op: AluOp::Sub,
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rsp),
                src: Operand::Imm(8),
            },
            Inst::Pop {
                dst: Operand::Reg(Gpr::Rbp),
            },
        ])];
        assert_eq!(compress_frames(&mut blocks), 0);
    }
}
