//! Read-set snapshots of folded known memory.
//!
//! When the tracer folds a load from declared-known memory (a `KNOWN`
//! range or a `PTR_TO_KNOWN` extent) into a constant, the specialized
//! code silently depends on those bytes never changing. The paper's
//! contract makes the *user* responsible for that immutability — but a
//! production service needs to notice when the contract is broken rather
//! than keep serving stale constants. This module records exactly which
//! bytes a rewrite folded ([`ReadSet`]) and condenses them into a compact,
//! re-checkable fingerprint ([`KnownSnapshot`]) that travels with every
//! [`crate::manager::Variant`]:
//!
//! - `invalidate_data(range)` drops variants whose snapshot *overlaps* a
//!   mutated range, without touching the image;
//! - `revalidate(img)` re-hashes each snapshot against the current image
//!   and drops only the variants whose folded bytes actually changed.

use brew_image::Image;
use std::ops::Range;

/// FNV-1a offset basis / prime (the same parameters request
/// fingerprinting uses).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Accumulates the `(addr, size)` loads the tracer folded from known
/// memory during one rewrite. Cheap to record into (one `Vec` push per
/// folded load); condensed once at the end of the rewrite.
#[derive(Debug, Default, Clone)]
pub struct ReadSet {
    reads: Vec<(u64, u64)>,
}

impl ReadSet {
    /// Record one folded load of `size` bytes at `addr`.
    pub fn record(&mut self, addr: u64, size: u64) {
        if size > 0 {
            self.reads.push((addr, size));
        }
    }

    /// Whether any known-memory load was folded.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Coalesce the recorded reads into sorted, disjoint ranges and hash
    /// the bytes they currently hold in `img`.
    pub fn snapshot(&self, img: &Image) -> KnownSnapshot {
        let mut spans: Vec<Range<u64>> = self
            .reads
            .iter()
            .map(|&(a, s)| a..a.saturating_add(s))
            .collect();
        spans.sort_by_key(|r| (r.start, r.end));
        let mut ranges: Vec<Range<u64>> = Vec::new();
        for r in spans {
            match ranges.last_mut() {
                Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
                _ => ranges.push(r),
            }
        }
        let hash = hash_ranges(&ranges, img);
        KnownSnapshot { ranges, hash }
    }
}

/// FNV-1a over every range's position, extent and current image bytes.
/// An unreadable byte hashes as a sentinel, so a snapshot taken over
/// since-unmapped memory can never accidentally match.
fn hash_ranges(ranges: &[Range<u64>], img: &Image) -> u64 {
    let mut h = FNV_OFFSET;
    let mut byte = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for r in ranges {
        for b in r.start.to_le_bytes() {
            byte(b);
        }
        for b in (r.end - r.start).to_le_bytes() {
            byte(b);
        }
        let mut buf = [0u8; 64];
        let mut a = r.start;
        while a < r.end {
            let n = ((r.end - a) as usize).min(buf.len());
            match img.read_bytes(a, &mut buf[..n]) {
                Ok(()) => buf[..n].iter().for_each(|&b| byte(b)),
                Err(_) => byte(0xA5),
            }
            a += n as u64;
        }
    }
    h
}

/// The condensed read-set of one rewrite: the coalesced known-memory
/// ranges it folded, plus an FNV-1a hash of the bytes they held at
/// rewrite time. Empty when the rewrite folded no known memory — such a
/// variant can never go stale.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KnownSnapshot {
    ranges: Vec<Range<u64>>,
    hash: u64,
}

impl KnownSnapshot {
    /// Reassemble a snapshot from serialized parts (the persistence
    /// decoder). The recorded `hash` is *claimed*, not recomputed: load
    /// validation calls [`Self::matches`] against the live image, which
    /// is exactly the stale-snapshot check — a forged or bit-rotted hash
    /// fails it.
    pub(crate) fn from_parts(ranges: Vec<Range<u64>>, hash: u64) -> Self {
        KnownSnapshot { ranges, hash }
    }

    /// The coalesced, sorted ranges of folded known memory.
    pub fn ranges(&self) -> &[Range<u64>] {
        &self.ranges
    }

    /// Hash of the folded bytes at rewrite time.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Whether the rewrite folded no known memory at all.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total folded bytes across all ranges.
    pub fn byte_len(&self) -> u64 {
        self.ranges.iter().map(|r| r.end - r.start).sum()
    }

    /// Does any folded range intersect `r`?
    pub fn overlaps(&self, r: &Range<u64>) -> bool {
        self.ranges
            .iter()
            .any(|s| s.start < r.end && r.start < s.end)
    }

    /// Do the bytes in `img` still hash to what this snapshot recorded?
    /// Empty snapshots always match.
    pub fn matches(&self, img: &Image) -> bool {
        self.is_empty() || hash_ranges(&self.ranges, img) == self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_adjacent_and_overlapping_reads() {
        let img = Image::new();
        let base = img.alloc_data(64, 8);
        let mut rs = ReadSet::default();
        rs.record(base + 8, 8);
        rs.record(base, 8); // adjacent below
        rs.record(base + 4, 8); // overlapping
        rs.record(base + 32, 8); // disjoint
        let snap = rs.snapshot(&img);
        assert_eq!(snap.ranges(), &[base..base + 16, base + 32..base + 40]);
        assert_eq!(snap.byte_len(), 24);
    }

    #[test]
    fn overlap_is_strict_intersection() {
        let img = Image::new();
        let base = img.alloc_data(32, 8);
        let mut rs = ReadSet::default();
        rs.record(base + 8, 8);
        let snap = rs.snapshot(&img);
        assert!(snap.overlaps(&(base + 8..base + 9)));
        assert!(snap.overlaps(&(base..base + 9)));
        assert!(!snap.overlaps(&(base..base + 8)), "touching is not overlap");
        assert!(!snap.overlaps(&(base + 16..base + 24)));
    }

    #[test]
    fn mutation_breaks_the_match() {
        let img = Image::new();
        let base = img.alloc_data(16, 8);
        img.write_u64(base, 7).unwrap();
        let mut rs = ReadSet::default();
        rs.record(base, 8);
        let snap = rs.snapshot(&img);
        assert!(snap.matches(&img));
        img.write_u64(base, 8).unwrap();
        assert!(!snap.matches(&img));
        img.write_u64(base, 7).unwrap();
        assert!(snap.matches(&img), "restoring the bytes restores the match");
        // Bytes outside the read-set do not matter.
        img.write_u64(base + 8, 1234).unwrap();
        assert!(snap.matches(&img));
    }

    #[test]
    fn empty_snapshot_never_goes_stale() {
        let img = Image::new();
        let snap = ReadSet::default().snapshot(&img);
        assert!(snap.is_empty());
        assert!(snap.matches(&img));
        assert!(!snap.overlaps(&(0..u64::MAX)));
    }
}
