//! Guarded specialization dispatch stubs (§III.D):
//!
//! *"it may be observed that a parameter to a function often is 42. In this
//! case, a specific variant can be generated which is called after a check
//! for the parameter actually being 42. Otherwise, the original function
//! should be executed."*
//!
//! A guard is a tiny stub with the same signature as the original: it
//! compares one argument register against the profiled constant and
//! tail-jumps to either the specialized or the original function, so the
//! caller can use it as a drop-in replacement.

use crate::error::RewriteError;
use brew_image::Image;
use brew_x86::prelude::*;

/// Emit a dispatch stub into the JIT segment. `param` is the 0-based
/// *integer* parameter index (SysV: rdi, rsi, rdx, rcx, r8, r9).
///
/// Returns the stub's entry address.
pub fn make_guard(
    img: &mut Image,
    param: usize,
    expected: i64,
    specialized: u64,
    original: u64,
) -> Result<u64, RewriteError> {
    if param >= Gpr::SYSV_ARGS.len() {
        return Err(RewriteError::BadConfig(format!(
            "guard parameter index {param} out of ABI range"
        )));
    }
    let reg = Gpr::SYSV_ARGS[param];

    // r11 is caller-saved and never an argument register: safe scratch.
    let mut insts: Vec<Inst> = Vec::new();
    if expected == (expected as i32) as i64 {
        insts.push(Inst::Alu {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Operand::Reg(reg),
            src: Operand::Imm(expected),
        });
    } else {
        insts.push(Inst::MovAbs { dst: Gpr::R11, imm: expected as u64 });
        insts.push(Inst::Alu {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Operand::Reg(reg),
            src: Operand::Reg(Gpr::R11),
        });
    }
    // je specialized; jmp original — both tail jumps keep all argument
    // registers and the return address intact.
    insts.push(Inst::Jcc { cond: Cond::E, target: specialized });
    insts.push(Inst::JmpRel { target: original });

    let total: usize = insts
        .iter()
        .map(|i| encoded_len(i).unwrap_or(16))
        .sum();
    if (total as u64) > img.jit_remaining() {
        return Err(RewriteError::OutOfCodeSpace);
    }
    let base = img.alloc_jit(&vec![0u8; total]);
    let mut bytes = Vec::with_capacity(total);
    for i in &insts {
        let addr = base + bytes.len() as u64;
        encode(i, addr, &mut bytes)?;
    }
    img.write_bytes(base, &bytes)
        .map_err(|_| RewriteError::OutOfCodeSpace)?;
    Ok(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_shape_small_imm() {
        let mut img = Image::new();
        let g = make_guard(&mut img, 0, 42, 0x90_0100, 0x40_0000).unwrap();
        let win = img.code_window(g, 64).unwrap();
        let (insts, _) = decode_all(&win, g);
        assert!(matches!(
            insts[0].1,
            Inst::Alu { op: AluOp::Cmp, dst: Operand::Reg(Gpr::Rdi), src: Operand::Imm(42), .. }
        ));
        assert_eq!(insts[1].1, Inst::Jcc { cond: Cond::E, target: 0x90_0100 });
        assert_eq!(insts[2].1, Inst::JmpRel { target: 0x40_0000 });
    }

    #[test]
    fn guard_large_constant_uses_r11() {
        let mut img = Image::new();
        let v = 0x1234_5678_9ABCi64;
        let g = make_guard(&mut img, 2, v, 0x90_0100, 0x40_0000).unwrap();
        let win = img.code_window(g, 64).unwrap();
        let (insts, _) = decode_all(&win, g);
        assert_eq!(insts[0].1, Inst::MovAbs { dst: Gpr::R11, imm: v as u64 });
        assert!(matches!(
            insts[1].1,
            Inst::Alu { op: AluOp::Cmp, dst: Operand::Reg(Gpr::Rdx), src: Operand::Reg(Gpr::R11), .. }
        ));
    }

    #[test]
    fn bad_param_index() {
        let mut img = Image::new();
        assert!(matches!(
            make_guard(&mut img, 6, 1, 0, 0),
            Err(RewriteError::BadConfig(_))
        ));
    }
}
