//! Guarded specialization dispatch stubs (§III.D):
//!
//! *"it may be observed that a parameter to a function often is 42. In this
//! case, a specific variant can be generated which is called after a check
//! for the parameter actually being 42. Otherwise, the original function
//! should be executed."*
//!
//! A guard is a tiny stub with the same signature as the original: it
//! compares argument registers against profiled constants and tail-jumps
//! to a specialized variant or to the original function, so the caller can
//! use it as a drop-in replacement.
//!
//! Two shapes are emitted:
//!
//! - [`make_guard`]: the paper's two-way form — one parameter, one
//!   constant, one specialized variant (`cmp; je spec; jmp orig`).
//! - [`make_guard_chain`]: the generalized N-way form used by
//!   [`crate::manager::SpecializationManager::build_dispatcher`] — a chain
//!   of cases, each a *conjunction* of `(parameter, constant)` compares
//!   guarding one variant. A case whose compares all match tail-jumps to
//!   its variant; any mismatch falls to the next case; the last case falls
//!   through to the original function.
//!
//! Both shapes also come in *self-counting* variants
//! ([`make_guard_counting`], [`make_guard_chain_counting`]): the stub
//! additionally increments a per-case slot of a [`CounterPage`] in the
//! data segment (`inc qword [slot]`) on the path it takes, so runtime
//! hit / fall-through rates are observable and a
//! `brew_emu::ValueProfile`-style prediction can be validated against
//! reality. The increment sits *after* every compare of its case (or on
//! the fall-through path), immediately before the tail jump — the flags
//! it clobbers are dead at a SysV function boundary, so a counting stub
//! is behaviorally identical to its plain twin.

use crate::error::RewriteError;
use brew_image::{Image, MemFault};
use brew_x86::prelude::*;

/// The counter page of a self-counting dispatch stub: one 8-byte slot
/// per case plus a final fall-through slot, allocated in the image's
/// data segment (addresses below 2³¹, so the stub can address them with
/// an absolute disp32 — the same trick the specializer plays for known
/// data).
///
/// # Read-back tolerance (the memory-ordering contract)
///
/// The stub's `inc qword [slot]` carries no `lock` prefix — adding one
/// would put an atomic RMW on the hottest dispatch path to buy precision
/// nobody needs. Readers must therefore treat every slot as a *relaxed,
/// advisory* counter:
///
/// - Under concurrent callers an increment can be lost (plain
///   load-add-store races) and a multi-slot [`snapshot`](Self::snapshot)
///   is only per-slot consistent: slots are read one at a time while the
///   stub keeps running, so the cross-slot sum can disagree with the true
///   call count by the number of in-flight calls.
/// - A reader may also observe a slot mid-update ("torn" relative to its
///   neighbours) or just after a [`reset`](Self::reset) it did not issue.
///
/// Every consumer in this crate is delta-based and clamps:
/// [`delta_since`](Self::delta_since) saturates per slot at zero, so a
/// wrapped, reset or torn-low value yields a `0` delta — never a negative
/// (or absurdly large) heat contribution. The tiering layer additionally
/// decays scores every tick, so a lost or phantom increment washes out
/// instead of compounding. Tests `delta_since_saturates_instead_of_going_negative`
/// and the heat-wrap test in `tests/tiering.rs` pin this down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterPage {
    /// Address of slot 0.
    pub base: u64,
    /// Number of dispatch cases (slots `0..cases`); slot `cases` counts
    /// fall-throughs to the original.
    pub cases: usize,
}

impl CounterPage {
    /// Allocate a zeroed page for `cases` dispatch cases.
    ///
    /// The page carries two parallel banks of `cases + 1` slots each:
    /// the *count* bank at `base` (incremented by the stub itself) and a
    /// *cycle* bank right behind it (written host-side by
    /// [`telemetry::profile::DispatchProfiler`](crate::telemetry::DispatchProfiler),
    /// which attributes each call's measured model cycles to the case
    /// that took it — rdtsc-style entry/exit accounting folded into the
    /// same page so `tick()` can weigh *time* per variant, not just
    /// calls). The stub's emitted code never touches the cycle bank, so
    /// per-call guest overhead is unchanged (~5 model cycles).
    pub fn alloc(img: &Image, cases: usize) -> Self {
        CounterPage {
            base: img.alloc_data(16 * (cases as u64 + 1), 8),
            cases,
        }
    }

    /// Address of slot `i` (`i == cases` is the fall-through slot).
    pub fn slot_addr(&self, i: usize) -> u64 {
        self.base + 8 * i as u64
    }

    /// Times case `i` dispatched to its variant.
    pub fn case_hits(&self, img: &Image, i: usize) -> Result<u64, MemFault> {
        img.read_u64(self.slot_addr(i))
    }

    /// Times the chain fell through to the original function.
    pub fn fallthrough_hits(&self, img: &Image) -> Result<u64, MemFault> {
        img.read_u64(self.slot_addr(self.cases))
    }

    /// All slots in order: case hits, fall-through last.
    pub fn snapshot(&self, img: &Image) -> Result<Vec<u64>, MemFault> {
        (0..=self.cases).map(|i| self.case_hits(img, i)).collect()
    }

    /// Sum over every slot — equals the number of calls through the stub.
    pub fn total(&self, img: &Image) -> Result<u64, MemFault> {
        Ok(self.snapshot(img)?.iter().sum())
    }

    /// Zero every slot in both banks (counts and cycles).
    pub fn reset(&self, img: &Image) -> Result<(), MemFault> {
        for i in 0..=self.cases {
            img.write_u64(self.slot_addr(i), 0)?;
            img.write_u64(self.cycle_slot_addr(i), 0)?;
        }
        Ok(())
    }

    /// Snapshot the page and diff it against `prev` (a previous
    /// [`snapshot`](Self::snapshot), or zeros/empty for "since the
    /// beginning"): returns `(new snapshot, per-slot deltas)`.
    ///
    /// Deltas saturate at zero: a slot that wrapped, was reset, or was
    /// read torn below its previous value contributes `0`, never a
    /// negative — the guarantee the tiering heat scores build on (see the
    /// type-level docs on read-back tolerance). Slots missing from `prev`
    /// are treated as previously zero.
    pub fn delta_since(&self, img: &Image, prev: &[u64]) -> Result<(Vec<u64>, Vec<u64>), MemFault> {
        let snap = self.snapshot(img)?;
        let deltas = snap
            .iter()
            .enumerate()
            .map(|(i, &v)| v.saturating_sub(prev.get(i).copied().unwrap_or(0)))
            .collect();
        Ok((snap, deltas))
    }

    /// Address of cycle slot `i` (`i == cases` is the fall-through /
    /// original-time slot). The cycle bank sits directly behind the
    /// count bank.
    pub fn cycle_slot_addr(&self, i: usize) -> u64 {
        self.base + 8 * (self.cases as u64 + 1) + 8 * i as u64
    }

    /// Accumulated model cycles attributed to case `i`.
    pub fn case_cycles(&self, img: &Image, i: usize) -> Result<u64, MemFault> {
        img.read_u64(self.cycle_slot_addr(i))
    }

    /// Fold `cycles` into case `i`'s cycle slot (host-side
    /// read-modify-write; same relaxed/advisory contract as the count
    /// bank).
    pub fn add_cycles(&self, img: &Image, i: usize, cycles: u64) -> Result<(), MemFault> {
        let cur = img.read_u64(self.cycle_slot_addr(i))?;
        img.write_u64(self.cycle_slot_addr(i), cur.wrapping_add(cycles))
    }

    /// All cycle slots in order: per-case first, fall-through last.
    pub fn cycle_snapshot(&self, img: &Image) -> Result<Vec<u64>, MemFault> {
        (0..=self.cases).map(|i| self.case_cycles(img, i)).collect()
    }

    /// Snapshot the cycle bank and diff against `prev`, saturating per
    /// slot at zero exactly like [`delta_since`](Self::delta_since).
    pub fn cycle_delta_since(
        &self,
        img: &Image,
        prev: &[u64],
    ) -> Result<(Vec<u64>, Vec<u64>), MemFault> {
        let snap = self.cycle_snapshot(img)?;
        let deltas = snap
            .iter()
            .enumerate()
            .map(|(i, &v)| v.saturating_sub(prev.get(i).copied().unwrap_or(0)))
            .collect();
        Ok((snap, deltas))
    }
}

/// `inc qword [slot]` — the self-counting instrumentation instruction.
fn count_inst(slot: u64) -> Result<Inst, RewriteError> {
    let mem = MemRef::abs_u64(slot).ok_or_else(|| {
        RewriteError::BadConfig(format!("counter slot {slot:#x} beyond disp32 range"))
    })?;
    Ok(Inst::Unary {
        op: UnOp::Inc,
        w: Width::W64,
        dst: Operand::Mem(mem),
    })
}

/// One case of a dispatch chain: jump to `target` when every listed
/// integer argument register equals its expected value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardCase {
    /// Conjunction of `(0-based integer parameter index, expected value)`.
    pub conds: Vec<(usize, i64)>,
    /// Entry of the specialized variant guarded by the conditions.
    pub target: u64,
}

/// Emit a dispatch stub into the JIT segment. `param` is the 0-based
/// *integer* parameter index (SysV: rdi, rsi, rdx, rcx, r8, r9).
///
/// Returns the stub's entry address.
pub fn make_guard(
    img: &Image,
    param: usize,
    expected: i64,
    specialized: u64,
    original: u64,
) -> Result<u64, RewriteError> {
    if param >= Gpr::SYSV_ARGS.len() {
        return Err(RewriteError::BadConfig(format!(
            "guard parameter index {param} out of ABI range"
        )));
    }
    let reg = Gpr::SYSV_ARGS[param];

    // r11 is caller-saved and never an argument register: safe scratch.
    let mut insts: Vec<Inst> = Vec::new();
    if expected == (expected as i32) as i64 {
        insts.push(Inst::Alu {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Operand::Reg(reg),
            src: Operand::Imm(expected),
        });
    } else {
        insts.push(Inst::MovAbs {
            dst: Gpr::R11,
            imm: expected as u64,
        });
        insts.push(Inst::Alu {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Operand::Reg(reg),
            src: Operand::Reg(Gpr::R11),
        });
    }
    // je specialized; jmp original — both tail jumps keep all argument
    // registers and the return address intact.
    insts.push(Inst::Jcc {
        cond: Cond::E,
        target: specialized,
    });
    insts.push(Inst::JmpRel { target: original });

    let total: usize = insts.iter().map(|i| encoded_len(i).unwrap_or(16)).sum();
    let base = img
        .try_alloc_jit(total as u64)
        .ok_or(RewriteError::OutOfCodeSpace)?;
    let mut bytes = Vec::with_capacity(total);
    for i in &insts {
        let addr = base + bytes.len() as u64;
        encode(i, addr, &mut bytes)?;
    }
    img.write_bytes(base, &bytes)
        .map_err(|_| RewriteError::OutOfCodeSpace)?;
    Ok(base)
}

/// Instructions testing one condition; the jump target is patched later.
fn cond_insts(param: usize, expected: i64) -> Result<Vec<Inst>, RewriteError> {
    if param >= Gpr::SYSV_ARGS.len() {
        return Err(RewriteError::BadConfig(format!(
            "guard parameter index {param} out of ABI range"
        )));
    }
    let reg = Gpr::SYSV_ARGS[param];
    let mut insts = Vec::new();
    if expected == (expected as i32) as i64 {
        insts.push(Inst::Alu {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Operand::Reg(reg),
            src: Operand::Imm(expected),
        });
    } else {
        // r11 is caller-saved and never an argument register: safe scratch.
        insts.push(Inst::MovAbs {
            dst: Gpr::R11,
            imm: expected as u64,
        });
        insts.push(Inst::Alu {
            op: AluOp::Cmp,
            w: Width::W64,
            dst: Operand::Reg(reg),
            src: Operand::Reg(Gpr::R11),
        });
    }
    // Placeholder target: `jne` to the next case, patched in pass two.
    // Jcc/JmpRel always encode a rel32, so lengths don't depend on it.
    insts.push(Inst::Jcc {
        cond: Cond::Ne,
        target: 0,
    });
    Ok(insts)
}

/// Emit an N-way dispatch chain into the JIT segment. Cases are tested in
/// order; the fall-through is a tail jump to `original`. An empty case
/// list degenerates to a plain trampoline onto the original.
///
/// Returns the chain's entry address.
pub fn make_guard_chain(
    img: &Image,
    cases: &[GuardCase],
    original: u64,
) -> Result<u64, RewriteError> {
    chain_impl(img, cases, original, None)
}

/// [`make_guard_chain`] with self-counting instrumentation: allocates a
/// [`CounterPage`] and emits an `inc qword [slot]` on every dispatch
/// path (after the case's compares, before its tail jump), so each
/// call through the stub bumps exactly one slot. Dispatch behavior is
/// bit-identical to the plain chain.
///
/// Returns `(entry address, counter page)`.
pub fn make_guard_chain_counting(
    img: &Image,
    cases: &[GuardCase],
    original: u64,
) -> Result<(u64, CounterPage), RewriteError> {
    let page = CounterPage::alloc(img, cases.len());
    let entry = chain_impl(img, cases, original, Some(&page))?;
    Ok((entry, page))
}

/// [`make_guard`] with self-counting instrumentation: slot 0 counts
/// dispatches to the specialized variant, slot 1 (the fall-through
/// slot) counts calls routed to the original.
pub fn make_guard_counting(
    img: &Image,
    param: usize,
    expected: i64,
    specialized: u64,
    original: u64,
) -> Result<(u64, CounterPage), RewriteError> {
    make_guard_chain_counting(
        img,
        &[GuardCase {
            conds: vec![(param, expected)],
            target: specialized,
        }],
        original,
    )
}

fn chain_impl(
    img: &Image,
    cases: &[GuardCase],
    original: u64,
    counters: Option<&CounterPage>,
) -> Result<u64, RewriteError> {
    // Pass one: build every case's instructions with placeholder targets
    // and compute case start offsets from the (target-independent) lengths.
    let mut case_insts: Vec<Vec<Inst>> = Vec::with_capacity(cases.len());
    let mut case_off: Vec<usize> = Vec::with_capacity(cases.len() + 1);
    let mut off = 0usize;
    for (ci, case) in cases.iter().enumerate() {
        if case.conds.is_empty() {
            return Err(RewriteError::BadConfig(
                "dispatch case with no conditions would shadow every later \
                 case and the original"
                    .into(),
            ));
        }
        let mut insts = Vec::new();
        for &(param, expected) in &case.conds {
            insts.extend(cond_insts(param, expected)?);
        }
        if let Some(page) = counters {
            // Every compare of the case has passed; flags are dead at the
            // tail jump to a function entry, so the `inc` is invisible.
            insts.push(count_inst(page.slot_addr(ci))?);
        }
        insts.push(Inst::JmpRel {
            target: case.target,
        });
        case_off.push(off);
        off += insts
            .iter()
            .map(|i| encoded_len(i).unwrap_or(16))
            .sum::<usize>();
        case_insts.push(insts);
    }
    case_off.push(off); // fall-through label
    let mut tail = Vec::new();
    if let Some(page) = counters {
        tail.push(count_inst(page.slot_addr(cases.len()))?);
    }
    tail.push(Inst::JmpRel { target: original });
    let total = off
        + tail
            .iter()
            .map(|i| encoded_len(i).unwrap_or(16))
            .sum::<usize>();
    let base = img
        .try_alloc_jit(total as u64)
        .ok_or(RewriteError::OutOfCodeSpace)?;

    // Pass two: patch every `jne` to its case's next-case address and
    // encode at final addresses.
    let mut bytes = Vec::with_capacity(total);
    for (ci, mut insts) in case_insts.into_iter().enumerate() {
        let next_case = base + case_off[ci + 1] as u64;
        for inst in &mut insts {
            if let Inst::Jcc {
                cond: Cond::Ne,
                target,
            } = inst
            {
                *target = next_case;
            }
        }
        for inst in &insts {
            let addr = base + bytes.len() as u64;
            encode(inst, addr, &mut bytes)?;
        }
    }
    for inst in &tail {
        let addr = base + bytes.len() as u64;
        encode(inst, addr, &mut bytes)?;
    }
    debug_assert_eq!(bytes.len(), total);

    img.write_bytes(base, &bytes)
        .map_err(|_| RewriteError::OutOfCodeSpace)?;
    Ok(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_shape_small_imm() {
        let img = Image::new();
        let g = make_guard(&img, 0, 42, 0x90_0100, 0x40_0000).unwrap();
        let win = img.code_window(g, 64).unwrap();
        let (insts, _) = decode_all(&win, g);
        assert!(matches!(
            insts[0].1,
            Inst::Alu {
                op: AluOp::Cmp,
                dst: Operand::Reg(Gpr::Rdi),
                src: Operand::Imm(42),
                ..
            }
        ));
        assert_eq!(
            insts[1].1,
            Inst::Jcc {
                cond: Cond::E,
                target: 0x90_0100
            }
        );
        assert_eq!(insts[2].1, Inst::JmpRel { target: 0x40_0000 });
    }

    #[test]
    fn guard_large_constant_uses_r11() {
        let img = Image::new();
        let v = 0x1234_5678_9ABCi64;
        let g = make_guard(&img, 2, v, 0x90_0100, 0x40_0000).unwrap();
        let win = img.code_window(g, 64).unwrap();
        let (insts, _) = decode_all(&win, g);
        assert_eq!(
            insts[0].1,
            Inst::MovAbs {
                dst: Gpr::R11,
                imm: v as u64
            }
        );
        assert!(matches!(
            insts[1].1,
            Inst::Alu {
                op: AluOp::Cmp,
                dst: Operand::Reg(Gpr::Rdx),
                src: Operand::Reg(Gpr::R11),
                ..
            }
        ));
    }

    #[test]
    fn bad_param_index() {
        let img = Image::new();
        assert!(matches!(
            make_guard(&img, 6, 1, 0, 0),
            Err(RewriteError::BadConfig(_))
        ));
        assert!(matches!(
            make_guard_chain(
                &img,
                &[GuardCase {
                    conds: vec![(6, 1)],
                    target: 0x90_0100
                }],
                0x40_0000
            ),
            Err(RewriteError::BadConfig(_))
        ));
    }

    #[test]
    fn chain_shape_three_cases() {
        let img = Image::new();
        let cases = [
            GuardCase {
                conds: vec![(0, 4)],
                target: 0x90_1000,
            },
            GuardCase {
                conds: vec![(0, 9)],
                target: 0x90_2000,
            },
            GuardCase {
                conds: vec![(0, 16), (1, 7)],
                target: 0x90_3000,
            },
        ];
        let g = make_guard_chain(&img, &cases, 0x40_0000).unwrap();
        let win = img.code_window(g, 256).unwrap();
        let (insts, _) = decode_all(&win, g);

        // cmp rdi,4; jne C1; jmp v0; C1: cmp rdi,9; jne C2; jmp v1;
        // C2: cmp rdi,16; jne F; cmp rsi,7; jne F; jmp v2; F: jmp orig
        assert!(matches!(
            insts[0].1,
            Inst::Alu {
                op: AluOp::Cmp,
                dst: Operand::Reg(Gpr::Rdi),
                src: Operand::Imm(4),
                ..
            }
        ));
        let c1 = insts[3].0;
        assert_eq!(
            insts[1].1,
            Inst::Jcc {
                cond: Cond::Ne,
                target: c1
            }
        );
        assert_eq!(insts[2].1, Inst::JmpRel { target: 0x90_1000 });
        let c2 = insts[6].0;
        assert_eq!(
            insts[4].1,
            Inst::Jcc {
                cond: Cond::Ne,
                target: c2
            }
        );
        assert_eq!(insts[5].1, Inst::JmpRel { target: 0x90_2000 });
        // Both conjunction compares bail to the same fall-through label.
        let fall = insts[11].0;
        assert_eq!(
            insts[7].1,
            Inst::Jcc {
                cond: Cond::Ne,
                target: fall
            }
        );
        assert!(matches!(
            insts[8].1,
            Inst::Alu {
                op: AluOp::Cmp,
                dst: Operand::Reg(Gpr::Rsi),
                src: Operand::Imm(7),
                ..
            }
        ));
        assert_eq!(
            insts[9].1,
            Inst::Jcc {
                cond: Cond::Ne,
                target: fall
            }
        );
        assert_eq!(insts[10].1, Inst::JmpRel { target: 0x90_3000 });
        assert_eq!(insts[11].1, Inst::JmpRel { target: 0x40_0000 });
    }

    #[test]
    fn counting_chain_increments_before_every_tail_jump() {
        let img = Image::new();
        let cases = [
            GuardCase {
                conds: vec![(0, 4)],
                target: 0x90_1000,
            },
            GuardCase {
                conds: vec![(0, 9)],
                target: 0x90_2000,
            },
        ];
        let (g, page) = make_guard_chain_counting(&img, &cases, 0x40_0000).unwrap();
        assert_eq!(page.cases, 2);
        let win = img.code_window(g, 256).unwrap();
        let (insts, _) = decode_all(&win, g);

        // cmp; jne; inc [slot0]; jmp v0; cmp; jne; inc [slot1]; jmp v1;
        // inc [slot2]; jmp orig
        assert!(insts.len() >= 10);
        let inc_at = |i: usize, slot: usize| {
            let Inst::Unary {
                op: UnOp::Inc,
                w: Width::W64,
                dst: Operand::Mem(m),
            } = insts[i].1
            else {
                panic!("expected inc at {i}, got {:?}", insts[i].1)
            };
            assert_eq!(m, MemRef::abs_u64(page.slot_addr(slot)).unwrap());
        };
        inc_at(2, 0);
        assert_eq!(insts[3].1, Inst::JmpRel { target: 0x90_1000 });
        inc_at(6, 1);
        assert_eq!(insts[7].1, Inst::JmpRel { target: 0x90_2000 });
        inc_at(8, 2);
        assert_eq!(insts[9].1, Inst::JmpRel { target: 0x40_0000 });

        // `jne` targets land on the next case's first compare, past the inc.
        assert_eq!(
            insts[1].1,
            Inst::Jcc {
                cond: Cond::Ne,
                target: insts[4].0
            }
        );
        assert_eq!(
            insts[5].1,
            Inst::Jcc {
                cond: Cond::Ne,
                target: insts[8].0
            }
        );
    }

    #[test]
    fn counter_page_starts_zeroed_and_resets() {
        let img = Image::new();
        let (_, page) = make_guard_counting(&img, 0, 7, 0x90_0100, 0x40_0000).unwrap();
        assert_eq!(page.snapshot(&img).unwrap(), vec![0, 0]);
        img.write_u64(page.slot_addr(0), 5).unwrap();
        img.write_u64(page.slot_addr(1), 2).unwrap();
        assert_eq!(page.case_hits(&img, 0).unwrap(), 5);
        assert_eq!(page.fallthrough_hits(&img).unwrap(), 2);
        assert_eq!(page.total(&img).unwrap(), 7);
        page.reset(&img).unwrap();
        assert_eq!(page.total(&img).unwrap(), 0);
    }

    #[test]
    fn delta_since_tracks_increments() {
        let img = Image::new();
        let (_, page) = make_guard_counting(&img, 0, 7, 0x90_0100, 0x40_0000).unwrap();
        let (snap, deltas) = page.delta_since(&img, &[]).unwrap();
        assert_eq!(snap, vec![0, 0]);
        assert_eq!(deltas, vec![0, 0]);
        img.write_u64(page.slot_addr(0), 5).unwrap();
        img.write_u64(page.slot_addr(1), 3).unwrap();
        let (snap2, deltas2) = page.delta_since(&img, &snap).unwrap();
        assert_eq!(deltas2, vec![5, 3]);
        img.write_u64(page.slot_addr(0), 9).unwrap();
        let (_, deltas3) = page.delta_since(&img, &snap2).unwrap();
        assert_eq!(deltas3, vec![4, 0]);
    }

    #[test]
    fn delta_since_saturates_instead_of_going_negative() {
        let img = Image::new();
        let (_, page) = make_guard_counting(&img, 0, 7, 0x90_0100, 0x40_0000).unwrap();
        // A slot observed near wrap-around...
        img.write_u64(page.slot_addr(0), u64::MAX).unwrap();
        let (snap, deltas) = page.delta_since(&img, &[0, 0]).unwrap();
        assert_eq!(deltas[0], u64::MAX);
        // ...then wrapped (or reset by someone else): the delta clamps to
        // zero instead of underflowing into a giant bogus count.
        img.write_u64(page.slot_addr(0), 2).unwrap();
        let (_, deltas2) = page.delta_since(&img, &snap).unwrap();
        assert_eq!(deltas2, vec![0, 0]);
        // A `prev` shorter than the page reads as zeros, never a panic.
        let (_, deltas3) = page.delta_since(&img, &[1]).unwrap();
        assert_eq!(deltas3, vec![1, 0]);
    }

    #[test]
    fn cycle_bank_sits_behind_count_bank() {
        let img = Image::new();
        let page = CounterPage::alloc(&img, 2);
        // Count slots 0..=2, then cycle slots 0..=2 directly behind.
        assert_eq!(page.cycle_slot_addr(0), page.slot_addr(2) + 8);
        assert_eq!(page.cycle_slot_addr(2), page.base + 8 * 3 + 8 * 2);
        page.add_cycles(&img, 0, 120).unwrap();
        page.add_cycles(&img, 0, 30).unwrap();
        page.add_cycles(&img, 2, 7).unwrap();
        assert_eq!(page.case_cycles(&img, 0).unwrap(), 150);
        assert_eq!(page.cycle_snapshot(&img).unwrap(), vec![150, 0, 7]);
        // Cycle writes never alias the count bank.
        assert_eq!(page.snapshot(&img).unwrap(), vec![0, 0, 0]);
        page.reset(&img).unwrap();
        assert_eq!(page.cycle_snapshot(&img).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn cycle_delta_saturates_like_counts() {
        let img = Image::new();
        let page = CounterPage::alloc(&img, 1);
        page.add_cycles(&img, 0, 40).unwrap();
        let (snap, deltas) = page.cycle_delta_since(&img, &[]).unwrap();
        assert_eq!(deltas, vec![40, 0]);
        page.add_cycles(&img, 1, 9).unwrap();
        let (snap2, deltas2) = page.cycle_delta_since(&img, &snap).unwrap();
        assert_eq!(deltas2, vec![0, 9]);
        // Reset under the reader's feet clamps to zero, never underflows.
        page.reset(&img).unwrap();
        let (_, deltas3) = page.cycle_delta_since(&img, &snap2).unwrap();
        assert_eq!(deltas3, vec![0, 0]);
    }

    #[test]
    fn empty_chain_is_a_trampoline() {
        let img = Image::new();
        let g = make_guard_chain(&img, &[], 0x40_0000).unwrap();
        let win = img.code_window(g, 16).unwrap();
        let (insts, _) = decode_all(&win, g);
        assert_eq!(insts[0].1, Inst::JmpRel { target: 0x40_0000 });
    }

    #[test]
    fn unconditional_case_is_rejected() {
        let img = Image::new();
        assert!(matches!(
            make_guard_chain(
                &img,
                &[GuardCase {
                    conds: vec![],
                    target: 0x90_1000
                }],
                0x40_0000
            ),
            Err(RewriteError::BadConfig(_))
        ));
    }
}
