//! Optimization passes over captured blocks (§III.G: "we run optimization
//! passes over the newly generated, captured blocks").
//!
//! The paper's prototype had none and still beat the generic code by >2×;
//! these passes close part of the remaining gap to the manual version and
//! are individually switchable for the A2 ablation experiment.

use crate::capture::{CapturedBlock, CapturedInst};
use brew_x86::prelude::*;
use std::collections::HashSet;

/// Which passes run after tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Remove stores to frame slots that no emitted instruction reads.
    pub dead_store_elim: bool,
    /// Forward stored/loaded values to later loads within a block.
    pub redundant_load_elim: bool,
    /// Remove no-op moves and lea identities.
    pub peephole: bool,
    /// Promote whole frame slots into provably-free scratch registers.
    pub slot_promotion: bool,
    /// Remove dead push/pop pairs from inlined frames (§VIII "improved
    /// inlining of small functions and deep call chains").
    pub frame_compression: bool,
    /// Post-rewrite register allocation: CFG-aware slot promotion plus
    /// liveness-driven copy coalescing and address folding (paper §IV
    /// "register renaming").
    pub regalloc: bool,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            dead_store_elim: true,
            redundant_load_elim: true,
            peephole: true,
            slot_promotion: true,
            frame_compression: true,
            regalloc: true,
        }
    }
}

impl PassConfig {
    /// Disable everything (paper-prototype fidelity mode).
    pub fn none() -> Self {
        PassConfig {
            dead_store_elim: false,
            redundant_load_elim: false,
            peephole: false,
            slot_promotion: false,
            frame_compression: false,
            regalloc: false,
        }
    }
}

/// Run the configured passes; returns the number of removed instructions.
///
/// `frame_escaped` disables frame dead-store elimination (an escaped frame
/// address means unknown loads may legally alias the frame).
pub fn run_passes(blocks: &mut [CapturedBlock], pc: &PassConfig, frame_escaped: bool) -> u64 {
    run_passes_traced(blocks, pc, frame_escaped, None)
}

/// [`run_passes`] with optional span recording: each enabled pass gets a
/// `cat:"pass"` span carrying its removal count.
pub fn run_passes_traced(
    blocks: &mut [CapturedBlock],
    pc: &PassConfig,
    frame_escaped: bool,
    mut rec: Option<&mut crate::telemetry::SpanRecorder>,
) -> u64 {
    let mut removed = 0;
    let staged = |rec: &mut Option<&mut crate::telemetry::SpanRecorder>,
                  name: &'static str,
                  f: &mut dyn FnMut() -> u64|
     -> u64 {
        let t0 = rec.as_ref().map(|r| r.now_ns());
        let n = f();
        if let (Some(r), Some(t0)) = (rec.as_deref_mut(), t0) {
            r.complete(name, "pass", t0, vec![("removed".into(), n.to_string())]);
        }
        n
    };
    if pc.redundant_load_elim {
        removed += staged(&mut rec, "redundant-load-elim", &mut || {
            blocks.iter_mut().map(forward_loads).sum()
        });
    }
    if pc.dead_store_elim && !frame_escaped {
        removed += staged(&mut rec, "dead-store-elim", &mut || {
            dead_frame_stores(blocks)
        });
    }
    if pc.slot_promotion {
        // Converts memory moves to register moves (not removals, but the
        // conversions enable the peephole below to drop self-moves).
        staged(&mut rec, "slot-promotion", &mut || {
            crate::promote::promote_slots(blocks, frame_escaped);
            0
        });
    }
    if pc.peephole {
        // First peephole round: cancel adjacent stack-temp pairs so frame
        // compression sees the minimal push population.
        removed += staged(&mut rec, "peephole", &mut || {
            blocks.iter_mut().map(peephole).sum()
        });
    }
    if pc.frame_compression {
        removed += staged(&mut rec, "frame-compression", &mut || {
            crate::frame::compress_frames(blocks)
        });
    }
    if pc.regalloc {
        // Register allocation proper: promote surviving slots across the
        // CFG, then coalesce the copy chains promotion leaves behind.
        removed += staged(&mut rec, "regalloc", &mut || {
            crate::regalloc::allocate(blocks, frame_escaped)
        });
    }
    if pc.peephole {
        // Second round: merge the RSP bumps frame compression introduced
        // and drop register writes orphaned by removed consumers.
        removed += staged(&mut rec, "peephole-2", &mut || {
            blocks
                .iter_mut()
                .map(|b| peephole(b) + dead_reg_writes(b) + peephole(b))
                .sum()
        });
    }
    removed
}

/// Backward dead-write elimination for flag-neutral, side-effect-free
/// register moves: a `lea`/`mov`/`movabs` whose destination is overwritten
/// before any read (within the block) does nothing. Registers are assumed
/// live-out at the block boundary, and calls/indirect jumps read
/// everything, so this never crosses an ABI or control edge.
/// Does the instruction overwrite its destination register(s) completely?
/// (32-bit GPR writes zero-extend and count; 8-bit and scalar-SSE writes
/// merge and do not.)
fn fully_defines(inst: &Inst) -> bool {
    match inst {
        Inst::Mov {
            w: Width::W32 | Width::W64,
            dst: Operand::Reg(_),
            ..
        }
        | Inst::MovAbs { .. }
        | Inst::Movsxd { .. }
        | Inst::Movzx8 { .. }
        | Inst::Lea { .. }
        | Inst::Imul { .. }
        | Inst::ImulImm { .. }
        | Inst::Cvttsd2si { .. }
        | Inst::Pop {
            dst: Operand::Reg(_),
        }
        | Inst::MovUpd {
            dst: Operand::Xmm(_),
            ..
        } => true,
        // movsd xmm <- mem zeroes the high lane: a full definition.
        Inst::MovSd {
            dst: Operand::Xmm(_),
            src: Operand::Mem(_),
        } => true,
        Inst::Alu {
            op,
            w: Width::W32 | Width::W64,
            dst: Operand::Reg(_),
            ..
        } => op.writes_dst(),
        _ => false,
    }
}

fn dead_reg_writes(b: &mut CapturedBlock) -> u64 {
    use defuse::Loc;
    let mut live_gpr = [true; 16];
    let mut live_xmm = [true; 16];
    let mut keep = vec![true; b.insts.len()];
    for (idx, ci) in b.insts.iter().enumerate().rev() {
        let inst = &ci.inst;
        if defuse::is_barrier(inst) {
            live_gpr = [true; 16];
            live_xmm = [true; 16];
            continue;
        }
        // Candidate: flag-neutral pure register producer.
        let removable_shape = matches!(
            inst,
            Inst::Mov {
                dst: Operand::Reg(_),
                src: Operand::Reg(_) | Operand::Imm(_),
                ..
            } | Inst::MovAbs { .. }
                | Inst::Lea { .. }
                | Inst::MovSd {
                    dst: Operand::Xmm(_),
                    src: Operand::Xmm(_)
                }
                | Inst::MovUpd {
                    dst: Operand::Xmm(_),
                    src: Operand::Xmm(_)
                }
        ) && !matches!(inst, Inst::Lea { dst: Gpr::Rsp, .. });
        if removable_shape {
            let mut all_dead = true;
            let mut any_write = false;
            defuse::for_each_write(inst, &mut |l| {
                any_write = true;
                match l {
                    Loc::Gpr(g) => all_dead &= !live_gpr[g.number() as usize],
                    Loc::Xmm(x) => all_dead &= !live_xmm[x.number() as usize],
                }
            });
            if any_write && all_dead {
                keep[idx] = false;
                continue; // removed: no liveness effect
            }
        }
        // Only *full* definitions kill liveness: byte moves, setcc and
        // scalar SSE writes leave the rest of the register intact, so an
        // earlier producer is still (partially) read through them.
        if fully_defines(inst) {
            defuse::for_each_write(inst, &mut |l| match l {
                Loc::Gpr(g) => live_gpr[g.number() as usize] = false,
                Loc::Xmm(x) => live_xmm[x.number() as usize] = false,
            });
        }
        defuse::for_each_read(inst, &mut |l| match l {
            Loc::Gpr(g) => live_gpr[g.number() as usize] = true,
            Loc::Xmm(x) => live_xmm[x.number() as usize] = true,
        });
    }
    let before = b.insts.len();
    let mut it = keep.iter();
    b.insts.retain(|_| *it.next().unwrap());
    (before - b.insts.len()) as u64
}

/// Global frame dead-store elimination: a plain store (`mov`/`movsd` to a
/// tracked frame slot) is dead when no emitted instruction anywhere loads
/// that slot. Pushes and read-modify-writes are kept (they have additional
/// effects). Sound because the frame is dead after return and, with no
/// escaped frame address, no untracked access can alias it.
fn dead_frame_stores(blocks: &mut [CapturedBlock]) -> u64 {
    let mut loaded: HashSet<i64> = HashSet::new();
    for b in blocks.iter() {
        for ci in &b.insts {
            if let Some(off) = ci.frame_load {
                loaded.insert(off);
                // Packed (16-byte) accesses touch the next slot too.
                let packed = matches!(ci.inst, Inst::MovUpd { .. })
                    || matches!(ci.inst, Inst::Sse { op, .. } if op.is_packed());
                if packed {
                    loaded.insert(off + 8);
                }
            }
        }
    }
    let mut removed = 0;
    for b in blocks.iter_mut() {
        b.insts.retain(|ci| {
            let Some(off) = ci.frame_store else {
                return true;
            };
            let pure_store = matches!(
                ci.inst,
                Inst::Mov {
                    dst: Operand::Mem(_),
                    ..
                } | Inst::MovSd {
                    dst: Operand::Mem(_),
                    ..
                }
            );
            let dead = pure_store && !loaded.contains(&off);
            if dead {
                removed += 1;
            }
            !dead
        });
    }
    removed
}

/// Intra-block store-to-load forwarding and redundant-load elimination for
/// 8-byte GPR/XMM moves with `rsp`-relative or absolute addresses.
fn forward_loads(b: &mut CapturedBlock) -> u64 {
    #[derive(Clone, Copy, PartialEq)]
    enum Home {
        Gpr(Gpr),
        Xmm(Xmm),
    }
    // Available equivalences: memory operand -> register holding the value.
    let mut avail: Vec<(MemRef, Home)> = Vec::new();
    let mut removed = 0;

    fn trackable(m: &MemRef) -> bool {
        // rsp-based (frame) or absolute; anything else may change meaning.
        (m.base == Some(Gpr::Rsp) && m.index.is_none()) || (m.base.is_none() && m.index.is_none())
    }

    let mut out: Vec<CapturedInst> = Vec::with_capacity(b.insts.len());
    for mut ci in b.insts.drain(..) {
        // Kill facts invalidated by this instruction.
        let kills_all =
            defuse::is_barrier(&ci.inst) || matches!(ci.inst, Inst::Push { .. } | Inst::Pop { .. });
        let mut writes_rsp = false;
        defuse::for_each_write(&ci.inst, &mut |l| {
            if l == defuse::Loc::Gpr(Gpr::Rsp) {
                writes_rsp = true;
            }
        });

        match &ci.inst {
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(d),
                src: Operand::Mem(m),
            } if trackable(m) => {
                if let Some((_, home)) = avail.iter().find(|(am, _)| am == m) {
                    match home {
                        Home::Gpr(r) if r == d => {
                            removed += 1; // value already in place
                            continue;
                        }
                        Home::Gpr(r) => {
                            ci = CapturedInst {
                                inst: Inst::Mov {
                                    w: Width::W64,
                                    dst: Operand::Reg(*d),
                                    src: Operand::Reg(*r),
                                },
                                frame_store: None,
                                frame_load: None,
                            };
                        }
                        Home::Xmm(_) => {} // cross-file move: leave as load
                    }
                }
            }
            Inst::MovSd {
                dst: Operand::Xmm(d),
                src: Operand::Mem(m),
            } if trackable(m) => {
                if let Some((_, Home::Xmm(x))) = avail.iter().find(|(am, _)| am == m) {
                    if x == d {
                        removed += 1;
                        continue;
                    }
                    ci = CapturedInst {
                        inst: Inst::MovSd {
                            dst: Operand::Xmm(*d),
                            src: Operand::Xmm(*x),
                        },
                        frame_store: None,
                        frame_load: None,
                    };
                }
            }
            _ => {}
        }

        // Update the fact set with this (possibly replaced) instruction.
        if kills_all {
            avail.clear();
        } else {
            // A store invalidates overlapping facts, then adds one.
            if let Some(sm) = ci.inst.mem_store() {
                avail.retain(|(am, _)| !may_overlap(am, &sm));
            }
            if writes_rsp {
                avail.retain(|(am, _)| am.base != Some(Gpr::Rsp));
            }
            // Register redefinition invalidates facts homed there.
            defuse::for_each_write(&ci.inst, &mut |l| match l {
                defuse::Loc::Gpr(g) => avail.retain(|(_, h)| *h != Home::Gpr(g)),
                defuse::Loc::Xmm(x) => avail.retain(|(_, h)| *h != Home::Xmm(x)),
            });
            match &ci.inst {
                Inst::Mov {
                    w: Width::W64,
                    dst: Operand::Mem(m),
                    src: Operand::Reg(s),
                } if trackable(m) => {
                    avail.push((*m, Home::Gpr(*s)));
                }
                Inst::Mov {
                    w: Width::W64,
                    dst: Operand::Reg(d),
                    src: Operand::Mem(m),
                } if trackable(m) => {
                    avail.push((*m, Home::Gpr(*d)));
                }
                Inst::MovSd {
                    dst: Operand::Mem(m),
                    src: Operand::Xmm(s),
                } if trackable(m) => {
                    avail.push((*m, Home::Xmm(*s)));
                }
                Inst::MovSd {
                    dst: Operand::Xmm(d),
                    src: Operand::Mem(m),
                } if trackable(m) => {
                    avail.push((*m, Home::Xmm(*d)));
                }
                _ => {}
            }
        }
        out.push(ci);
    }
    b.insts = out;
    removed
}

fn may_overlap(a: &MemRef, b: &MemRef) -> bool {
    match (a.base, b.base) {
        (Some(Gpr::Rsp), Some(Gpr::Rsp)) => (a.disp - b.disp).abs() < 16,
        (None, None) => (a.disp - b.disp).abs() < 16,
        // Absolute (global/pool) vs rsp (frame) cannot alias; pools and
        // frame are disjoint regions.
        (Some(Gpr::Rsp), None) | (None, Some(Gpr::Rsp)) => false,
        _ => true,
    }
}

/// Remove no-op instructions and cancel dead stack-temp pairs left behind
/// by constant folding (`push X; lea rsp,[rsp+8]`, `push X; pop Y`, ...).
/// Runs to a fixpoint so cancellations cascade.
fn peephole(b: &mut CapturedBlock) -> u64 {
    let before = b.insts.len();
    loop {
        let n = b.insts.len();
        peephole_singletons(b);
        peephole_pairs(b);
        if b.insts.len() == n {
            break;
        }
    }
    (before - b.insts.len()) as u64
}

fn peephole_singletons(b: &mut CapturedBlock) {
    b.insts.retain(|ci| {
        !matches!(
            ci.inst,
            Inst::Mov { w: Width::W64, dst: Operand::Reg(a), src: Operand::Reg(c) } if a == c
        ) && !matches!(
            ci.inst,
            Inst::MovSd { dst: Operand::Xmm(a), src: Operand::Xmm(c) } if a == c
        ) && !matches!(
            ci.inst,
            Inst::Lea { dst, src: MemRef { base: Some(bb), index: None, disp: 0 } } if dst == bb
        ) && !matches!(ci.inst, Inst::Nop)
    });
}

/// `lea rsp, [rsp+8]` — the elided-pop stack adjustment.
fn is_rsp_bump8(i: &Inst) -> bool {
    matches!(
        i,
        Inst::Lea {
            dst: Gpr::Rsp,
            src: MemRef {
                base: Some(Gpr::Rsp),
                index: None,
                disp: 8
            }
        }
    )
}

fn peephole_pairs(b: &mut CapturedBlock) {
    let mut out: Vec<CapturedInst> = Vec::with_capacity(b.insts.len());
    let mut i = 0;
    while i < b.insts.len() {
        if i + 1 < b.insts.len() {
            let (a, c) = (&b.insts[i].inst, &b.insts[i + 1].inst);
            // push X ; lea rsp,[rsp+8]  →  nothing (slot is below RSP and
            // dead afterwards; neither instruction touches flags).
            if matches!(
                a,
                Inst::Push {
                    src: Operand::Reg(_) | Operand::Imm(_)
                }
            ) && is_rsp_bump8(c)
            {
                i += 2;
                continue;
            }
            // push X ; pop Y  →  mov Y, X (or nothing when X == Y).
            if let (
                Inst::Push { src },
                Inst::Pop {
                    dst: Operand::Reg(d),
                },
            ) = (a, c)
            {
                match src {
                    Operand::Reg(s) if s == d => {
                        i += 2;
                        continue;
                    }
                    Operand::Reg(s) => {
                        out.push(CapturedInst::plain(Inst::Mov {
                            w: Width::W64,
                            dst: Operand::Reg(*d),
                            src: Operand::Reg(*s),
                        }));
                        i += 2;
                        continue;
                    }
                    Operand::Imm(v) => {
                        out.push(CapturedInst::plain(Inst::Mov {
                            w: Width::W64,
                            dst: Operand::Reg(*d),
                            src: Operand::Imm(*v),
                        }));
                        i += 2;
                        continue;
                    }
                    _ => {}
                }
            }
            // lea rsp,[rsp+a] ; lea rsp,[rsp+b]  →  one combined bump.
            if let (
                Inst::Lea {
                    dst: Gpr::Rsp,
                    src:
                        MemRef {
                            base: Some(Gpr::Rsp),
                            index: None,
                            disp: d1,
                        },
                },
                Inst::Lea {
                    dst: Gpr::Rsp,
                    src:
                        MemRef {
                            base: Some(Gpr::Rsp),
                            index: None,
                            disp: d2,
                        },
                },
            ) = (a, c)
            {
                if let Some(d) = d1.checked_add(*d2) {
                    if d != 0 {
                        out.push(CapturedInst::plain(Inst::Lea {
                            dst: Gpr::Rsp,
                            src: MemRef::base_disp(Gpr::Rsp, d),
                        }));
                    }
                    i += 2;
                    continue;
                }
            }
        }
        out.push(b.insts[i]);
        i += 1;
    }
    b.insts = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::Terminator;

    fn block(insts: Vec<CapturedInst>) -> CapturedBlock {
        let mut b = CapturedBlock::pending(0x1000);
        b.insts = insts;
        b.term = Terminator::Ret;
        b.traced = true;
        b
    }

    fn mov_store(off: i32, src: Gpr) -> CapturedInst {
        CapturedInst {
            inst: Inst::Mov {
                w: Width::W64,
                dst: Operand::Mem(MemRef::base_disp(Gpr::Rsp, off)),
                src: Operand::Reg(src),
            },
            frame_store: Some(off as i64),
            frame_load: None,
        }
    }

    fn mov_load(dst: Gpr, off: i32) -> CapturedInst {
        CapturedInst {
            inst: Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(dst),
                src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, off)),
            },
            frame_store: None,
            frame_load: Some(off as i64),
        }
    }

    #[test]
    fn dse_removes_unloaded_stores() {
        let mut blocks = vec![block(vec![
            mov_store(-8, Gpr::Rdi),  // never loaded -> dead
            mov_store(-16, Gpr::Rsi), // loaded below -> kept
            mov_load(Gpr::Rax, -16),
        ])];
        let removed = run_passes(
            &mut blocks,
            &PassConfig {
                redundant_load_elim: false,
                peephole: false,
                dead_store_elim: true,
                slot_promotion: false,
                frame_compression: false,
                regalloc: false,
            },
            false,
        );
        assert_eq!(removed, 1);
        assert_eq!(blocks[0].insts.len(), 2);
    }

    #[test]
    fn dse_respects_escape() {
        let mut blocks = vec![block(vec![mov_store(-8, Gpr::Rdi)])];
        let removed = run_passes(&mut blocks, &PassConfig::default(), true);
        assert_eq!(removed, 0);
    }

    #[test]
    fn store_to_load_forwarding() {
        let mut blocks = vec![block(vec![
            mov_store(-8, Gpr::Rdi),
            mov_load(Gpr::Rax, -8), // becomes mov rax, rdi
        ])];
        let pc = PassConfig {
            dead_store_elim: false,
            peephole: false,
            redundant_load_elim: true,
            slot_promotion: false,
            frame_compression: false,
            regalloc: false,
        };
        run_passes(&mut blocks, &pc, false);
        assert_eq!(
            blocks[0].insts[1].inst,
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rdi)
            }
        );
    }

    #[test]
    fn forwarding_invalidated_by_overlapping_store() {
        let mut blocks = vec![block(vec![
            mov_store(-8, Gpr::Rdi),
            mov_store(-8, Gpr::Rsi),
            mov_load(Gpr::Rax, -8),
        ])];
        let pc = PassConfig {
            dead_store_elim: false,
            peephole: false,
            redundant_load_elim: true,
            slot_promotion: false,
            frame_compression: false,
            regalloc: false,
        };
        run_passes(&mut blocks, &pc, false);
        assert_eq!(
            blocks[0].insts[2].inst,
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rsi)
            }
        );
    }

    #[test]
    fn forwarding_invalidated_by_register_redefinition() {
        let mut blocks = vec![block(vec![
            mov_store(-8, Gpr::Rdi),
            CapturedInst::plain(Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rdi),
                src: Operand::Imm(0),
            }),
            mov_load(Gpr::Rax, -8), // must stay a load
        ])];
        let pc = PassConfig {
            dead_store_elim: false,
            peephole: false,
            redundant_load_elim: true,
            slot_promotion: false,
            frame_compression: false,
            regalloc: false,
        };
        run_passes(&mut blocks, &pc, false);
        assert!(matches!(
            blocks[0].insts[2].inst,
            Inst::Mov {
                src: Operand::Mem(_),
                ..
            }
        ));
    }

    #[test]
    fn redundant_second_load_removed() {
        let mut blocks = vec![block(vec![
            mov_load(Gpr::Rax, -8),
            mov_load(Gpr::Rax, -8), // exact repeat -> removed
        ])];
        let pc = PassConfig {
            dead_store_elim: false,
            peephole: false,
            redundant_load_elim: true,
            slot_promotion: false,
            frame_compression: false,
            regalloc: false,
        };
        let removed = run_passes(&mut blocks, &pc, false);
        assert_eq!(removed, 1);
        assert_eq!(blocks[0].insts.len(), 1);
    }

    #[test]
    fn peephole_noops() {
        let mut blocks = vec![block(vec![
            CapturedInst::plain(Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Reg(Gpr::Rax),
            }),
            CapturedInst::plain(Inst::Nop),
            CapturedInst::plain(Inst::Lea {
                dst: Gpr::Rbx,
                src: MemRef::base(Gpr::Rbx),
            }),
            CapturedInst::plain(Inst::Ret),
        ])];
        let pc = PassConfig {
            dead_store_elim: false,
            redundant_load_elim: false,
            peephole: true,
            slot_promotion: false,
            frame_compression: false,
            regalloc: false,
        };
        let removed = run_passes(&mut blocks, &pc, false);
        assert_eq!(removed, 3);
        assert_eq!(blocks[0].insts.len(), 1);
    }

    #[test]
    fn w32_mov_self_not_removed() {
        // mov eax, eax zero-extends: not a no-op.
        let mut blocks = vec![block(vec![CapturedInst::plain(Inst::Mov {
            w: Width::W32,
            dst: Operand::Reg(Gpr::Rax),
            src: Operand::Reg(Gpr::Rax),
        })])];
        let removed = run_passes(&mut blocks, &PassConfig::default(), false);
        assert_eq!(removed, 0);
    }

    #[test]
    fn call_kills_facts() {
        let mut blocks = vec![block(vec![
            mov_store(-8, Gpr::Rdi),
            CapturedInst::plain(Inst::CallRel { target: 0x400000 }),
            mov_load(Gpr::Rax, -8), // must stay: callee may have changed it
        ])];
        let pc = PassConfig {
            dead_store_elim: false,
            peephole: false,
            redundant_load_elim: true,
            slot_promotion: false,
            frame_compression: false,
            regalloc: false,
        };
        run_passes(&mut blocks, &pc, false);
        assert!(matches!(
            blocks[0].insts[2].inst,
            Inst::Mov {
                src: Operand::Mem(_),
                ..
            }
        ));
    }
}

#[cfg(test)]
mod dead_write_tests {
    use super::*;
    use crate::capture::Terminator;

    fn block(insts: Vec<Inst>) -> CapturedBlock {
        let mut b = CapturedBlock::pending(0x1000);
        b.insts = insts.into_iter().map(CapturedInst::plain).collect();
        b.term = Terminator::Ret;
        b.traced = true;
        b
    }

    fn run_dw(insts: Vec<Inst>) -> Vec<Inst> {
        let mut b = block(insts);
        dead_reg_writes(&mut b);
        b.insts.iter().map(|ci| ci.inst).collect()
    }

    #[test]
    fn overwritten_lea_is_removed() {
        let out = run_dw(vec![
            Inst::Lea {
                dst: Gpr::Rbp,
                src: MemRef::base_disp(Gpr::Rsp, 16),
            },
            Inst::Lea {
                dst: Gpr::Rbp,
                src: MemRef::base_disp(Gpr::Rsp, 32),
            },
            Inst::Ret,
        ]);
        assert_eq!(out.len(), 2, "first lea is dead");
        assert!(matches!(
            out[0],
            Inst::Lea {
                src: MemRef { disp: 32, .. },
                ..
            }
        ));
    }

    #[test]
    fn live_out_registers_are_kept() {
        // No redefinition before block end: assume live-out.
        let out = run_dw(vec![
            Inst::Lea {
                dst: Gpr::Rbp,
                src: MemRef::base_disp(Gpr::Rsp, 16),
            },
            Inst::Ret,
        ]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn partial_write_does_not_kill_producer() {
        // mov rax, 5 ; mov al, 1 ; use rax — the full write is NOT dead.
        let out = run_dw(vec![
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(5),
            },
            Inst::Mov {
                w: Width::W8,
                dst: Operand::Reg(Gpr::Rax),
                src: Operand::Imm(1),
            },
            Inst::Mov {
                w: Width::W64,
                dst: Operand::Mem(MemRef::base(Gpr::Rdi)),
                src: Operand::Reg(Gpr::Rax),
            },
            Inst::Ret,
        ]);
        assert_eq!(out.len(), 4, "nothing removable");
    }

    #[test]
    fn scalar_sse_write_does_not_kill_producer() {
        // movupd xmm1 <- [mem]; movsd xmm1 <- xmm0; movupd [mem] <- xmm1:
        // the first load still provides lane 1.
        let m = MemRef::abs(0x601000);
        let out = run_dw(vec![
            Inst::MovUpd {
                dst: Operand::Xmm(Xmm::Xmm1),
                src: Operand::Mem(m),
            },
            Inst::MovSd {
                dst: Operand::Xmm(Xmm::Xmm1),
                src: Operand::Xmm(Xmm::Xmm0),
            },
            Inst::MovUpd {
                dst: Operand::Mem(m),
                src: Operand::Xmm(Xmm::Xmm1),
            },
            Inst::Ret,
        ]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn calls_make_everything_live() {
        let out = run_dw(vec![
            Inst::Lea {
                dst: Gpr::Rbp,
                src: MemRef::base_disp(Gpr::Rsp, 16),
            },
            Inst::CallRel { target: 0x40_0000 },
            Inst::Lea {
                dst: Gpr::Rbp,
                src: MemRef::base_disp(Gpr::Rsp, 32),
            },
            Inst::Ret,
        ]);
        assert_eq!(out.len(), 4, "the callee may observe rbp");
    }
}
