//! The tracing engine: block queue, world-keyed block identity, variant
//! thresholds and world migration with compensation code (§III.F/G).

use crate::capture::{BlockId, CapturedBlock, CapturedInst, RewriteStats, Terminator};
use crate::config::RewriteConfig;
use crate::error::RewriteError;
use crate::value::Value;
use crate::world::{MaterializeSet, World};
use brew_image::Image;
use brew_x86::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::ops::Range;

/// A block waiting to be traced.
pub(crate) struct Pending {
    pub addr: u64,
    pub world_idx: usize,
    pub block: BlockId,
}

/// Per-block trace context.
pub(crate) struct TraceCtx {
    /// Current world (cloned from the block's entry world).
    pub w: World,
    /// Captured output.
    pub out: Vec<CapturedInst>,
    /// Has an emitted instruction written flags in this block yet?
    pub wrote_flags: bool,
    /// Block property: an emitted flag reader ran before any flag writer.
    pub reads_flags_on_entry: bool,
}

/// The tracer: owns the image (for code + known-memory reads and literal
/// pool allocation) for the duration of one rewrite.
pub struct Tracer<'a> {
    pub(crate) img: &'a Image,
    pub(crate) cfg: &'a RewriteConfig,
    /// Known-memory ranges: config ranges + `PTR_TO_KNOWN` ranges.
    pub(crate) known_mem: Vec<Range<u64>>,
    pub(crate) blocks: Vec<CapturedBlock>,
    pub(crate) worlds: Vec<World>,
    variants: HashMap<u64, Vec<(usize, BlockId)>>,
    queue: VecDeque<Pending>,
    pool8: HashMap<u64, u64>,
    pool16: HashMap<(u64, u64), u64>,
    pub(crate) stats: RewriteStats,
    /// Every known-memory load folded into a constant, recorded for the
    /// variant's staleness snapshot. `RefCell` because the fold sites sit
    /// on `&self` value-reading paths; the tracer is single-threaded per
    /// rewrite.
    pub(crate) read_set: std::cell::RefCell<crate::snapshot::ReadSet>,
    /// Any traced path leaked a frame address (disables frame dead-store
    /// elimination).
    pub(crate) escaped: bool,
    /// The function being rewritten (passed to entry/exit hooks).
    pub(crate) entry_fn: u64,
    budget: u64,
    /// Optional span recorder for structured rewrite traces (per-block
    /// spans plus migration / inlining / compensation decision events).
    pub(crate) recorder: Option<&'a mut crate::telemetry::SpanRecorder>,
}

impl<'a> Tracer<'a> {
    pub(crate) fn new(img: &'a Image, cfg: &'a RewriteConfig, known_mem: Vec<Range<u64>>) -> Self {
        Tracer {
            img,
            cfg,
            known_mem,
            blocks: Vec::new(),
            worlds: Vec::new(),
            variants: HashMap::new(),
            queue: VecDeque::new(),
            pool8: HashMap::new(),
            pool16: HashMap::new(),
            stats: RewriteStats::default(),
            read_set: std::cell::RefCell::new(crate::snapshot::ReadSet::default()),
            escaped: false,
            entry_fn: 0,
            budget: cfg.max_trace_insts,
            recorder: None,
        }
    }

    /// Record an instant decision event, if a recorder is attached.
    pub(crate) fn rec_decision(&mut self, name: &'static str, args: Vec<(String, String)>) {
        if let Some(r) = self.recorder.as_deref_mut() {
            r.instant(name, "decision", args);
        }
    }

    /// Is `[addr, addr+size)` declared known-and-immutable?
    pub(crate) fn addr_known(&self, addr: u64, size: u64) -> bool {
        self.known_mem
            .iter()
            .any(|r| addr >= r.start && addr.saturating_add(size) <= r.end)
    }

    /// Intern an 8-byte constant into the literal pool; returns its address
    /// (always encodable as an absolute disp32 in the default layout).
    pub(crate) fn pool_const8(&mut self, bits: u64) -> u64 {
        if let Some(&a) = self.pool8.get(&bits) {
            return a;
        }
        let a = self.img.alloc_data_bytes(&bits.to_le_bytes(), 8);
        self.stats.pool_bytes += 8;
        self.pool8.insert(bits, a);
        a
    }

    /// Intern a 16-byte constant (packed-double literal).
    pub(crate) fn pool_const16(&mut self, lo: u64, hi: u64) -> u64 {
        if let Some(&a) = self.pool16.get(&(lo, hi)) {
            return a;
        }
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&lo.to_le_bytes());
        b[8..].copy_from_slice(&hi.to_le_bytes());
        let a = self.img.alloc_data_bytes(&b, 16);
        self.stats.pool_bytes += 16;
        self.pool16.insert((lo, hi), a);
        a
    }

    /// Run the work queue to completion, starting from `entry` in `world`.
    pub(crate) fn run(&mut self, entry: u64, world: World) -> Result<BlockId, RewriteError> {
        self.entry_fn = entry;
        let entry_block = self.enqueue(entry, world, false)?;
        while let Some(p) = self.queue.pop_front() {
            self.trace_block(p)?;
        }
        Ok(entry_block)
    }

    /// Enqueue (or find) the block for `(addr, world)`; applies the variant
    /// threshold and world migration. `untrusted` marks edges whose runtime
    /// flags may not match the abstract flags.
    pub(crate) fn enqueue(
        &mut self,
        addr: u64,
        mut world: World,
        mut untrusted: bool,
    ) -> Result<BlockId, RewriteError> {
        // Stale flags normalize to unknown-with-untrusted-edge: the block
        // may be shared, but only if it never reads flags on entry.
        if matches!(world.flags, crate::value::FlagsVal::Stale) {
            world.flags = crate::value::FlagsVal::Unknown;
            untrusted = true;
        }
        // Exact world match → existing block.
        if let Some(vs) = self.variants.get(&addr) {
            for &(widx, bid) in vs {
                if self.worlds[widx] == world {
                    if untrusted {
                        self.mark_untrusted(addr, bid)?;
                    }
                    return Ok(bid);
                }
            }
        }

        let opts = self.cfg.opts_for(world.cur_fn);
        let count = self.variants.get(&addr).map_or(0, |v| v.len());
        if count < opts.max_variants as usize {
            return self.create_block(addr, world, untrusted);
        }

        // --- world migration (§III.F) ---
        self.stats.migrations += 1;
        self.rec_decision(
            "migration",
            vec![
                ("addr".into(), format!("{addr:#x}")),
                ("variants".into(), count.to_string()),
            ],
        );

        // 1. Try an existing compatible variant, preferring the one needing
        //    the least compensation.
        let mut best: Option<(usize, BlockId, usize)> = None;
        let candidates: Vec<(usize, BlockId)> = self.variants[&addr].clone();
        for (widx, bid) in &candidates {
            let target = &self.worlds[*widx];
            if world.can_migrate_to(target) {
                let plan = world.migration_plan(target);
                let cost = plan.gprs.len() + plan.xmms.len();
                if best.is_none_or(|(_, _, c)| cost < c) {
                    best = Some((*widx, *bid, cost));
                }
            }
        }
        if let Some((widx, bid, _)) = best {
            let target = self.worlds[widx].clone();
            let edge_untrusted =
                untrusted || (world.flags.known().is_some() && target.flags.known().is_none());
            if edge_untrusted {
                self.mark_untrusted(addr, bid)?;
            }
            let plan = world.migration_plan(&target);
            if plan.is_empty() {
                return Ok(bid);
            }
            return self.compensation_block(&plan, world.rsp_off(), bid);
        }

        // 2. No compatible variant: demote toward the closest one and
        //    create the demoted variant (terminates at the fully demoted
        //    world, which every state can migrate to).
        let closest_idx = candidates
            .iter()
            .map(|(widx, _)| *widx)
            .min_by_key(|&widx| world_distance(&world, &self.worlds[widx]))
            .expect("threshold exceeded implies candidates exist");
        let closest = self.worlds[closest_idx].clone();
        let mut demoted = world.demote_toward(&closest);
        if demoted == world || !world.can_migrate_to(&demoted) {
            demoted = world.fully_demoted();
        }
        if demoted == world {
            // Already fully demoted and still no target: allow one variant
            // past the threshold (bounded by the hard cap in create_block).
            return self.create_block(addr, world, untrusted);
        }
        debug_assert!(world.can_migrate_to(&demoted));
        let edge_untrusted =
            untrusted || (world.flags.known().is_some() && demoted.flags.known().is_none());
        let plan = world.migration_plan(&demoted);
        let rsp_off = world.rsp_off();
        // The demoted variant is the loop-closure anchor: reuse it if it
        // already exists, otherwise create it directly (it is exempt from
        // the soft threshold; the hard cap in create_block still applies).
        let existing = self.variants.get(&addr).and_then(|vs| {
            vs.iter()
                .find(|(widx, _)| self.worlds[*widx] == demoted)
                .map(|&(_, b)| b)
        });
        let bid = match existing {
            Some(b) => {
                if edge_untrusted {
                    self.mark_untrusted(addr, b)?;
                }
                b
            }
            None => self.create_block(addr, demoted, edge_untrusted)?,
        };
        if plan.is_empty() {
            return Ok(bid);
        }
        self.compensation_block(&plan, rsp_off, bid)
    }

    fn mark_untrusted(&mut self, addr: u64, bid: BlockId) -> Result<(), RewriteError> {
        let b = &mut self.blocks[bid.0];
        if b.traced && b.reads_flags_on_entry {
            return Err(RewriteError::UntrustedFlags { addr });
        }
        b.entered_untrusted = true;
        Ok(())
    }

    fn create_block(
        &mut self,
        addr: u64,
        world: World,
        untrusted: bool,
    ) -> Result<BlockId, RewriteError> {
        if self.blocks.len() >= self.cfg.max_blocks {
            return Err(RewriteError::BlockBudget);
        }
        let opts = self.cfg.opts_for(world.cur_fn);
        let hard_cap = opts.max_variants as usize * 4 + 16;
        let count = self.variants.get(&addr).map_or(0, |v| v.len());
        if count >= hard_cap {
            return Err(RewriteError::BlockBudget);
        }
        let bid = BlockId(self.blocks.len());
        let mut b = CapturedBlock::pending(addr);
        b.entered_untrusted = untrusted;
        self.blocks.push(b);
        self.worlds.push(world);
        let widx = self.worlds.len() - 1;
        self.variants.entry(addr).or_default().push((widx, bid));
        self.queue.push_back(Pending {
            addr,
            world_idx: widx,
            block: bid,
        });
        self.stats.blocks += 1;
        Ok(bid)
    }

    /// Build a synthetic block holding materialization (compensation) code
    /// followed by a jump to `target` — the paper's "compensation code for
    /// migration of the known-world state".
    fn compensation_block(
        &mut self,
        plan: &MaterializeSet,
        rsp_off: i64,
        target: BlockId,
    ) -> Result<BlockId, RewriteError> {
        if self.blocks.len() >= self.cfg.max_blocks {
            return Err(RewriteError::BlockBudget);
        }
        let mut insts = Vec::new();
        for (r, v) in &plan.gprs {
            insts.push(CapturedInst::plain(materialize_gpr_inst(*r, *v, rsp_off)?));
        }
        for (x, v) in &plan.xmms {
            let Value::Const(bits) = v else {
                return Err(RewriteError::TraceFault {
                    addr: 0,
                    what: "cannot materialize non-constant xmm",
                });
            };
            let pool = self.pool_const8(*bits);
            insts.push(CapturedInst::plain(Inst::MovSd {
                dst: Operand::Xmm(*x),
                src: Operand::Mem(MemRef::abs(pool as i32)),
            }));
        }
        let bid = BlockId(self.blocks.len());
        let n_moves = insts.len();
        let mut b = CapturedBlock::pending(0);
        b.insts = insts;
        b.term = Terminator::Jmp(target);
        b.traced = true;
        self.blocks.push(b);
        self.stats.blocks += 1;
        self.rec_decision(
            "compensation",
            vec![
                ("target_block".into(), target.0.to_string()),
                ("moves".into(), n_moves.to_string()),
            ],
        );
        Ok(bid)
    }

    fn trace_block(&mut self, p: Pending) -> Result<(), RewriteError> {
        let mut cx = TraceCtx {
            w: self.worlds[p.world_idx].clone(),
            out: Vec::new(),
            wrote_flags: false,
            reads_flags_on_entry: false,
        };
        let span_start = self.recorder.as_ref().map(|r| r.now_ns());
        let traced_before = self.stats.traced;
        let mut rip = p.addr;
        let term = loop {
            if self.budget == 0 {
                return Err(RewriteError::TraceBudget);
            }
            self.budget -= 1;
            self.stats.traced += 1;

            let window = self
                .img
                .code_window(rip, 16)
                .map_err(|_| RewriteError::BadAddress { addr: rip })?;
            let d =
                decode(&window, rip).map_err(|err| RewriteError::Undecodable { addr: rip, err })?;
            match self.exec_inst(&mut cx, &d.inst, rip, rip + d.len as u64)? {
                Step::Continue(next) => rip = next,
                Step::End(t) => break t,
            }
        };
        let b = &mut self.blocks[p.block.0];
        b.insts = std::mem::take(&mut cx.out);
        b.term = term;
        b.reads_flags_on_entry = cx.reads_flags_on_entry;
        b.traced = true;
        let emitted = b.insts.len();
        if b.entered_untrusted && b.reads_flags_on_entry {
            return Err(RewriteError::UntrustedFlags { addr: p.addr });
        }
        if let (Some(r), Some(t0)) = (self.recorder.as_deref_mut(), span_start) {
            r.complete(
                format!("block@{:#x}", p.addr),
                "block",
                t0,
                vec![
                    ("insts".into(), emitted.to_string()),
                    (
                        "traced".into(),
                        (self.stats.traced - traced_before).to_string(),
                    ),
                ],
            );
        }
        Ok(())
    }
}

/// Step outcome of executing one traced instruction.
pub(crate) enum Step {
    /// Continue tracing at this guest address.
    Continue(u64),
    /// Block ends with this terminator.
    End(Terminator),
}

/// Instruction materializing `v` into GPR `r` at stack depth `rsp_off`.
pub(crate) fn materialize_gpr_inst(r: Gpr, v: Value, rsp_off: i64) -> Result<Inst, RewriteError> {
    match v {
        Value::Const(c) => {
            if (c as i64) == (c as i64 as i32) as i64 {
                Ok(Inst::Mov {
                    w: Width::W64,
                    dst: Operand::Reg(r),
                    src: Operand::Imm(c as i64),
                })
            } else {
                Ok(Inst::MovAbs { dst: r, imm: c })
            }
        }
        Value::StackRel(o) => {
            let disp = i32::try_from(o - rsp_off).map_err(|_| {
                RewriteError::Unencodable(brew_x86::encode::EncodeError::ImmTooLarge(o))
            })?;
            Ok(Inst::Lea {
                dst: r,
                src: MemRef::base_disp(Gpr::Rsp, disp),
            })
        }
        // Callers guard on `is_known()`, but keep the failure typed: a
        // violated invariant must fail the rewrite, not the process.
        Value::Unknown => Err(RewriteError::TraceFault {
            addr: 0,
            what: "cannot materialize an unknown value",
        }),
    }
}

/// Rough distance between worlds for choosing a demotion anchor.
fn world_distance(a: &World, b: &World) -> usize {
    let mut d = 0;
    for i in 0..16 {
        if a.regs[i] != b.regs[i] {
            d += 1;
        }
        if a.xmm[i] != b.xmm[i] {
            d += 1;
        }
    }
    if a.flags != b.flags {
        d += 1;
    }
    for (k, v) in &a.frame {
        if b.frame.get(k) != Some(v) {
            d += 1;
        }
    }
    for (k, v) in &b.frame {
        if !a.frame.contains_key(k) {
            let _ = v;
            d += 1;
        }
    }
    for (k, v) in &a.gshadow {
        if b.gshadow.get(k) != Some(v) {
            d += 1;
        }
    }
    d
}
