//! The tracer's abstract value domain.
//!
//! §III.B: *"For every variable value used during execution, we maintain a
//! flag for whether this value is assumed to be known or unknown."* We add a
//! third shape, [`Value::StackRel`], for addresses relative to the rewritten
//! function's entry RSP — that is what lets the rewriter track frames,
//! delete prologues/epilogues when inlining, and fold `[rbp+k]` operands
//! into `[rsp+k']` ones (frame-pointer omission as a by-product).

use brew_x86::alu::{self, AluOp, ShOp, UnOp};
use brew_x86::cond::Flags;
use brew_x86::reg::Width;

/// An abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// Value only known at runtime.
    Unknown,
    /// Compile-time constant (full 64-bit pattern).
    Const(u64),
    /// `entry_RSP + offset` of the function being rewritten.
    StackRel(i64),
}

impl Value {
    /// The constant, if this is a [`Value::Const`].
    #[inline]
    pub fn const_val(self) -> Option<u64> {
        match self {
            Value::Const(v) => Some(v),
            _ => None,
        }
    }

    /// `true` unless the value is [`Value::Unknown`].
    #[inline]
    pub fn is_known(self) -> bool {
        !matches!(self, Value::Unknown)
    }

    /// Truncate/sign-behaviour for a 32-bit write: constants are
    /// zero-extended like the hardware; a 32-bit-truncated stack address is
    /// no longer a usable stack address, so it degrades to `Unknown`.
    pub fn as_w32_result(self) -> Value {
        match self {
            Value::Const(v) => Value::Const(v as u32 as u64),
            Value::StackRel(_) => Value::Unknown,
            Value::Unknown => Value::Unknown,
        }
    }
}

/// Abstract flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlagsVal {
    /// Flags are whatever the machine computes at runtime — the runtime
    /// flags are *meaningful* (produced by an emitted instruction).
    Unknown,
    /// All five tracked flags are known (their producer was elided; the
    /// architectural flags may hold unrelated garbage).
    Known(Flags),
    /// A flag-writing instruction was elided without its flags being
    /// computable: the architectural flags match *neither* the original
    /// program nor any tracked value. Reading them is a rewrite failure;
    /// block-enqueue normalizes this to `Unknown` + an untrusted edge.
    Stale,
}

impl FlagsVal {
    /// The flags, if known.
    #[inline]
    pub fn known(self) -> Option<Flags> {
        match self {
            FlagsVal::Known(f) => Some(f),
            FlagsVal::Unknown | FlagsVal::Stale => None,
        }
    }
}

/// Abstract two-operand ALU. Returns `(result, flags)`.
///
/// Stack-relative values support the closure properties the tracer needs:
/// `SR + C`, `C + SR`, `SR - C` stay stack-relative; `SR - SR` is a
/// constant; anything else involving `SR`, or any `Unknown`, degrades.
/// Flags are only known when both operands are constants (flag bits of
/// stack-relative arithmetic depend on the absolute stack address).
pub fn alu_value(op: AluOp, w: Width, a: Value, b: Value) -> (Value, FlagsVal) {
    use Value::*;
    match (a, b) {
        (Const(x), Const(y)) => {
            let (r, f) = alu::alu(op, w, x, y);
            let res = if op.writes_dst() {
                if w == Width::W32 {
                    Const(r as u32 as u64)
                } else {
                    Const(r)
                }
            } else {
                a // cmp leaves dst untouched
            };
            (res, FlagsVal::Known(f))
        }
        (StackRel(s), Const(c)) if w == Width::W64 => match op {
            AluOp::Add => (StackRel(s.wrapping_add(c as i64)), FlagsVal::Unknown),
            AluOp::Sub => (StackRel(s.wrapping_sub(c as i64)), FlagsVal::Unknown),
            AluOp::Cmp => (a, FlagsVal::Unknown),
            _ => (Unknown, FlagsVal::Unknown),
        },
        (Const(c), StackRel(s)) if w == Width::W64 && op == AluOp::Add => {
            (StackRel(s.wrapping_add(c as i64)), FlagsVal::Unknown)
        }
        (StackRel(x), StackRel(y)) if w == Width::W64 && op == AluOp::Sub => {
            (Const(x.wrapping_sub(y) as u64), FlagsVal::Unknown)
        }
        (StackRel(_), _) | (_, StackRel(_)) => {
            let res = if op.writes_dst() { Unknown } else { a };
            (res, FlagsVal::Unknown)
        }
        _ => {
            let res = if op.writes_dst() { Unknown } else { a };
            (res, FlagsVal::Unknown)
        }
    }
}

/// Abstract `test`.
pub fn test_value(w: Width, a: Value, b: Value) -> FlagsVal {
    match (a, b) {
        (Value::Const(x), Value::Const(y)) => FlagsVal::Known(alu::test(w, x, y)),
        _ => FlagsVal::Unknown,
    }
}

/// Abstract two-operand signed multiply.
pub fn imul_value(w: Width, a: Value, b: Value) -> (Value, FlagsVal) {
    match (a, b) {
        (Value::Const(x), Value::Const(y)) => {
            let (r, f) = alu::imul(w, x, y);
            let r = if w == Width::W32 { r as u32 as u64 } else { r };
            (Value::Const(r), FlagsVal::Known(f))
        }
        _ => (Value::Unknown, FlagsVal::Unknown),
    }
}

/// Abstract unary op. `prev` participates for `inc`/`dec` CF preservation.
pub fn unop_value(op: UnOp, w: Width, v: Value, prev: FlagsVal) -> (Value, FlagsVal) {
    match v {
        Value::Const(x) => match (op, prev) {
            // inc/dec preserve CF: only known if previous flags are known.
            (UnOp::Inc | UnOp::Dec, FlagsVal::Known(pf)) => {
                let (r, f) = alu::unop(op, w, x, pf);
                (const_at(w, r), FlagsVal::Known(f))
            }
            (UnOp::Inc | UnOp::Dec, _) => {
                let (r, _) = alu::unop(op, w, x, Flags::default());
                (const_at(w, r), FlagsVal::Unknown)
            }
            (UnOp::Not, _) => {
                let (r, _) = alu::unop(op, w, x, Flags::default());
                (const_at(w, r), prev) // not leaves flags alone
            }
            (UnOp::Neg, _) => {
                let (r, f) = alu::unop(op, w, x, Flags::default());
                (const_at(w, r), FlagsVal::Known(f))
            }
        },
        // inc/dec of a 64-bit stack address stays an address.
        Value::StackRel(s) if w == Width::W64 && matches!(op, UnOp::Inc) => {
            (Value::StackRel(s + 1), FlagsVal::Unknown)
        }
        Value::StackRel(s) if w == Width::W64 && matches!(op, UnOp::Dec) => {
            (Value::StackRel(s - 1), FlagsVal::Unknown)
        }
        _ => {
            let fl = if matches!(op, UnOp::Not) {
                prev
            } else {
                FlagsVal::Unknown
            };
            (Value::Unknown, fl)
        }
    }
}

/// Abstract shift.
pub fn shift_value(
    op: ShOp,
    w: Width,
    v: Value,
    count: Value,
    prev: FlagsVal,
) -> (Value, FlagsVal) {
    match (v, count) {
        (Value::Const(x), Value::Const(c)) => {
            let pf = prev.known().unwrap_or_default();
            let (r, f) = alu::shift(op, w, x, c as u8, pf);
            let masked = (c as u8) & ((w.bits() - 1) as u8);
            if masked == 0 {
                // Flags unchanged; only known if they were known.
                (const_at(w, r), prev)
            } else {
                (const_at(w, r), FlagsVal::Known(f))
            }
        }
        _ => (Value::Unknown, FlagsVal::Unknown),
    }
}

#[inline]
fn const_at(w: Width, r: u64) -> Value {
    if w == Width::W32 {
        Value::Const(r as u32 as u64)
    } else {
        Value::Const(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brew_x86::cond::Cond;

    #[test]
    fn const_folding_matches_alu() {
        let (v, f) = alu_value(AluOp::Add, Width::W64, Value::Const(40), Value::Const(2));
        assert_eq!(v, Value::Const(42));
        assert!(!f.known().unwrap().zf);

        let (v, f) = alu_value(AluOp::Cmp, Width::W64, Value::Const(5), Value::Const(5));
        assert_eq!(v, Value::Const(5), "cmp must not change dst");
        assert!(f.known().unwrap().cond(Cond::E));
    }

    #[test]
    fn stackrel_closure() {
        let sr = Value::StackRel(-8);
        let (v, f) = alu_value(AluOp::Sub, Width::W64, sr, Value::Const(16));
        assert_eq!(v, Value::StackRel(-24));
        assert_eq!(f, FlagsVal::Unknown, "flags of address math are unknown");

        let (v, _) = alu_value(AluOp::Add, Width::W64, Value::Const(8), sr);
        assert_eq!(v, Value::StackRel(0));

        let (v, _) = alu_value(
            AluOp::Sub,
            Width::W64,
            Value::StackRel(-8),
            Value::StackRel(-24),
        );
        assert_eq!(v, Value::Const(16));

        // Multiplying an address is meaningless.
        let (v, _) = imul_value(Width::W64, sr, Value::Const(2));
        assert_eq!(v, Value::Unknown);
    }

    #[test]
    fn w32_truncation() {
        let (v, _) = alu_value(
            AluOp::Add,
            Width::W32,
            Value::Const(0xFFFF_FFFF),
            Value::Const(1),
        );
        assert_eq!(v, Value::Const(0));
        assert_eq!(Value::StackRel(-8).as_w32_result(), Value::Unknown);
        // 32-bit op on a stack address degrades.
        let (v, _) = alu_value(AluOp::Add, Width::W32, Value::StackRel(-8), Value::Const(1));
        assert_eq!(v, Value::Unknown);
    }

    #[test]
    fn unknown_contaminates() {
        let (v, f) = alu_value(AluOp::Add, Width::W64, Value::Unknown, Value::Const(1));
        assert_eq!(v, Value::Unknown);
        assert_eq!(f, FlagsVal::Unknown);
        assert_eq!(
            test_value(Width::W64, Value::Unknown, Value::Const(0)),
            FlagsVal::Unknown
        );
    }

    #[test]
    fn inc_dec_cf_preservation() {
        // inc with unknown previous flags produces a known value but
        // unknown flags (CF would be inherited).
        let (v, f) = unop_value(UnOp::Inc, Width::W64, Value::Const(41), FlagsVal::Unknown);
        assert_eq!(v, Value::Const(42));
        assert_eq!(f, FlagsVal::Unknown);

        let known = FlagsVal::Known(Flags {
            cf: true,
            ..Flags::default()
        });
        let (_, f) = unop_value(UnOp::Inc, Width::W64, Value::Const(41), known);
        assert!(f.known().unwrap().cf);
    }

    #[test]
    fn shifts_and_not() {
        let (v, _) = shift_value(
            ShOp::Shl,
            Width::W64,
            Value::Const(3),
            Value::Const(4),
            FlagsVal::Unknown,
        );
        assert_eq!(v, Value::Const(48));
        // `not` preserves flags.
        let prev = FlagsVal::Known(Flags {
            zf: true,
            ..Flags::default()
        });
        let (v, f) = unop_value(UnOp::Not, Width::W64, Value::Const(0), prev);
        assert_eq!(v, Value::Const(u64::MAX));
        assert_eq!(f, prev);
    }
}
